"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it next to the thesis's reference numbers.  Durations are scaled by
``REPRO_BENCH_SCALE`` (default 0.7: houseA becomes ~400 h with a ~210 h
precomputation period) and each dataset is evaluated over
``REPRO_BENCH_PAIRS`` segment pairs (default 40; the thesis used 100).
Set them to 1.0/100 to run the full-scale protocol.

Results are cached across benchmarks within one session (the accuracy,
timing, computation and degree benchmarks all project the same protocol
run).
"""

import os

import pytest

from repro.eval.experiments import ProtocolSettings

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.7"))
BENCH_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "40"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def settings():
    return ProtocolSettings(
        hours_scale=BENCH_SCALE, pairs=BENCH_PAIRS, seed=BENCH_SEED
    )


def show(title: str, body: str, paper: str = "") -> None:
    print(f"\n=== {title} ===")
    print(body)
    if paper:
        print(f"--- paper reference ---\n{paper}")
