#!/usr/bin/env python
"""Run the performance benchmark harness.

Thin wrapper over ``repro bench`` so the perf suite lives next to the
figure-reproduction benchmarks.  All arguments are forwarded::

    python benchmarks/perf/run.py --quick
    python benchmarks/perf/run.py -o BENCH_perf.json --workers 1 2 4
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
