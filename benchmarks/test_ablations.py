"""E10 — Ch. VI parameter ablations.

Paper shapes: halving the precomputation period costs identification
precision (~10 %); halving the segment length costs identification recall
(~6 %); one-minute windows are the accuracy sweet spot.
"""

from conftest import show

from repro.eval.experiments import ablations


def fmt(points):
    return "\n".join(
        f"{p.label:>18}: det P {100 * p.detection_precision:.1f}% "
        f"R {100 * p.detection_recall:.1f}%  id P "
        f"{100 * p.identification_precision:.1f}% R "
        f"{100 * p.identification_recall:.1f}%"
        for p in points
    )


def test_precompute_period(benchmark, settings):
    points = benchmark.pedantic(
        ablations.precompute_period,
        args=("houseB", settings),
        rounds=1,
        iterations=1,
    )
    show(
        "Ch. VI — precomputation period ablation",
        fmt(points),
        paper="150 h instead of 300 h costs ~10% identification precision",
    )
    full, half = points
    assert half.identification_precision <= full.identification_precision + 0.08


def test_segment_length(benchmark, settings):
    points = benchmark.pedantic(
        ablations.segment_length, args=("houseB", settings), rounds=1, iterations=1
    )
    show(
        "Ch. VI — segment length ablation",
        fmt(points),
        paper="3 h instead of 6 h segments costs ~6% identification recall",
    )
    full, half = points
    assert half.identification_recall <= full.identification_recall + 0.08


def test_window_duration(benchmark, settings):
    points = benchmark.pedantic(
        ablations.window_duration,
        args=("houseB", (30.0, 60.0, 120.0), settings),
        rounds=1,
        iterations=1,
    )
    show(
        "Ch. VI — window duration sweep",
        fmt(points),
        paper="one minute found empirically optimal",
    )
    assert len(points) == 3


def test_two_step_closure(benchmark, settings):
    points = benchmark.pedantic(
        ablations.two_step_closure, args=("houseC", settings), rounds=1, iterations=1
    )
    show(
        "DESIGN.md — two-step G2G closure ablation",
        fmt(points),
        paper="(our design choice: closure absorbs window-boundary aliasing)",
    )
    on, off = points
    # The closure exists to absorb false positives: turning it off must
    # not *reduce* the false-positive rate on faultless segments.
    assert off.false_positive_rate >= on.false_positive_rate - 1e-9
