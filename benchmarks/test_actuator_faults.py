"""E3 — §5.1.3: actuator-fault accuracy on the D_* datasets.

Paper: actuator faults identified with 92.5 % precision / 94.9 % recall
on average across the five testbed datasets.
"""

from conftest import show

from repro.eval.experiments import actuator_faults


def test_actuator_faults(benchmark, settings):
    rows = benchmark.pedantic(
        actuator_faults.run, args=(None, settings), rounds=1, iterations=1
    )
    lines = [
        f"{r.dataset}: det P {100 * r.detection_precision:.1f}% "
        f"R {100 * r.detection_recall:.1f}%  id P "
        f"{100 * r.identification_precision:.1f}% R "
        f"{100 * r.identification_recall:.1f}%"
        for r in rows
    ]
    avg = actuator_faults.averages(rows)
    lines.append(
        f"average id: P {100 * avg['identification_precision']:.1f}% "
        f"R {100 * avg['identification_recall']:.1f}%"
    )
    show(
        "§5.1.3 — actuator faults (D_* datasets)",
        "\n".join(lines),
        paper="identification 92.5% precision / 94.9% recall on average",
    )
    assert len(rows) == 5
    assert avg["identification_recall"] > 0.5
