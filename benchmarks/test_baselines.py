"""E12 — quantitative Table 2.1: DICE versus the baseline families.

Expected shapes: DICE's recall beats each ablated variant; the AR
baseline misses fail-stop faults entirely; majority voting depends on
redundant same-type sensors.
"""

from conftest import show

from repro.eval.experiments import baselines_compare


def test_baselines(benchmark, settings):
    rows = benchmark.pedantic(
        baselines_compare.run,
        args=("D_houseA",),
        kwargs={"settings": settings},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{r.detector:>18}: det P {100 * r.detection_precision:.1f}% "
        f"R {100 * r.detection_recall:.1f}%  id R "
        f"{100 * r.identification_recall:.1f}%"
        for r in rows
    ]
    show(
        "Table 2.1 (quantitative) — DICE vs baselines on D_houseA",
        "\n".join(lines),
        paper="qualitative in the thesis; DICE is the only ✓✓✓✓ row",
    )
    by_name = {r.detector: r for r in rows}
    dice = by_name["dice"]
    for name, row in by_name.items():
        if name != "dice":
            assert row.detection_recall <= dice.detection_recall + 0.1
