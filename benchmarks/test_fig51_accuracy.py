"""E1/E2 — Fig. 5.1: detection and identification accuracy, all ten datasets.

Paper shapes: average detection precision 98.2 % / recall 97.9 %; the
D_* testbed datasets sit at the top, houseA (lowest correlation degree)
at the bottom; identification accuracy trails detection accuracy.
"""

from conftest import show

from repro.eval import report
from repro.eval.experiments import accuracy


def test_fig51_accuracy(benchmark, settings):
    rows = benchmark.pedantic(
        accuracy.run, args=(None, settings), rounds=1, iterations=1
    )
    avg = accuracy.averages(rows)
    body = report.format_accuracy(rows)
    body += (
        f"\naverage: det P {100 * avg['detection_precision']:.1f}% "
        f"R {100 * avg['detection_recall']:.1f}%  "
        f"id P {100 * avg['identification_precision']:.1f}% "
        f"R {100 * avg['identification_recall']:.1f}%"
    )
    show(
        "Fig. 5.1 — detection & identification accuracy",
        body,
        paper=(
            "detection avg precision 98.2% / recall 97.9%; identification "
            "94.9% / 92.5%; houseA weakest, D_* strongest"
        ),
    )
    assert len(rows) == 10
    # Shape assertions (not absolute parity).
    by_name = {r.dataset: r for r in rows}
    assert avg["detection_recall"] > 0.75
    assert avg["detection_precision"] > 0.75
    testbed_avg = sum(
        by_name[n].detection_recall for n in by_name if n.startswith("D_")
    ) / 5.0
    assert testbed_avg >= by_name["houseA"].detection_recall - 0.05
