"""E4 — Fig. 5.2: detection and identification time per dataset.

Paper shapes: everything but houseA detects within ~10 minutes and
identifies within ~30; houseA (degree 1.4) is the outlier at ~22/~73
minutes; overall averages ~3 min detection / ~28 min identification.
"""

from conftest import show

from repro.eval import report
from repro.eval.experiments import timing


def test_fig52_time(benchmark, settings):
    rows = benchmark.pedantic(
        timing.run, args=(None, settings), rounds=1, iterations=1
    )
    show(
        "Fig. 5.2 — detection & identification time (minutes)",
        report.format_timing(rows),
        paper=(
            "averages: detect ~3 min, identify ~28 min; houseA slowest "
            "(21.9 / 72.8 min); testbed datasets fastest"
        ),
    )
    assert len(rows) == 10
    for row in rows:
        assert row.detection_minutes >= 0.0
        assert row.identification_minutes >= 0.0
    # Latency is bounded: well within the 12-hour floor of prior art.
    # (Detection and identification means are computed over different
    # outcome subsets — all detections vs. correct identifications — so no
    # per-dataset ordering between the two means is asserted.)
    assert all(r.detection_minutes < 120.0 for r in rows)
