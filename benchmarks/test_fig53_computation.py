"""E6 — Fig. 5.3: per-window computation time per real-time stage.

Paper shapes: the correlation check (the probable-group scan) dominates
and grows with the sensor/bit count; transition check and identification
are negligible; the worst dataset stays under 50 ms per one-minute window.
"""

from conftest import show

from repro.eval import report
from repro.eval.experiments import computation


def test_fig53_computation(benchmark, settings):
    rows = benchmark.pedantic(
        computation.run, args=(None, settings), rounds=1, iterations=1
    )
    show(
        "Fig. 5.3 — computation time per window (ms)",
        report.format_computation(rows),
        paper="max ~50 ms per window (hh102, 112 sensors); correlation check dominates",
    )
    for row in rows:
        assert row.total_ms < 50.0
        assert row.transition_check_ms <= row.correlation_check_ms + 0.5
