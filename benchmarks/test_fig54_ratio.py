"""E8 — Fig. 5.4: which check detects which fault class.

Paper shape: all fail-stop faults fall to the correlation check; stuck-at
faults mostly require the transition check; the remaining classes are
mixed with a correlation-check majority.
"""

from conftest import show

from repro.eval import report
from repro.eval.experiments import detection_ratio
from repro.faults import FaultType


def test_fig54_ratio(benchmark, settings):
    rows = benchmark.pedantic(
        detection_ratio.run, args=(None, settings), rounds=1, iterations=1
    )
    show(
        "Fig. 5.4 — detection-check ratio by fault type",
        report.format_detection_ratio(rows),
        paper="fail-stop: 100% correlation check; stuck-at: mostly transition check",
    )
    by_type = {r.fault_type: r for r in rows}
    fail_stop = by_type[FaultType.FAIL_STOP]
    # Fail-stop is overwhelmingly a correlation-check catch, as in the
    # paper.  The paper's second claim — stuck-at being *mostly* a
    # transition-check catch — does not fully reproduce on this substrate:
    # our event-driven simulated sensors are deterministic enough that a
    # frozen sensor usually still produces a never-seen combination (see
    # EXPERIMENTS.md, E8).  The transition check remains load-bearing for
    # the stuck-at class; every class must be detected by one of the two.
    assert fail_stop.correlation_share >= 0.8
    for row in rows:
        assert row.detections > 0
        assert row.correlation_share + row.transition_share == 1.0
