"""E9 — Ch. VI multi-fault experiment (numThre = 3, 1-3 faults at once).

Paper: identification precision 79.5 % / recall 63.3 % — clearly below
the single-fault numbers, which is the shape asserted here.
"""

from conftest import show

from repro.eval.experiments import accuracy, multi_fault


def test_multifault(benchmark, settings):
    result = benchmark.pedantic(
        multi_fault.run,
        args=("D_houseA",),
        kwargs={"settings": settings},
        rounds=1,
        iterations=1,
    )
    single = accuracy.run(["D_houseA"], settings)[0]
    show(
        "Ch. VI — multi-fault (1-3 simultaneous, numThre=3)",
        (
            f"segments {result.segments}  detection recall "
            f"{100 * result.detection_recall:.1f}%  identification P "
            f"{100 * result.identification_precision:.1f}% R "
            f"{100 * result.identification_recall:.1f}%\n"
            f"single-fault reference: id P "
            f"{100 * single.identification_precision:.1f}% R "
            f"{100 * single.identification_recall:.1f}%"
        ),
        paper="multi-fault identification 79.5% precision / 63.3% recall",
    )
    assert result.detection_recall > 0.6
    # Multi-fault identification must be harder than single-fault.
    assert result.identification_recall <= single.identification_recall + 0.05
