"""E11 — Ch. VI security attacks (temperature spoof, light spoof).

Paper: DICE detected both attacks on the testbed.
"""

from conftest import show

from repro.eval.experiments import security


def test_security_attacks(benchmark, settings):
    outcomes = benchmark.pedantic(
        security.run, args=("D_houseA", settings), rounds=1, iterations=1
    )
    lines = [
        f"{o.kind}: victim {o.victim} detected={o.detected} "
        f"in {o.detection_minutes if o.detection_minutes is not None else '-'} min "
        f"identified={o.identified}"
        for o in outcomes
    ]
    show(
        "Ch. VI — security attacks",
        "\n".join(lines),
        paper="both the fan-forcing temperature spoof and the blind-driving light spoof detected",
    )
    assert all(o.detected for o in outcomes)
