"""E5 — Table 5.1: detection time split by the detecting check (houseA/B/C).

Paper shape: faults caught by the transition check surface roughly three
times more slowly than faults caught by the correlation check (houseA:
10.5 vs 29.0 min; houseB: 2.8 vs 5.3; houseC: 3.4 vs 9.9).
"""

from conftest import show

from repro.eval import report
from repro.eval.experiments import timing


def test_table51_check_time(benchmark, settings):
    rows = benchmark.pedantic(
        timing.run_by_check,
        args=(["houseA", "houseB", "houseC"], settings),
        rounds=1,
        iterations=1,
    )
    show(
        "Table 5.1 — detection time by check (minutes)",
        report.format_check_timing(rows),
        paper="houseA 10.5/29.0, houseB 2.8/5.3, houseC 3.4/9.9 (corr/trans)",
    )
    slower = [
        r
        for r in rows
        if r.correlation_check_minutes is not None
        and r.transition_check_minutes is not None
    ]
    # Wherever both checks caught faults, the transition check must not be
    # systematically faster than the correlation check.
    if slower:
        mean_ratio = sum(r.slowdown for r in slower) / len(slower)
        assert mean_ratio > 0.8
