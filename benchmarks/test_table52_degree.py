"""E7 — Table 5.2: correlation degree and sensor count.

Paper values: houseA 1.4 (14 sensors), houseB 2.9 (27), houseC 4.6 (23),
twor 7.2 (71), hh102 3.8 (112), DICE testbed 10.6 (37).  Key shapes:
houseA is the lowest; degree is not proportional to sensor count.
"""

from conftest import show

from repro.eval import report
from repro.eval.experiments import correlation_degree


def test_table52_degree(benchmark, settings):
    rows = benchmark.pedantic(
        correlation_degree.run, args=(None, settings), rounds=1, iterations=1
    )
    show(
        "Table 5.2 — correlation degree",
        report.format_degree(rows),
        paper="houseA 1.4 < houseB 2.9 < hh102 3.8 < houseC 4.6 < twor 7.2 < DICE 10.6",
    )
    by_name = {r.dataset: r for r in rows}
    assert by_name["houseA"].correlation_degree == min(
        r.correlation_degree for r in rows
    )
    # Degree is not proportional to the sensor census: hh102 has the most
    # sensors but nowhere near the highest degree per sensor.
    assert by_name["hh102"].num_sensors == max(r.num_sensors for r in rows)
