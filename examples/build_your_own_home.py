#!/usr/bin/env python
"""Build a custom smart home from scratch and protect it with DICE.

Shows the full substrate API: declare devices and rooms, define
activities with their device footprints, wire an automation rule, generate
data with the simulator, and run the detector — everything the ten bundled
datasets are built from.

Run:  python examples/build_your_own_home.py
"""

import numpy as np

from repro.core import DeviceWeights, DiceDetector
from repro.datasets import FILL, HomeBuilder, plan_routine, trig
from repro.faults import inject_high_noise
from repro.model import SensorType
from repro.smarthome import (
    EffectSwitchRule,
    FloorPlan,
    HomeSimulator,
    OccupancyLightRule,
)

HOUR = 3600.0


def build_studio():
    """A one-room studio flat with a smart bulb and a boiling-alarm fan."""
    plan = FloorPlan(["studio", "bathroom"], [("studio", "bathroom")])
    b = HomeBuilder("studio", plan)

    b.binary("motion_studio", SensorType.MOTION, "studio")
    b.binary("motion_bath", SensorType.MOTION, "bathroom")
    gas = b.binary("gas_hob", SensorType.GAS, "studio")
    light = b.numeric("light_studio", SensorType.LIGHT, "studio")
    temp = b.numeric("temp_hob", SensorType.TEMPERATURE, "studio")
    humidity = b.numeric("humidity_bath", SensorType.HUMIDITY, "bathroom")
    bulb = b.actuator("bulb_studio", SensorType.BULB, "studio")
    fan = b.actuator("fan_hob", SensorType.SWITCH, "studio")

    b.activity(
        "cook", "studio", (20, 26),
        triggers=[trig(gas, "continuous", period=20.0)],
        effects=[(temp, 6.0)],
    )
    b.activity("shower", "bathroom", (10, 16), effects=[(humidity, 25.0)])
    b.activity("relax", "studio", FILL)
    b.activity("sleep", "studio", FILL, still=True)
    b.activity("out", "studio", FILL, away=True)

    b.rule(OccupancyLightRule(bulb, "studio", [light], night_only=False))
    b.rule(EffectSwitchRule(fan, temp))

    b.routine(
        plan_routine(
            b.catalog,
            [
                ("sleep", 0, 2),
                ("shower", 7 * 60 + 30, 4, 0.3),
                ("cook", 8 * 60 + 10, 4),
                ("out", 9 * 60 + 15, 5),
                ("cook", 18 * 60 + 30, 5),
                ("relax", 19 * 60 + 30, 5),
                ("sleep", 23 * 60, 4),
            ],
        )
    )
    return b.build()


def main() -> None:
    spec = build_studio()
    print(f"Built {spec.name!r}: census {spec.registry.census()}, "
          f"{spec.activity_count()} activities")

    print("Simulating 10 days ...")
    trace = HomeSimulator(spec).simulate(240.0 * HOUR, seed=13)
    print(f"  {len(trace)} events")

    # Gas sensors are safety-critical: alarm as soon as they look faulty.
    weights = DeviceWeights.for_safety_sensors(["gas_hob"])
    detector = DiceDetector(spec.registry, weights=weights).fit(
        trace.slice(0.0, 168.0 * HOUR)
    )
    print(f"  {len(detector.model.groups)} groups, degree "
          f"{detector.model.correlation_degree:.2f}")

    segment = trace.slice(186.0 * HOUR, 192.0 * HOUR)  # evening of day 8
    faulty = inject_high_noise(
        segment, "gas_hob", segment.start + HOUR, np.random.default_rng(2)
    )
    report = detector.process(faulty)
    print(f"\nflickering gas sensor detected: {report.detected}")
    if report.first_identification:
        print(f"identified: {sorted(report.first_identification.devices)}")
        print(f"weighted early alarm: {report.first_identification.weighted_early}")


if __name__ == "__main__":
    main()
