#!/usr/bin/env python
"""Fault-injection study: the Ch. V protocol on one dataset, end to end.

Runs the paper's segment-pair protocol on the D_houseA testbed recording —
faultless copies measure false positives, fault-injected duplicates measure
detection/identification — and prints per-fault-class results plus the
detection-check attribution (the data behind Figs. 5.1 and 5.4).

Run:  python examples/fault_injection_study.py [--pairs 30] [--hours 300]
"""

import argparse
from collections import Counter

from repro.eval import EvaluationRunner
from repro.datasets import load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="D_houseA")
    parser.add_argument("--hours", type=float, default=300.0, help="dataset length")
    parser.add_argument("--pairs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    precompute = args.hours / 2.0
    print(
        f"Dataset {args.dataset}: {args.hours:.0f} h "
        f"({precompute:.0f} h precomputation), {args.pairs} segment pairs"
    )
    data = load_dataset(args.dataset, seed=args.seed, hours=args.hours)
    runner = EvaluationRunner(
        precompute_hours=precompute, pairs=args.pairs, seed=args.seed
    )
    result = runner.evaluate(args.dataset, data.trace)

    detection = result.detection_counts()
    identification = result.identification_counts()
    print(f"\ncorrelation degree: {result.correlation_degree:.2f}")
    print(f"groups: {result.num_groups}")
    print(
        f"\ndetection:      precision {100 * detection.precision:.1f}%  "
        f"recall {100 * detection.recall:.1f}%"
    )
    print(
        f"identification: precision {100 * identification.precision:.1f}%  "
        f"recall {100 * identification.recall:.1f}%"
    )
    print(
        f"detection time: mean {result.detection_time().mean:.1f} min, "
        f"median {result.detection_time().median:.1f} min"
    )

    print("\nper fault class:")
    per_class = Counter()
    detected = Counter()
    for outcome in result.outcomes:
        per_class[outcome.fault.fault_type.value] += 1
        if outcome.detected:
            detected[outcome.fault.fault_type.value] += 1
    for fault_class in sorted(per_class):
        print(
            f"  {fault_class:>10}: detected "
            f"{detected[fault_class]}/{per_class[fault_class]}"
        )

    print("\ndetection-check attribution (Fig. 5.4):")
    for fault_type, checks in result.detection_ratio_by_fault_type().items():
        shares = ", ".join(
            f"{check} {100 * share:.0f}%" for check, share in sorted(checks.items())
        )
        print(f"  {fault_type.value:>10}: {shares}")

    print("\nper-window computation cost (Fig. 5.3):")
    for stage, ms in result.computation_ms_per_window().items():
        print(f"  {stage:>17}: {ms:.3f} ms")


if __name__ == "__main__":
    main()
