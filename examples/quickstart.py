#!/usr/bin/env python
"""Quickstart: train DICE on a smart home and catch an injected fault.

Generates a short houseA-style recording, runs the precomputation phase on
the first three days, injects a fail-stop fault into a kitchen sensor, and
shows DICE detecting and identifying it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DiceDetector
from repro.datasets import load_dataset
from repro.faults import FaultInjector, FaultType

HOUR = 3600.0


def main() -> None:
    print("Generating 120 hours of the houseA smart home ...")
    data = load_dataset("houseA", seed=7, hours=120.0)
    trace = data.trace
    print(f"  {len(trace)} events from {len(trace.registry)} devices")

    print("\nPrecomputation phase (first 72 hours) ...")
    training = trace.slice(0.0, 72.0 * HOUR)
    detector = DiceDetector(trace.registry).fit(training)
    model = detector.model
    print(f"  {len(model.groups)} groups extracted")
    print(f"  correlation degree: {model.correlation_degree:.2f}")
    print(f"  G2G transitions learned: {len(model.transitions.g2g)}")

    print("\nReal-time phase on a faultless evening segment ...")
    segment = trace.slice(90.0 * HOUR, 96.0 * HOUR)
    report = detector.process(segment)
    print(f"  windows processed: {report.n_windows}")
    print(f"  violations: {len(report.detections)} (should be 0)")

    print("\nInjecting a fail-stop fault into the fridge sensor ...")
    injector = FaultInjector(np.random.default_rng(1))
    faulty, fault = injector.inject(
        segment,
        devices=[trace.registry["fridge"]],
        fault_type=FaultType.FAIL_STOP,
    )
    onset_hhmm = f"{int(fault.onset // HOUR) % 24:02d}:{int(fault.onset % HOUR // 60):02d}"
    print(f"  fault onset at {onset_hhmm} (absolute {fault.onset:.0f} s)")

    report = detector.process(faulty)
    if not report.detected:
        print("  fault not detected (the fridge may be idle in this segment)")
        return
    detection = report.first_detection
    print(f"\nDetected by the {detection.check} check at t={detection.time:.0f} s")
    identification = report.first_identification
    if identification:
        devices = ", ".join(sorted(identification.devices))
        print(
            f"Identified faulty device(s): {devices} "
            f"(after {identification.windows_used} window(s), "
            f"converged={identification.converged})"
        )
        assert "fridge" in identification.devices


if __name__ == "__main__":
    main()
