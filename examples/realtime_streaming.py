#!/usr/bin/env python
"""Real-time gateway simulation: DICE consuming a live event stream.

Trains a detector, then replays a day of events *one at a time* through
the streaming runtime — the deployment mode the thesis describes for the
home gateway — printing alerts as they are raised.  Halfway through, a
kitchen temperature sensor develops a stuck-at fault.

Run:  python examples/realtime_streaming.py
"""

import numpy as np

from repro.core import DiceDetector
from repro.datasets import load_dataset
from repro.faults import inject_stuck_at
from repro.streaming import OnlineDice

HOUR = 3600.0


def hhmm(seconds: float) -> str:
    return f"{int(seconds // HOUR) % 24:02d}:{int(seconds % HOUR // 60):02d}"


def main() -> None:
    print("Generating the D_houseA testbed and training DICE ...")
    data = load_dataset("D_houseA", seed=3, hours=120.0)
    trace = data.trace
    detector = DiceDetector(trace.registry).fit(trace.slice(0.0, 96.0 * HOUR))
    print(
        f"  trained on 96 h: {len(detector.model.groups)} groups, "
        f"degree {detector.model.correlation_degree:.2f}"
    )

    # Day 5, with a stuck-at fault on the kitchen thermometer at 18:00.
    segment = trace.slice(96.0 * HOUR, 120.0 * HOUR)
    onset = 96.0 * HOUR + 18.0 * HOUR
    faulty = inject_stuck_at(segment, "t_kitchen", onset, np.random.default_rng(0))
    print(f"\nStreaming day 5 event by event (fault at {hhmm(onset)}) ...")

    gateway = OnlineDice(detector, start=segment.start)
    shown = 0
    for event in faulty:
        for alert in gateway.push(event):
            if shown < 12:
                shown += 1
                if alert.kind == "detection":
                    print(f"  [{hhmm(alert.time)}] DETECTION via {alert.check} check")
                else:
                    devices = ", ".join(sorted(alert.devices))
                    print(
                        f"  [{hhmm(alert.time)}] IDENTIFIED: {devices} "
                        f"(converged={alert.converged})"
                    )
    gateway.advance_to(faulty.end)
    gateway.finish()

    detections = [a for a in gateway.alerts if a.kind == "detection"]
    identifications = [a for a in gateway.alerts if a.kind == "identification"]
    print(f"\ntotals: {len(detections)} detections, {len(identifications)} identifications")
    named = set()
    for alert in identifications:
        named |= alert.devices
    print(f"devices named: {sorted(named) or 'none'}")
    if "t_kitchen" in named:
        print("the stuck kitchen thermometer was correctly identified")


if __name__ == "__main__":
    main()
