#!/usr/bin/env python
"""Security attacks (Ch. VI): sensor spoofing against actuator automations.

Replays the thesis's two attack scenarios on the testbed: spoofing the
kitchen thermometer high (forcing the fan on — economic damage) and
spoofing the bedroom light sensor bright at night (driving the blinds —
privacy damage), then shows DICE flagging both.

Run:  python examples/security_attacks.py
"""

from repro.core import DiceDetector
from repro.datasets import load_dataset
from repro.faults import light_attack, temperature_attack

HOUR = 3600.0


def main() -> None:
    print("Generating the D_houseA testbed and training DICE ...")
    data = load_dataset("D_houseA", seed=5, hours=150.0)
    trace = data.trace
    detector = DiceDetector(trace.registry).fit(trace.slice(0.0, 120.0 * HOUR))

    print("\nAttack 1: temperature spoof (forces the WeMo fan on)")
    segment = trace.slice(137.0 * HOUR, 143.0 * HOUR)  # day 5, 17:00-23:00
    attacked, attack = temperature_attack(
        segment, "t_kitchen", segment.start + 1.5 * HOUR
    )
    _report(detector, attacked, attack)

    print("\nAttack 2: light spoof while the user sleeps (drives the blind)")
    segment = trace.slice(142.0 * HOUR, 148.0 * HOUR)  # night
    attacked, attack = light_attack(segment, "l_bedroom", segment.start + 2 * HOUR)
    _report(detector, attacked, attack)


def _report(detector, attacked, attack) -> None:
    report = detector.process(attacked)
    detection = next(
        (d for d in report.detections if d.time >= attack.onset), None
    )
    if detection is None:
        print("  NOT detected")
        return
    delay = (detection.time - attack.onset) / 60.0
    print(
        f"  detected via the {detection.check} check "
        f"{delay:.1f} min after the spoofing began"
    )
    named = report.identified_devices()
    if attack.victim_device_id in named:
        print(f"  spoofed sensor identified: {attack.victim_device_id}")
    else:
        print(f"  suspects named: {sorted(named) or 'none'}")


if __name__ == "__main__":
    main()
