"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs wheel support that this
offline environment lacks; `python setup.py develop` installs the same
editable package with plain setuptools.
"""

from setuptools import setup

setup()
