"""DICE reproduction: detecting and identifying faulty IoT devices in smart
homes with context extraction (Choi, DSN 2018 / POSTECH thesis 2017).

Quick tour
----------
>>> from repro.datasets import load_dataset
>>> from repro.core import DiceDetector
>>> data = load_dataset("houseA", seed=7)
>>> training = data.trace.slice(0, 300 * 3600.0)
>>> detector = DiceDetector(data.trace.registry).fit(training)

Subpackages
-----------
``repro.model``      devices, events, array-backed traces
``repro.core``       the DICE algorithm (the paper's contribution)
``repro.smarthome``  smart-home simulator (floor plan, physics, residents)
``repro.datasets``   the ten evaluation datasets of Table 4.1
``repro.faults``     fault injection (Ch. IV) and security attacks (Ch. VI)
``repro.eval``       metrics and the experiments behind every table/figure
``repro.baselines``  comparator detectors (Table 2.1 families)
``repro.streaming``  online, event-at-a-time DICE runtime
"""

__version__ = "1.0.0"
