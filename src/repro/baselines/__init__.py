"""Comparison detectors: DICE ablations and Table 2.1 approach families."""

from .base import BaselineDetection, BaselineDetector, BaselineReport
from .dice_variants import CorrelationOnlyDetector, MarkovOnlyDetector
from .lcs_clean import LcsCleanDetector
from .majority_vote import MajorityVoteDetector
from .timeseries_ar import TimeSeriesARDetector

#: Constructors for every bundled baseline, keyed by name.
BASELINES = {
    CorrelationOnlyDetector.name: CorrelationOnlyDetector,
    MarkovOnlyDetector.name: MarkovOnlyDetector,
    MajorityVoteDetector.name: MajorityVoteDetector,
    TimeSeriesARDetector.name: TimeSeriesARDetector,
    LcsCleanDetector.name: LcsCleanDetector,
}

__all__ = [
    "BaselineDetection",
    "BaselineDetector",
    "BaselineReport",
    "CorrelationOnlyDetector",
    "MarkovOnlyDetector",
    "LcsCleanDetector",
    "MajorityVoteDetector",
    "TimeSeriesARDetector",
    "BASELINES",
]
