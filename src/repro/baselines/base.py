"""Common interface for the comparison detectors.

Every baseline mirrors the DICE driver surface — ``fit`` on fault-free
training data, ``process`` on a segment — and returns a
:class:`BaselineReport`, so the comparison experiment (E12) can run any
mix of detectors over the same segment pairs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..model import Trace


@dataclass
class BaselineDetection:
    """One anomaly a baseline raised."""

    time: float
    device_id: Optional[str] = None


@dataclass
class BaselineReport:
    """What a baseline observed over one segment."""

    detections: List[BaselineDetection] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    @property
    def first_detection(self) -> Optional[BaselineDetection]:
        return self.detections[0] if self.detections else None

    def identified_devices(self) -> FrozenSet[str]:
        return frozenset(
            d.device_id for d in self.detections if d.device_id is not None
        )


class BaselineDetector(abc.ABC):
    """Fit-once, process-many detector interface."""

    name: str = "baseline"

    @abc.abstractmethod
    def fit(self, trace: Trace) -> "BaselineDetector":
        """Learn normal behaviour from fault-free data."""

    @abc.abstractmethod
    def process(self, segment: Trace) -> BaselineReport:
        """Scan one real-time segment for anomalies."""
