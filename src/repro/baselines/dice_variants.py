"""DICE ablation baselines: correlation-only and transition-only.

These isolate the contribution of each DICE check (the paper argues both
are necessary: Fig. 5.4 shows fail-stop faults need the correlation check
and stuck-at faults need the transition check).

* :class:`CorrelationOnlyDetector` — DICE with the transition check
  disabled; it can only notice unseen sensor combinations.
* :class:`MarkovOnlyDetector` — a 6thSense-style Markov-chain monitor:
  state sets are interned like DICE groups, but the *only* test is the
  transition probability of consecutive states (unknown states are mapped
  to their nearest group rather than flagged).
"""

from __future__ import annotations

from typing import Optional

from ..core import (
    DEFAULT_CONFIG,
    CorrelationChecker,
    DiceConfig,
    GroupRegistry,
    StateSetEncoder,
    TransitionChecker,
    TransitionModel,
)
from ..model import Trace
from .base import BaselineDetection, BaselineDetector, BaselineReport


class CorrelationOnlyDetector(BaselineDetector):
    """DICE's correlation check alone."""

    name = "correlation-only"

    def __init__(self, config: DiceConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self._encoder: Optional[StateSetEncoder] = None
        self._checker: Optional[CorrelationChecker] = None

    def fit(self, trace: Trace) -> "CorrelationOnlyDetector":
        self._encoder = StateSetEncoder(
            trace.registry, self.config.window_seconds
        ).fit(trace)
        windowed = self._encoder.encode(trace)
        groups, _ = GroupRegistry.from_windows(windowed)
        self._checker = CorrelationChecker(groups, self.config)
        return self

    def process(self, segment: Trace) -> BaselineReport:
        if self._checker is None:
            raise RuntimeError("fit() first")
        windowed = self._encoder.encode(segment)
        report = BaselineReport()
        for i, mask in enumerate(windowed.masks):
            result = self._checker.check(mask)
            if result.is_violation:
                time = windowed.window_start(i) + windowed.window_seconds
                device = None
                if result.probable_groups:
                    nearest = result.probable_groups[0][0]
                    diff = mask ^ self._checker.groups.mask_of(nearest)
                    owners = windowed.layout.devices_of_mask(diff)
                    device = owners[0] if owners else None
                report.detections.append(BaselineDetection(time, device))
        return report


class MarkovOnlyDetector(BaselineDetector):
    """A transition-probability-only monitor (6thSense-style)."""

    name = "markov-only"

    def __init__(self, config: DiceConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self._encoder: Optional[StateSetEncoder] = None
        self._groups: Optional[GroupRegistry] = None
        self._checker: Optional[TransitionChecker] = None

    def fit(self, trace: Trace) -> "MarkovOnlyDetector":
        self._encoder = StateSetEncoder(
            trace.registry, self.config.window_seconds
        ).fit(trace)
        windowed = self._encoder.encode(trace)
        self._groups, sequence = GroupRegistry.from_windows(windowed)
        transitions = TransitionModel.extract(
            sequence, windowed.actuator_activations
        )
        self._checker = TransitionChecker(transitions, self.config, self._groups)
        return self

    def _nearest_group(self, mask: int) -> Optional[int]:
        exact = self._groups.lookup(mask)
        if exact is not None:
            return exact
        candidates = self._groups.candidates(mask, self._groups.layout.num_bits)
        return candidates[0][0] if candidates else None

    def process(self, segment: Trace) -> BaselineReport:
        if self._checker is None:
            raise RuntimeError("fit() first")
        windowed = self._encoder.encode(segment)
        report = BaselineReport()
        prev_group: Optional[int] = None
        prev_acts = frozenset()
        for i, (mask, acts) in enumerate(windowed):
            group = self._nearest_group(mask)
            if group is not None:
                violations = self._checker.check(prev_group, group, prev_acts, acts)
                if violations:
                    time = windowed.window_start(i) + windowed.window_seconds
                    report.detections.append(
                        BaselineDetection(time, violations[0].actuator)
                    )
            prev_group = group
            prev_acts = acts
        return report
