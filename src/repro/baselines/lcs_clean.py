"""CLEAN-style co-activation outlier baseline (§2.3).

CLEAN clusters binary sensors by the similarity of their event sequences
and flags sensors that drift away from their cluster.  This
implementation keeps the spirit with a tractable similarity: training
computes, for each sensor, its *partners* — sensors whose window-level
activations overlap strongly (Jaccard similarity above a threshold).  At
run time, a sensor whose observed co-activation rate with its partners
collapses relative to training is reported as an outlier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


from ..core import DEFAULT_CONFIG, DiceConfig, StateSetEncoder
from ..model import Trace
from .base import BaselineDetection, BaselineDetector, BaselineReport


def _activation_sets(encoder: StateSetEncoder, trace: Trace) -> Dict[str, Set[int]]:
    """Windows in which each sensor was active."""
    windowed = encoder.encode(trace)
    layout = windowed.layout
    active: Dict[str, Set[int]] = {
        d.device_id: set() for d in trace.registry.sensors()
    }
    for i, mask in enumerate(windowed.masks):
        if not mask:
            continue
        for device_id in layout.devices_of_mask(mask):
            active[device_id].add(i)
    return active


def _jaccard(a: Set[int], b: Set[int]) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


class LcsCleanDetector(BaselineDetector):
    """Co-activation-cluster outlier detection."""

    name = "clean-lcs"

    def __init__(
        self,
        config: DiceConfig = DEFAULT_CONFIG,
        partner_similarity: float = 0.3,
        drop_ratio: float = 0.3,
        min_active_windows: int = 5,
    ) -> None:
        self.config = config
        self.partner_similarity = partner_similarity
        self.drop_ratio = drop_ratio
        self.min_active_windows = min_active_windows
        self._encoder: Optional[StateSetEncoder] = None
        self._partners: Dict[str, List[str]] = {}
        self._train_rate: Dict[str, float] = {}

    def fit(self, trace: Trace) -> "LcsCleanDetector":
        self._encoder = StateSetEncoder(
            trace.registry, self.config.window_seconds
        ).fit(trace)
        active = _activation_sets(self._encoder, trace)
        self._partners = {}
        self._train_rate = {}
        for device_id, windows in active.items():
            if len(windows) < self.min_active_windows:
                continue
            partners = [
                other
                for other, other_windows in active.items()
                if other != device_id
                and _jaccard(windows, other_windows) >= self.partner_similarity
            ]
            if not partners:
                continue
            partner_windows: Set[int] = set()
            for partner in partners:
                partner_windows |= active[partner]
            if not partner_windows:
                continue
            self._partners[device_id] = partners
            self._train_rate[device_id] = len(windows & partner_windows) / len(
                partner_windows
            )
        return self

    def process(self, segment: Trace) -> BaselineReport:
        if self._encoder is None:
            raise RuntimeError("fit() first")
        active = _activation_sets(self._encoder, segment)
        report = BaselineReport()
        for device_id, partners in self._partners.items():
            partner_windows: Set[int] = set()
            for partner in partners:
                partner_windows |= active.get(partner, set())
            if len(partner_windows) < self.min_active_windows:
                continue
            rate = len(active.get(device_id, set()) & partner_windows) / len(
                partner_windows
            )
            if rate < self.drop_ratio * self._train_rate[device_id]:
                report.detections.append(
                    BaselineDetection(segment.end, device_id)
                )
        return report
