"""Homogeneous majority-vote baseline.

The classic WSN approach (§2.2): sensors of the same modality that live
close together should agree; a sensor persistently disagreeing with the
majority of its peers is flagged.  Peers here are same-modality sensors of
the same room (falling back to same-modality house-wide when a room has no
peers), and agreement is window-level activation as seen by the DICE
encoder — which keeps the comparison apples-to-apples.

Its structural weakness, which the paper uses to motivate heterogeneous
approaches, shows up immediately: deployments without redundant same-type
sensors (houseA!) leave most devices peerless and therefore unprotected.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import DEFAULT_CONFIG, DiceConfig, StateSetEncoder
from ..model import Trace
from .base import BaselineDetection, BaselineDetector, BaselineReport


class MajorityVoteDetector(BaselineDetector):
    """Flags sensors that disagree with their modality peers."""

    name = "majority-vote"

    def __init__(
        self,
        config: DiceConfig = DEFAULT_CONFIG,
        min_peers: int = 2,
        disagreement_windows: int = 3,
    ) -> None:
        self.config = config
        self.min_peers = min_peers
        self.disagreement_windows = disagreement_windows
        self._encoder: Optional[StateSetEncoder] = None
        self._peers: Dict[str, List[str]] = {}

    def fit(self, trace: Trace) -> "MajorityVoteDetector":
        self._encoder = StateSetEncoder(
            trace.registry, self.config.window_seconds
        ).fit(trace)
        self._peers = {}
        sensors = trace.registry.sensors()
        for sensor in sensors:
            room_peers = [
                other.device_id
                for other in sensors
                if other.device_id != sensor.device_id
                and other.sensor_type == sensor.sensor_type
                and other.room == sensor.room
            ]
            if len(room_peers) < self.min_peers:
                room_peers = [
                    other.device_id
                    for other in sensors
                    if other.device_id != sensor.device_id
                    and other.sensor_type == sensor.sensor_type
                ]
            if len(room_peers) >= self.min_peers:
                self._peers[sensor.device_id] = room_peers
        return self

    def _activity_of(self, windowed, device_id: str) -> List[bool]:
        bits = windowed.layout.bits_of_device(device_id)
        return [
            any(mask >> bit & 1 for bit in bits) for mask in windowed.masks
        ]

    def process(self, segment: Trace) -> BaselineReport:
        if self._encoder is None:
            raise RuntimeError("fit() first")
        windowed = self._encoder.encode(segment)
        activity = {
            device_id: self._activity_of(windowed, device_id)
            for device_id in set(self._peers)
            | {p for peers in self._peers.values() for p in peers}
        }
        report = BaselineReport()
        for device_id, peers in self._peers.items():
            mine = activity[device_id]
            streak = 0
            for i in range(len(windowed)):
                votes = sum(activity[p][i] for p in peers)
                majority = votes * 2 > len(peers)
                if mine[i] != majority:
                    streak += 1
                    if streak >= self.disagreement_windows:
                        time = (
                            windowed.window_start(i) + windowed.window_seconds
                        )
                        report.detections.append(
                            BaselineDetection(time, device_id)
                        )
                        break
                else:
                    streak = 0
        report.detections.sort(key=lambda d: d.time)
        return report
