"""Time-series prediction-residual baseline (§2.2, Sharma et al. style).

For every numeric sensor an AR(1) model over per-window mean readings is
fitted on training data; at run time the one-step prediction residual is
compared against a multiple of the training residual deviation.  Windows
without readings are skipped — the model can only judge values the sensor
actually reports, which is exactly the class of methods the paper
criticises: fail-stop faults (no data at all) are invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core import DEFAULT_CONFIG, DiceConfig
from ..model import Trace
from .base import BaselineDetection, BaselineDetector, BaselineReport


@dataclass
class _ARModel:
    intercept: float
    slope: float
    sigma: float


def _window_means(
    trace: Trace, device_id: str, window_seconds: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-window mean readings; returns (window_index, mean)."""
    times, values = trace.events_for(device_id)
    if len(times) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    win = np.floor((times - trace.start) / window_seconds).astype(np.int64)
    order = np.argsort(win, kind="stable")
    win, values = win[order], values[order]
    boundary = np.empty(len(win), dtype=bool)
    boundary[0] = True
    boundary[1:] = win[1:] != win[:-1]
    starts = np.nonzero(boundary)[0]
    counts = np.append(starts[1:], len(win)) - starts
    sums = np.add.reduceat(values, starts)
    return win[starts], sums / counts


def _fit_ar1(series: np.ndarray) -> Optional[_ARModel]:
    if len(series) < 8:
        return None
    x, y = series[:-1], series[1:]
    var = np.var(x)
    if var < 1e-12:
        slope = 0.0
        intercept = float(np.mean(y))
    else:
        slope = float(np.cov(x, y, bias=True)[0, 1] / var)
        intercept = float(np.mean(y) - slope * np.mean(x))
    residuals = y - (intercept + slope * x)
    sigma = float(np.std(residuals))
    return _ARModel(intercept, slope, max(sigma, 1e-6))


class TimeSeriesARDetector(BaselineDetector):
    """Per-sensor AR(1) residual monitor for numeric sensors."""

    name = "timeseries-ar"

    def __init__(
        self, config: DiceConfig = DEFAULT_CONFIG, threshold_sigmas: float = 6.0
    ) -> None:
        self.config = config
        self.threshold_sigmas = threshold_sigmas
        self._models: Dict[str, _ARModel] = {}

    def fit(self, trace: Trace) -> "TimeSeriesARDetector":
        self._models = {}
        for device in trace.registry.numeric_sensors():
            _, means = _window_means(
                trace, device.device_id, self.config.window_seconds
            )
            model = _fit_ar1(means)
            if model is not None:
                self._models[device.device_id] = model
        return self

    def process(self, segment: Trace) -> BaselineReport:
        report = BaselineReport()
        for device_id, model in self._models.items():
            windows, means = _window_means(
                segment, device_id, self.config.window_seconds
            )
            if len(means) < 2:
                continue
            predictions = model.intercept + model.slope * means[:-1]
            residuals = np.abs(means[1:] - predictions)
            bad = np.nonzero(residuals > self.threshold_sigmas * model.sigma)[0]
            if len(bad):
                first = int(bad[0]) + 1
                time = (
                    segment.start
                    + (windows[first] + 1) * self.config.window_seconds
                )
                report.detections.append(BaselineDetection(time, device_id))
        report.detections.sort(key=lambda d: d.time)
        return report
