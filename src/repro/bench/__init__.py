"""Performance benchmark harness (``repro bench``)."""

from .perf import (
    BENCH_SCHEMA,
    DEFAULT_OUTPUT,
    bench_backends,
    bench_fleet,
    bench_provenance,
    bench_service,
    bench_telemetry,
    run_benchmarks,
    validate_document,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_OUTPUT",
    "bench_backends",
    "bench_fleet",
    "bench_provenance",
    "bench_service",
    "bench_telemetry",
    "run_benchmarks",
    "validate_document",
]
