"""Timing harness for the detection hot paths (``repro bench``).

The paper singles out "obtaining probable groups" — the Hamming scan over
all training groups — as the dominant real-time cost (Fig. 5.3); this
module times exactly the paths successive PRs optimise and writes the
results to ``BENCH_perf.json`` so future changes have a trajectory to
regress against:

* **fit** — group interning (``GroupRegistry.from_windows``) over growing
  synthetic traces; linear thanks to the capacity-doubled bitset storage;
* **scan** — the per-window correlation check over ``G`` groups ×
  ``W`` windows, four ways: uncached scalar (the seed path), memoised
  scalar cold/warm, and the batched ``check_many`` matrix pass;
* **telemetry** — the batched segment pipeline with a live metrics
  registry vs the disabled ``NULL_REGISTRY`` twin, so the instrumentation
  cost stays visible (budget: ≤ 5 % overhead);
* **eval** — the end-to-end Ch. V protocol with the process-parallel
  ``EvaluationRunner``, checking that worker counts do not change the
  aggregate results;
* **fleet** — the sharded multi-home gateway over a homes x shards grid,
  asserting per-home alerts stay byte-identical across shard counts;
* **journal** — the durable gateway's write-ahead journal cost: the same
  live stream through a plain hardened runtime vs a journaled one under
  each fsync policy (budget: ≤ 1.5x under ``fsync=never``);
* **provenance** — the alert-evidence recorder's hot-path cost: the same
  live stream with ``NULL_PROVENANCE`` vs the default recorder (budget:
  ≤ 1.1x events/s — evidence capture must be nearly free because it only
  does work when an alert actually fires);
* **scenarios** — the scenario-matrix harness (``repro scenarios``) over
  the drift refresh A/B cells, so the cost of a robustness sweep and the
  graceful-degradation delta both stay on the trajectory;
* **service** — the network front-end's cost: the same live stream
  in-process vs over a loopback ingest socket (framing + asyncio + the
  thread hop) with alert parity asserted, plus an overload arm proving
  the bounded queue sheds structurally and a retrying client still lands
  the complete stream;
* **capacity** — the estate-scale question: H homes stamped from K
  archetypes, run shared+batched (content-addressed contexts, cross-home
  memo-prewarming tick) vs fully replicated with per-home event loops,
  with per-home alert parity asserted, trained-state bytes/home from the
  deterministic estimator, and a memory projection out to 100k homes.

All workloads are seeded and synthetic — the harness needs no dataset
files and produces no timing *assertions* (CI runs it as a smoke test;
regressions are judged by humans reading the JSON trajectory).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..core import DiceConfig, DiceDetector
from ..core.checks import CorrelationChecker
from ..core.encoding import BitLayout, WindowedTrace
from ..core.groups import GroupRegistry
from ..model import DeviceRegistry, SensorType, binary_sensor

#: /2 added the ``telemetry`` overhead section; /3 added the ``fleet``
#: homes x shards scaling section; /4 added the ``journal`` write-ahead
#: journal overhead section; /5 added the ``scenarios`` matrix section;
#: /6 added the ``capacity`` shared-context section, per-kernel scan
#: accounting, and effective worker counts in ``eval``; /7 added the
#: ``provenance`` evidence-recorder overhead section; /8 added the
#: ``backends`` per-backend streaming comparison section; /9 added the
#: ``service`` loopback ingest-service overhead + overload section.
BENCH_SCHEMA = "dice-bench-perf/9"
DEFAULT_OUTPUT = "BENCH_perf.json"


# --------------------------------------------------------------------- #
# Synthetic workloads
# --------------------------------------------------------------------- #


def _synthetic_layout(num_bits: int) -> BitLayout:
    registry = DeviceRegistry(
        [
            binary_sensor(f"s{i:03d}", SensorType.MOTION, f"room{i % 8}")
            for i in range(num_bits)
        ]
    )
    return BitLayout(registry)


def _random_mask(rng: np.random.Generator, num_bits: int, density: float) -> int:
    bits = np.nonzero(rng.random(num_bits) < density)[0]
    mask = 0
    for b in bits:
        mask |= 1 << int(b)
    return mask


def _group_pool(
    rng: np.random.Generator, num_bits: int, count: int, density: float = 0.08
) -> List[int]:
    """*count* distinct synthetic group masks."""
    pool: List[int] = []
    seen = set()
    while len(pool) < count:
        mask = _random_mask(rng, num_bits, density)
        if mask not in seen:
            seen.add(mask)
            pool.append(mask)
    return pool


def _probe_stream(
    rng: np.random.Generator, pool: Sequence[int], num_bits: int, count: int
) -> List[int]:
    """A window-mask stream with smart-home repetition structure.

    State sets "retain their value for several rounds" (§5.2): ~70 % of
    windows repeat a known group mask, ~20 % are near misses (1-2 bits
    flipped), ~10 % are novel — so the stream exercises cache hits, probable
    groups, and violations alike.
    """
    probes: List[int] = []
    for _ in range(count):
        roll = rng.random()
        base = pool[int(rng.integers(len(pool)))]
        if roll < 0.7:
            probes.append(base)
        elif roll < 0.9:
            for b in rng.integers(0, num_bits, size=int(rng.integers(1, 3))):
                base ^= 1 << int(b)
            probes.append(base)
        else:
            probes.append(_random_mask(rng, num_bits, 0.1))
    return probes


# --------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------- #


def bench_fit(
    sizes: Sequence[int], num_bits: int, seed: int
) -> List[Dict]:
    """Group interning over growing synthetic traces (amortised append)."""
    layout = _synthetic_layout(num_bits)
    results = []
    for n_windows in sizes:
        rng = np.random.default_rng(seed)
        # ~60 % unique masks so the registry itself grows with the trace.
        pool = _group_pool(rng, num_bits, max(2, int(n_windows * 0.6)))
        masks = [pool[int(rng.integers(len(pool)))] for _ in range(n_windows)]
        windowed = WindowedTrace(
            layout, 60.0, 0.0, masks, [frozenset()] * n_windows
        )
        t0 = time.perf_counter()
        registry, _ = GroupRegistry.from_windows(windowed)
        seconds = time.perf_counter() - t0
        results.append(
            {
                "windows": int(n_windows),
                "groups": len(registry),
                "seconds": seconds,
            }
        )
    return results


def _best_of(repeats: int, make_timed):
    """Run ``make_timed()`` *repeats* times; return (best seconds, result).

    Taking the minimum is the standard defence against scheduler noise on
    loaded machines — every run does identical work, so the fastest run is
    the closest to the true cost.
    """
    best_s = float("inf")
    result = None
    for i in range(repeats):
        t0 = time.perf_counter()
        out = make_timed()
        seconds = time.perf_counter() - t0
        if seconds < best_s:
            best_s = seconds
        if i == 0:
            result = out
    return best_s, result


def bench_scan(
    n_groups: int, n_windows: int, num_bits: int, seed: int, repeats: int = 3
) -> Dict:
    """The correlation check four ways over G groups × W windows."""
    rng = np.random.default_rng(seed)
    layout = _synthetic_layout(num_bits)
    groups = GroupRegistry(layout)
    for mask in _group_pool(rng, num_bits, n_groups):
        groups.add(mask)
    probes = _probe_stream(rng, groups.masks, num_bits, n_windows)
    config = DiceConfig(max_candidate_distance=2)

    # Seed scalar path: one uncached scan per window.
    scalar = CorrelationChecker(groups, config, cache_size=0)
    scalar_s, scalar_results = _best_of(
        repeats, lambda: [scalar.scan(mask) for mask in probes]
    )

    # Memoised scalar: cold pass fills the LRU, warm pass mostly hits it.
    def _memo_cold():
        checker = CorrelationChecker(groups, config)
        return checker, [checker.check(mask) for mask in probes]

    memo_cold_s, (memo, memo_results) = _best_of(repeats, _memo_cold)
    memo_warm_s, _ = _best_of(
        repeats, lambda: [memo.check(mask) for mask in probes]
    )

    # Batch + memoised: one (W, G) matrix pass over the cache misses.
    def _kernel_delta(before: Dict[str, int]) -> Dict[str, int]:
        calls = groups._bitsets.kernel_calls
        return {name: calls[name] - before[name] for name in calls}

    def _dominant(delta: Dict[str, int]) -> str:
        if not any(delta.values()):
            return "none"
        return max(delta, key=lambda name: delta[name])

    def _batch_cold():
        checker = CorrelationChecker(groups, config)
        return checker, checker.check_many(probes)

    before = dict(groups._bitsets.kernel_calls)
    batch_cold_s, (batch, batch_results) = _best_of(repeats, _batch_cold)
    cold_calls = _kernel_delta(before)
    cold_info = batch.cache_info()  # counters from the first cold pass only
    before = dict(groups._bitsets.kernel_calls)
    batch_warm_s, _ = _best_of(repeats, lambda: batch.check_many(probes))
    warm_calls = _kernel_delta(before)

    if not (scalar_results == memo_results == batch_results):
        raise AssertionError("scalar, memoised and batch paths disagree")

    # The DiceConfig crossover knob, both ways: force the GEMM kernel and
    # the XOR+popcount kernel for the same cold batch pass.  Results must
    # not move — the kernel choice is a pure performance decision.
    default_min_rows = groups.gemm_min_rows
    forced_kernel_s: Dict[str, float] = {}
    try:
        for label, min_rows in (("gemm", 0), ("xor", 1 << 30)):
            forced_config = DiceConfig(
                max_candidate_distance=2, gemm_min_rows=min_rows
            )

            def _forced():
                checker = CorrelationChecker(groups, forced_config)
                return checker.check_many(probes)

            seconds, forced_results = _best_of(repeats, _forced)
            if forced_results != batch_results:
                raise AssertionError(
                    f"forced {label} kernel changed correlation results"
                )
            forced_kernel_s[label] = seconds
    finally:
        groups.gemm_min_rows = default_min_rows

    def _speedup(base: float, new: float) -> float:
        return base / new if new > 0 else float("inf")

    return {
        "groups": int(n_groups),
        "windows": int(n_windows),
        "num_bits": int(num_bits),
        "scalar_s": scalar_s,
        "memoized_cold_s": memo_cold_s,
        "memoized_warm_s": memo_warm_s,
        "batch_cold_s": batch_cold_s,
        "batch_warm_s": batch_warm_s,
        "cache_hits": cold_info["hits"],
        "cache_misses": cold_info["misses"],
        "gemm_min_rows": int(default_min_rows),
        "kernel": _dominant(cold_calls),
        "kernel_calls": {"batch_cold": cold_calls, "batch_warm": warm_calls},
        "forced_kernel_s": forced_kernel_s,
        "per_window_us": {
            "scalar": 1e6 * scalar_s / n_windows,
            "memoized_warm": 1e6 * memo_warm_s / n_windows,
            "batch_cold": 1e6 * batch_cold_s / n_windows,
        },
        "speedup_batch_vs_scalar": _speedup(scalar_s, batch_cold_s),
        "speedup_warm_vs_scalar": _speedup(scalar_s, batch_warm_s),
    }


def bench_eval(
    dataset: str,
    hours: float,
    precompute_hours: float,
    pairs: int,
    seed: int,
    workers_list: Sequence[int],
) -> Dict:
    """End-to-end Ch. V protocol wall clock per worker count."""
    from ..datasets import load_dataset
    from ..eval import EvaluationRunner

    data = load_dataset(dataset, seed=seed, hours=hours)
    runs = []
    fingerprints = []
    for workers in workers_list:
        runner = EvaluationRunner(
            precompute_hours=precompute_hours,
            pairs=pairs,
            seed=seed,
            workers=workers,
        )
        t0 = time.perf_counter()
        result = runner.evaluate(dataset, data.trace)
        seconds = time.perf_counter() - t0
        fingerprints.append(result.aggregate_fingerprint())
        runs.append(
            {
                "workers": int(workers),
                # The runner caps worker pools at os.cpu_count(); record
                # what actually ran so trajectories on small machines are
                # honest about it.
                "effective_workers": int(runner.workers),
                "seconds": seconds,
                "fingerprint": fingerprints[-1],
                "cache_hit_rate": result.timings.correlation_cache_hit_rate,
            }
        )
    return {
        "dataset": dataset,
        "hours": float(hours),
        "pairs": int(pairs),
        "runs": runs,
        "aggregates_identical": len(set(fingerprints)) <= 1,
    }


def _fitted_segment(
    n_groups: int, n_windows: int, num_bits: int, seed: int, metrics=None
):
    """A fitted synthetic detector plus a probe segment to replay into it."""
    rng = np.random.default_rng(seed)
    layout = _synthetic_layout(num_bits)
    pool = _group_pool(rng, num_bits, n_groups)
    training_masks = [pool[int(rng.integers(len(pool)))] for _ in range(n_groups * 3)]
    from ..core.encoding import StateSetEncoder

    encoder = StateSetEncoder(layout.registry)
    encoder._value_thresholds = np.zeros(len(layout.registry))
    training = WindowedTrace(
        layout, 60.0, 0.0, training_masks, [frozenset()] * len(training_masks)
    )
    detector = DiceDetector(layout.registry, metrics=metrics).fit_windows(
        encoder, training
    )
    probes = _probe_stream(rng, pool, num_bits, n_windows)
    segment = WindowedTrace(layout, 60.0, 0.0, probes, [frozenset()] * len(probes))
    return detector, segment


def bench_detector_segment(
    n_groups: int, n_windows: int, num_bits: int, seed: int
) -> Dict:
    """Full ``process_windows`` (all four stages) batch vs scalar."""
    # NULL_REGISTRY keeps these trajectory numbers telemetry-free; the
    # instrumentation cost is measured separately by :func:`bench_telemetry`.
    detector, segment = _fitted_segment(
        n_groups, n_windows, num_bits, seed, metrics=telemetry.NULL_REGISTRY
    )

    # Clear the memo before each timed run so both paths start cold.
    detector._correlation_checker.clear_cache()
    t0 = time.perf_counter()
    scalar_report = detector.process_windows(segment, batch=False)
    scalar_s = time.perf_counter() - t0
    detector._correlation_checker.clear_cache()
    t0 = time.perf_counter()
    batch_report = detector.process_windows(segment, batch=True)
    batch_s = time.perf_counter() - t0
    if (
        scalar_report.detections != batch_report.detections
        or scalar_report.identifications != batch_report.identifications
    ):
        raise AssertionError("batch and scalar segment reports disagree")
    return {
        "groups": int(n_groups),
        "windows": int(n_windows),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "detections": len(batch_report.detections),
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
    }


def bench_telemetry(
    n_groups: int, n_windows: int, num_bits: int, seed: int, repeats: int = 5
) -> Dict:
    """Instrumentation overhead: the batched segment pipeline with a live
    :class:`~repro.telemetry.MetricsRegistry` vs the disabled
    ``NULL_REGISTRY`` twin.  The acceptance budget is ≤ 5 % overhead.

    Enabled and disabled runs are *interleaved* (off, on, off, on, ...) so
    slow drift in machine load — thermal throttling, a background task
    spinning up — hits both sides equally instead of being booked as
    telemetry overhead; best-of then suppresses the per-run jitter."""
    enabled, seg_on = _fitted_segment(
        n_groups, n_windows, num_bits, seed, metrics=telemetry.MetricsRegistry()
    )
    disabled, seg_off = _fitted_segment(
        n_groups, n_windows, num_bits, seed, metrics=telemetry.NULL_REGISTRY
    )

    def _timed(detector, segment):
        # publish=True is the production configuration: timings land in
        # the registry once per segment, inside the measured region.
        detector._correlation_checker.clear_cache()
        t0 = time.perf_counter()
        report = detector.process_windows(segment, batch=True)
        return time.perf_counter() - t0, report

    enabled_s = disabled_s = float("inf")
    enabled_report = disabled_report = None
    for i in range(repeats):
        seconds, report = _timed(disabled, seg_off)
        disabled_s = min(disabled_s, seconds)
        if i == 0:
            disabled_report = report
        seconds, report = _timed(enabled, seg_on)
        enabled_s = min(enabled_s, seconds)
        if i == 0:
            enabled_report = report

    if (
        enabled_report.detections != disabled_report.detections
        or enabled_report.identifications != disabled_report.identifications
    ):
        raise AssertionError("telemetry changed the segment report")
    ratio = enabled_s / disabled_s if disabled_s > 0 else float("inf")
    return {
        "groups": int(n_groups),
        "windows": int(n_windows),
        "enabled_s": enabled_s,
        "disabled_s": disabled_s,
        "overhead_ratio": ratio,
        "overhead_pct": (ratio - 1.0) * 100.0,
    }


def bench_fleet(
    homes_list: Sequence[int],
    shards_list: Sequence[int],
    hours: float,
    train_hours: float,
    seed: int,
) -> Dict:
    """Sharded multi-home gateway scaling: homes x shards wall clock.

    The fleet layer's contract is that sharding is *invisible* — per-home
    alert sequences are byte-identical for any shard count — so besides
    the scaling curve this section re-asserts parity on every cell and
    records the result (CI fails the document if it ever goes false).
    """
    from ..fleet import FleetGateway, build_fleet_homes, replay_fleet

    runs = []
    parity = True
    for num_homes in homes_list:
        homes = build_fleet_homes(
            num_homes, seed=seed, hours=hours, train_hours=train_hours
        )
        detectors = {
            home.home_id: home.fit_detector(metrics=telemetry.NULL_REGISTRY)
            for home in homes
        }
        events = sum(len(home.live) for home in homes)
        baseline: Optional[Dict[str, str]] = None
        for num_shards in shards_list:
            gateway = FleetGateway(num_shards, metrics=telemetry.NULL_REGISTRY)
            for home in homes:
                detector = detectors[home.home_id]
                detector._correlation_checker.clear_cache()
                gateway.add_home(home.home_id, detector, start=home.split)
            t0 = time.perf_counter()
            replay_fleet(gateway, homes)
            seconds = time.perf_counter() - t0
            canon = {
                home.home_id: repr(
                    [
                        (a.kind, a.time, a.check, a.cases,
                         tuple(sorted(a.devices)), a.converged)
                        for a in gateway.alerts_of(home.home_id)
                    ]
                )
                for home in homes
            }
            if baseline is None:
                baseline = canon
            elif canon != baseline:
                parity = False
            alerts = sum(len(gateway.alerts_of(h.home_id)) for h in homes)
            runs.append(
                {
                    "homes": int(num_homes),
                    "shards": int(num_shards),
                    "events": int(events),
                    "alerts": int(alerts),
                    "seconds": seconds,
                    "events_per_s": events / seconds if seconds > 0 else 0.0,
                    "alerts_per_s": alerts / seconds if seconds > 0 else 0.0,
                }
            )
    return {
        "hours": float(hours),
        "train_hours": float(train_hours),
        "runs": runs,
        "alerts_identical_across_shards": parity,
    }


def bench_journal(seed: int, hours: float = 4.5, repeats: int = 3) -> Dict:
    """Write-ahead journal overhead on the durable gateway.

    Streams one seeded chaos deployment's live events through a plain
    :class:`~repro.streaming.HardenedOnlineDice` and through
    :class:`~repro.durability.DurableOnlineDice` under every fsync policy.
    Baseline and journaled runs are interleaved (like
    :func:`bench_telemetry`) so machine-load drift hits all arms equally,
    and every arm's alert stream is asserted identical to the baseline's.
    The acceptance budget: ``fsync=never`` stays within 1.5x of no journal.
    """
    import tempfile

    from ..durability import DurableOnlineDice, FSYNC_POLICIES
    from ..faults.crash import (
        LATENESS_SECONDS,
        POLICY,
        build_chaos_deployment,
        canonical_alerts,
    )
    from ..streaming import HardenedOnlineDice

    deployment = build_chaos_deployment(seed, hours=hours)
    events = deployment.events

    def _timed_plain():
        detector = deployment.fit_detector(metrics=telemetry.NULL_REGISTRY)
        runtime = HardenedOnlineDice(
            detector, start=deployment.split,
            lateness_seconds=LATENESS_SECONDS, policy=POLICY,
        )
        t0 = time.perf_counter()
        alerts = runtime.ingest_many(events)
        alerts += runtime.finish_stream(deployment.end)
        return time.perf_counter() - t0, alerts

    def _timed_journal(fsync: str, journal_dir: str):
        detector = deployment.fit_detector(metrics=telemetry.NULL_REGISTRY)
        durable = DurableOnlineDice(
            detector, journal_dir, start=deployment.split, fsync=fsync,
            lateness_seconds=LATENESS_SECONDS, policy=POLICY,
        )
        t0 = time.perf_counter()
        alerts = durable.ingest_many(events)
        alerts += durable.finish_stream(deployment.end)
        seconds = time.perf_counter() - t0
        durable.close()
        return seconds, alerts

    baseline_s = float("inf")
    journal_s = {policy: float("inf") for policy in FSYNC_POLICIES}
    baseline_canon: Optional[str] = None
    identical = True
    with tempfile.TemporaryDirectory(prefix="dice-bench-journal-") as base:
        for i in range(repeats):
            seconds, alerts = _timed_plain()
            baseline_s = min(baseline_s, seconds)
            if baseline_canon is None:
                baseline_canon = canonical_alerts(alerts)
            for policy in FSYNC_POLICIES:
                seconds, alerts = _timed_journal(
                    policy, os.path.join(base, f"{policy}-{i}")
                )
                journal_s[policy] = min(journal_s[policy], seconds)
                if canonical_alerts(alerts) != baseline_canon:
                    identical = False
    if not identical:
        raise AssertionError("journaling changed the alert stream")

    def _ratio(seconds: float) -> float:
        return seconds / baseline_s if baseline_s > 0 else float("inf")

    return {
        "events": len(events),
        "alerts": len(alerts),
        "baseline_s": baseline_s,
        "journal_s": dict(journal_s),
        "overhead_ratio": {p: _ratio(s) for p, s in journal_s.items()},
        "overhead_pct_never": (_ratio(journal_s["never"]) - 1.0) * 100.0,
        "alerts_identical": identical,
    }


def bench_provenance(seed: int, hours: float = 24.0, repeats: int = 5) -> Dict:
    """Evidence-recorder overhead on the hardened streaming hot path.

    Streams one seeded chaos deployment's live events through a
    :class:`~repro.streaming.HardenedOnlineDice` twice: with the recorder
    replaced by ``NULL_PROVENANCE`` (the zero-cost twin) and with the
    default :class:`~repro.telemetry.ProvenanceRecorder`.  Arms are
    interleaved like :func:`bench_telemetry` so machine-load drift hits
    both equally, and the enabled arm's alert stream is asserted identical
    to the baseline's — evidence capture must observe, never steer.  The
    acceptance budget is ≤ 1.1x wall clock: the recorder only does real
    work when an alert fires, which is rare relative to events.
    """
    from ..faults.crash import (
        LATENESS_SECONDS,
        POLICY,
        build_chaos_deployment,
        canonical_alerts,
    )
    from ..streaming import HardenedOnlineDice

    deployment = build_chaos_deployment(seed, hours=hours)
    events = deployment.events

    def _timed(recorder_factory):
        detector = deployment.fit_detector(metrics=telemetry.NULL_REGISTRY)
        runtime = HardenedOnlineDice(
            detector, start=deployment.split,
            lateness_seconds=LATENESS_SECONDS, policy=POLICY,
            provenance=recorder_factory(),
        )
        t0 = time.perf_counter()
        alerts = runtime.ingest_many(events)
        alerts += runtime.finish_stream(deployment.end)
        return time.perf_counter() - t0, alerts, runtime

    disabled_s = enabled_s = float("inf")
    baseline_canon: Optional[str] = None
    identical = True
    records = 0
    for i in range(repeats):
        seconds, alerts, _ = _timed(lambda: telemetry.NULL_PROVENANCE)
        disabled_s = min(disabled_s, seconds)
        if baseline_canon is None:
            baseline_canon = canonical_alerts(alerts)
        seconds, alerts, runtime = _timed(telemetry.ProvenanceRecorder)
        enabled_s = min(enabled_s, seconds)
        if canonical_alerts(alerts) != baseline_canon:
            identical = False
        if i == 0:
            records = len(runtime.provenance.records())
    if not identical:
        raise AssertionError("provenance recording changed the alert stream")

    ratio = enabled_s / disabled_s if disabled_s > 0 else float("inf")
    return {
        "events": len(events),
        "alerts": len(alerts),
        "records": int(records),
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "events_per_s_disabled": (
            len(events) / disabled_s if disabled_s > 0 else 0.0
        ),
        "events_per_s_enabled": (
            len(events) / enabled_s if enabled_s > 0 else 0.0
        ),
        "overhead_ratio": ratio,
        "overhead_pct": (ratio - 1.0) * 100.0,
        "alerts_identical": identical,
    }


def bench_scenarios(seed: int, trials: int = 1) -> Dict:
    """Scenario-matrix wall clock over the drift refresh A/B cells.

    Runs the graceful-degradation pair(s) through the full harness —
    seeded injection, streaming runtime, report assembly, schema
    validation — and records both the cost and the sustained-alert-rate
    delta the refresh buys, so a regression in either shows up on the
    trajectory."""
    from ..scenarios import (
        ScenarioCell,
        ScenarioSettings,
        build_report,
        refresh_pairs,
        run_matrix,
        validate_report,
    )

    cells = [
        ScenarioCell("drift", variant, "synthetic", refresh=refresh)
        for variant in ("seasonal_shift", "device_replacement")
        for refresh in (False, True)
    ]
    settings = ScenarioSettings(trials=trials)
    t0 = time.perf_counter()
    results = run_matrix(cells, seed=seed, settings=settings)
    seconds = time.perf_counter() - t0
    doc = validate_report(
        build_report(results, seed=seed, settings=settings)
    )
    return {
        "cells": len(cells),
        "trials": int(trials),
        "seconds": seconds,
        "cells_per_s": len(cells) / seconds if seconds > 0 else 0.0,
        "report_valid": True,
        "refresh_pairs": refresh_pairs(doc),
    }


def bench_backends(
    seed: int, hours: float = 9.0, train_hours: float = 3.0
) -> List[Dict]:
    """Per-backend streaming cost over one synthetic home.

    Every registered backend fits on the same training prefix and streams
    the same live segment through the hardened runtime, so the entries
    compare fit cost and event throughput like-for-like.  Alert counts
    ride along as a coarse behavioural fingerprint (structure only — the
    schema never pins measured numbers)."""
    from ..core import available_backends, create_backend
    from ..faults.crash import _chaos_registry, _cyclic_trace
    from ..streaming import HardenedOnlineDice

    rng = np.random.default_rng((int(seed), 23))
    phase = float(rng.choice([480.0, 600.0, 720.0]))
    trace = _cyclic_trace(_chaos_registry(), hours, phase)
    split = trace.start + train_hours * 3600.0
    train = trace.slice(trace.start, split)
    live = trace.slice(split, trace.end)
    events = sum(1 for _ in live)
    entries: List[Dict] = []
    for name in available_backends():
        backend = create_backend(
            name, trace.registry, metrics=telemetry.NULL_REGISTRY
        )
        t0 = time.perf_counter()
        backend.fit(train)
        fit_seconds = time.perf_counter() - t0
        runtime = HardenedOnlineDice(backend, start=split)
        t0 = time.perf_counter()
        alerts = runtime.replay(live)
        stream_seconds = time.perf_counter() - t0
        entries.append(
            {
                "backend": name,
                "fit_seconds": fit_seconds,
                "stream_seconds": stream_seconds,
                "events": events,
                "events_per_s": (
                    events / stream_seconds if stream_seconds > 0 else 0.0
                ),
                "alerts": len(alerts),
            }
        )
    return entries


def _capacity_canon(gateway, home_ids: Sequence[str]) -> Dict[str, str]:
    """Per-home alert canon — kind/time/check/cases/devices/convergence."""
    return {
        home_id: repr(
            [
                (a.kind, a.time, a.check, a.cases,
                 tuple(sorted(a.devices)), a.converged)
                for a in gateway.alerts_of(home_id)
            ]
        )
        for home_id in home_ids
    }


def bench_capacity(
    num_homes: int,
    archetypes: int,
    windows_per_home: int,
    n_groups: int,
    num_bits: int = 96,
    seed: int = 0,
) -> Dict:
    """Estate-scale A/B: shared+batched fleet vs fully replicated.

    *num_homes* homes are stamped from *archetypes* canonical fits — the
    structure :func:`~repro.fleet.build_fleet_homes` models with
    ``unique_homes``, built synthetically here so ``H`` can be large
    without simulating ``H`` distinct lives.  Each arm streams the same
    per-window event batches through a :class:`~repro.fleet.FleetGateway`:

    * **shared** — content-addressed contexts + batched tick (the
      defaults): ``K`` trained states resident, one memo pre-warm pass
      per tick across every home on a context;
    * **replicated** — sharing and batching off: ``H`` private trained
      states, per-event scalar ingest (the pre-capacity fleet).

    Per-home alert parity across the arms is *asserted*, memory comes
    from the deterministic estimator via :meth:`FleetGateway.memory_report`,
    and the measured per-context bytes project the resident footprint out
    to 1k/10k/100k homes.  Detector construction and interning are
    untimed setup — the timed region is event flow only.
    """
    from ..core.detector import DiceDetector as _Detector, DiceModel
    from ..core.encoding import StateSetEncoder
    from ..fleet import FleetGateway
    from ..streaming import SupervisorPolicy

    rng = np.random.default_rng(seed)
    layout = _synthetic_layout(num_bits)
    config = DiceConfig(max_candidate_distance=2)
    # Effectively-disabled supervision: the A/B measures window flow, not
    # silence bookkeeping (quick smoke streams would trip real deadlines).
    policy = SupervisorPolicy(silence_seconds=1e15, quarantine_seconds=1e15)

    # One canonical fit plus one event stream per archetype.  Low mask
    # density keeps events-per-window realistic (~2-3 active sensors).
    density = 2.5 / num_bits
    canonical: List[DiceModel] = []
    window_events: List[List[List]] = []
    from ..model import Event

    for _ in range(archetypes):
        pool = _group_pool(rng, num_bits, n_groups, density=density)
        training_masks = [
            pool[int(rng.integers(len(pool)))] for _ in range(n_groups * 3)
        ]
        training = WindowedTrace(
            layout, 60.0, 0.0, training_masks, [frozenset()] * len(training_masks)
        )
        encoder = StateSetEncoder(layout.registry)
        encoder._value_thresholds = np.zeros(len(layout.registry))
        fitted = _Detector(
            layout.registry, config, metrics=telemetry.NULL_REGISTRY
        ).fit_windows(encoder, training)
        canonical.append(fitted.model)
        probes = _probe_stream(rng, pool, num_bits, windows_per_home)
        stream: List[List] = []
        for w, mask in enumerate(probes):
            if mask == 0:
                mask = 1  # a window needs at least one active sensor
            events = []
            j = 0
            while mask:
                bit = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                events.append(
                    Event(w * 60.0 + 1.0 + 0.5 * j, f"s{bit:03d}", 1.0)
                )
                j += 1
            stream.append(events)
        window_events.append(stream)

    home_ids = [f"cap-{i:05d}" for i in range(num_homes)]

    def _clone(model: DiceModel) -> _Detector:
        clone = DiceModel(
            model.encoder,
            model.groups.copy(),
            model.transitions.copy(),
            model.training_windows,
        )
        return _Detector.from_model(
            layout.registry, clone, config=config,
            metrics=telemetry.NULL_REGISTRY,
        )

    def _run_arm(shared: bool):
        gateway = FleetGateway(
            1,
            metrics=telemetry.NULL_REGISTRY,
            share_contexts=shared,
            batch_tick=shared,
        )
        for i, home_id in enumerate(home_ids):
            gateway.add_home(
                home_id,
                _clone(canonical[i % archetypes]),
                start=0.0,
                lateness_seconds=0.0,
                policy=policy,
            )
        events = 0
        t0 = time.perf_counter()
        for w in range(windows_per_home):
            batch = []
            for i, home_id in enumerate(home_ids):
                for event in window_events[i % archetypes][w]:
                    batch.append((home_id, event))
            events += len(batch)
            gateway.dispatch(batch)
        gateway.finish(windows_per_home * 60.0)
        seconds = time.perf_counter() - t0
        return gateway, seconds, events

    shared_gw, shared_s, events = _run_arm(shared=True)
    replicated_gw, replicated_s, _ = _run_arm(shared=False)

    if _capacity_canon(shared_gw, home_ids) != _capacity_canon(
        replicated_gw, home_ids
    ):
        raise AssertionError(
            "shared+batched fleet changed per-home alerts vs replicated"
        )

    shared_mem = shared_gw.memory_report()
    replicated_mem = replicated_gw.memory_report()
    per_context = (
        shared_mem["trained_bytes_shared"] / shared_mem["distinct_contexts"]
    )
    projection = []
    for target in (1_000, 10_000, 100_000):
        shared_bytes = archetypes * per_context
        projection.append(
            {
                "homes": target,
                "shared_bytes": int(shared_bytes),
                "replicated_bytes": int(target * per_context),
                "shared_bytes_per_home": shared_bytes / target,
                "replicated_bytes_per_home": per_context,
            }
        )
    reduction = (
        replicated_mem["trained_bytes_per_home"]
        / shared_mem["trained_bytes_per_home"]
        if shared_mem["trained_bytes_per_home"]
        else float("inf")
    )
    alerts = sum(len(shared_gw.alerts_of(h)) for h in home_ids)
    return {
        "homes": int(num_homes),
        "archetypes": int(archetypes),
        "windows_per_home": int(windows_per_home),
        "groups": int(n_groups),
        "num_bits": int(num_bits),
        "events": int(events),
        "alerts": int(alerts),
        "shared_s": shared_s,
        "replicated_s": replicated_s,
        "events_per_s_shared": events / shared_s if shared_s > 0 else 0.0,
        "events_per_s_replicated": (
            events / replicated_s if replicated_s > 0 else 0.0
        ),
        "speedup_shared_vs_replicated": (
            replicated_s / shared_s if shared_s > 0 else float("inf")
        ),
        "bytes_per_home_shared": shared_mem["trained_bytes_per_home"],
        "bytes_per_home_replicated": replicated_mem["trained_bytes_per_home"],
        "bytes_per_home_reduction": reduction,
        "dedup": shared_mem["store"],
        "rss_bytes": shared_mem["rss_bytes"],
        "projection": projection,
        "alerts_identical": True,
    }


def bench_service(
    seed: int, hours: float = 4.5, overload_events: int = 200
) -> Dict:
    """Loopback ingest-service cost and overload shedding.

    Three arms over one seeded chaos home:

    * **inprocess** — the live stream dispatched straight into a
      :class:`~repro.durability.DurableFleetGateway`, the no-network
      baseline;
    * **service** — the same stream through a real loopback
      :class:`~repro.service.IngestServer` on a :class:`ServiceThread`
      (framing + asyncio + the thread hop), per-home alert parity with the
      baseline *asserted*;
    * **overload** — a prefix re-sent against a tiny queue with an
      artificial per-event dispatch delay, so the offered rate is far
      above the drain rate on any machine: the queue depth must stay
      bounded by its capacity, every rejected event must surface as a
      structured OVERLOAD drop (shed, never buffered or lost silently),
      and the retrying client must still land the complete stream —
      overload degrades throughput, not correctness.
    """
    import tempfile

    from ..durability import DurableFleetGateway
    from ..faults.crash import (
        LATENESS_SECONDS,
        POLICY,
        build_chaos_deployment,
        canonical_alerts,
    )
    from ..fleet import FleetGateway
    from ..service import (
        IngestServer,
        ServiceClient,
        ServiceConfig,
        ServiceThread,
    )
    from ..streaming import HardenedOnlineDice
    from ..streaming.guard import OVERLOAD

    deployment = build_chaos_deployment(seed, hours=hours)
    events = deployment.events
    home = deployment.home_id

    def _gateway(journal_dir: str) -> DurableFleetGateway:
        gateway = FleetGateway(1, metrics=telemetry.NULL_REGISTRY)
        gateway.add_runtime(
            home,
            HardenedOnlineDice(
                deployment.fit_detector(metrics=telemetry.NULL_REGISTRY),
                start=deployment.split,
                lateness_seconds=LATENESS_SECONDS,
                policy=POLICY,
            ),
        )
        return DurableFleetGateway(gateway, journal_dir)

    queue_capacity = 8
    dispatch_delay_s = 0.002
    with tempfile.TemporaryDirectory(prefix="dice-bench-service-") as base:
        durable = _gateway(os.path.join(base, "inprocess"))
        t0 = time.perf_counter()
        for event in events:
            durable.dispatch([(home, event)])
        durable.finish_home(home, deployment.end)
        inprocess_s = time.perf_counter() - t0
        baseline_canon = canonical_alerts(durable.alerts_of(home))
        alerts = len(durable.alerts_of(home))
        durable.close()

        durable = _gateway(os.path.join(base, "service"))
        handle = ServiceThread(IngestServer(durable, ServiceConfig())).start()
        client = ServiceClient("127.0.0.1", handle.port, jitter_seed=seed)
        t0 = time.perf_counter()
        client.send_stream(home, events, end=deployment.end)
        service_s = time.perf_counter() - t0
        handle.drain()
        if canonical_alerts(durable.alerts_of(home)) != baseline_canon:
            raise AssertionError("the ingest service changed the alert stream")

        durable = _gateway(os.path.join(base, "overload"))
        server = IngestServer(
            durable,
            ServiceConfig(
                queue_capacity=queue_capacity,
                dispatch_delay_s=dispatch_delay_s,
                ack_every=16,
            ),
        )
        handle = ServiceThread(server).start()
        patient = ServiceClient(
            "127.0.0.1",
            handle.port,
            max_attempts=400,
            base_delay=0.002,
            max_delay=0.05,
            jitter_seed=seed,
        )
        subset = events[: min(overload_events, len(events))]
        t0 = time.perf_counter()
        report = patient.send_stream(home, subset, finish=False)
        overload_s = time.perf_counter() - t0
        sheds = handle.call(
            lambda: durable.runtime_of(home).drops.count(OVERLOAD)
        )
        max_depth = handle.call(lambda: server.max_queue_depth)
        applied = handle.call(lambda: durable.ingest_seqs.get(home, 0))
        handle.kill()

    return {
        "events": len(events),
        "alerts": alerts,
        "inprocess_s": inprocess_s,
        "service_s": service_s,
        "events_per_s_inprocess": (
            len(events) / inprocess_s if inprocess_s > 0 else 0.0
        ),
        "events_per_s_service": (
            len(events) / service_s if service_s > 0 else 0.0
        ),
        "overhead_ratio": (
            service_s / inprocess_s if inprocess_s > 0 else float("inf")
        ),
        "alerts_identical": True,
        "overload": {
            "events": len(subset),
            "queue_capacity": queue_capacity,
            "dispatch_delay_s": dispatch_delay_s,
            "seconds": overload_s,
            "events_per_s": len(subset) / overload_s if overload_s > 0 else 0.0,
            "sheds": int(sheds),
            "max_queue_depth": int(max_depth),
            "reconnects": report.connects,
            "applied": int(applied),
            "complete": applied == len(subset),
        },
    }


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def run_benchmarks(
    quick: bool = False,
    seed: int = 0,
    dataset: str = "houseA",
    groups: Optional[int] = None,
    windows: Optional[int] = None,
    workers_list: Optional[Sequence[int]] = None,
    num_bits: int = 96,
    capacity_homes: Optional[int] = None,
) -> Dict:
    """Run every section; returns the ``BENCH_perf.json`` document."""
    if quick:
        groups = groups or 120
        windows = windows or 800
        fit_sizes = [500, 2000]
        eval_hours, eval_precompute, eval_pairs = 100.0, 72.0, 4
        fleet_homes, fleet_shards = [2, 4], [1, 2, 4]
        fleet_hours, fleet_train = 30.0, 24.0
        journal_hours = 4.5
        scenario_trials = 1
        cap_homes, cap_archetypes, cap_windows, cap_groups = 200, 3, 12, 1024
    else:
        groups = groups or 500
        windows = windows or 5000
        fit_sizes = [2000, 8000, 16000]
        eval_hours, eval_precompute, eval_pairs = 120.0, 72.0, 12
        fleet_homes, fleet_shards = [4, 8, 16], [1, 2, 4, 8]
        fleet_hours, fleet_train = 48.0, 36.0
        journal_hours = 8.0
        scenario_trials = 3
        cap_homes, cap_archetypes, cap_windows, cap_groups = 1000, 4, 24, 4096
    if capacity_homes is not None:
        cap_homes = int(capacity_homes)
    cpus = os.cpu_count() or 1
    if workers_list is None:
        # Never request more workers than cores: the runner would cap them
        # anyway, and duplicate counts would just re-run identical cells.
        workers_list = sorted({w for w in (1, 2, cpus) if w <= cpus}) or [1]
    doc = {
        "schema": BENCH_SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "machine": {
            "cpus": cpus,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "fit": bench_fit(fit_sizes, num_bits, seed),
        "scan": [bench_scan(groups, windows, num_bits, seed)],
        "segment": bench_detector_segment(groups, windows, num_bits, seed),
        "telemetry": bench_telemetry(groups, windows, num_bits, seed),
        "eval": bench_eval(
            dataset, eval_hours, eval_precompute, eval_pairs, seed, workers_list
        ),
        "fleet": bench_fleet(
            fleet_homes, fleet_shards, fleet_hours, fleet_train, seed
        ),
        "journal": bench_journal(seed, hours=journal_hours),
        # A longer stream than the journal section: the recorder's cost is
        # per *alert*, so the gate needs enough events for the per-event
        # ratio to dominate setup jitter (the run is still ~2 s).
        "provenance": bench_provenance(seed, hours=24.0),
        "scenarios": bench_scenarios(seed, trials=scenario_trials),
        "backends": bench_backends(seed),
        "service": bench_service(seed),
        "capacity": bench_capacity(
            cap_homes, cap_archetypes, cap_windows, cap_groups,
            num_bits=num_bits, seed=seed,
        ),
    }
    validate_document(doc)
    return doc


def write_document(doc: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# --------------------------------------------------------------------- #
# Schema validation (no external dependency)
# --------------------------------------------------------------------- #


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"BENCH_perf.json schema violation: {message}")


def validate_document(doc: Dict) -> Dict:
    """Structurally validate a ``BENCH_perf.json`` document.

    Raises :class:`ValueError` on any shape mismatch; returns *doc* so the
    call can be chained.  Checks structure and value domains only — never
    timings — so CI validation cannot flake.
    """
    _require(isinstance(doc, dict), "top level must be an object")
    _require(doc.get("schema") == BENCH_SCHEMA, f"schema must be {BENCH_SCHEMA!r}")
    _require(isinstance(doc.get("quick"), bool), "quick must be a bool")
    machine = doc.get("machine")
    _require(isinstance(machine, dict), "machine must be an object")
    _require(
        isinstance(machine.get("cpus"), int) and machine["cpus"] >= 1,
        "machine.cpus must be a positive int",
    )
    for key in ("python", "numpy"):
        _require(isinstance(machine.get(key), str), f"machine.{key} must be a string")

    fit = doc.get("fit")
    _require(isinstance(fit, list) and fit, "fit must be a non-empty list")
    for row in fit:
        for key in ("windows", "groups"):
            _require(
                isinstance(row.get(key), int) and row[key] > 0,
                f"fit[].{key} must be a positive int",
            )
        _require(
            isinstance(row.get("seconds"), (int, float)) and row["seconds"] >= 0,
            "fit[].seconds must be a non-negative number",
        )

    scan = doc.get("scan")
    _require(isinstance(scan, list) and scan, "scan must be a non-empty list")
    for row in scan:
        for key in ("groups", "windows", "num_bits"):
            _require(
                isinstance(row.get(key), int) and row[key] > 0,
                f"scan[].{key} must be a positive int",
            )
        for key in (
            "scalar_s",
            "memoized_cold_s",
            "memoized_warm_s",
            "batch_cold_s",
            "batch_warm_s",
            "speedup_batch_vs_scalar",
            "speedup_warm_vs_scalar",
        ):
            _require(
                isinstance(row.get(key), (int, float)) and row[key] >= 0,
                f"scan[].{key} must be a non-negative number",
            )
        for key in ("cache_hits", "cache_misses"):
            _require(
                isinstance(row.get(key), int) and row[key] >= 0,
                f"scan[].{key} must be a non-negative int",
            )
        _require(
            row.get("kernel") in ("gemm", "xor", "none"),
            "scan[].kernel must be one of gemm/xor/none",
        )
        _require(
            isinstance(row.get("gemm_min_rows"), int)
            and row["gemm_min_rows"] >= 0,
            "scan[].gemm_min_rows must be a non-negative int",
        )
        calls = row.get("kernel_calls")
        _require(
            isinstance(calls, dict)
            and set(calls) == {"batch_cold", "batch_warm"},
            "scan[].kernel_calls must map batch_cold/batch_warm",
        )
        for pass_name, delta in calls.items():
            _require(
                isinstance(delta, dict)
                and all(
                    isinstance(n, int) and n >= 0 for n in delta.values()
                ),
                f"scan[].kernel_calls.{pass_name} must count kernel calls",
            )
        forced = row.get("forced_kernel_s")
        _require(
            isinstance(forced, dict) and set(forced) == {"gemm", "xor"},
            "scan[].forced_kernel_s must time both forced kernels",
        )
        for name, seconds in forced.items():
            _require(
                isinstance(seconds, (int, float)) and seconds >= 0,
                f"scan[].forced_kernel_s.{name} must be a non-negative number",
            )

    segment = doc.get("segment")
    _require(isinstance(segment, dict), "segment must be an object")
    for key in ("scalar_s", "batch_s", "speedup"):
        _require(
            isinstance(segment.get(key), (int, float)) and segment[key] >= 0,
            f"segment.{key} must be a non-negative number",
        )

    tel = doc.get("telemetry")
    _require(isinstance(tel, dict), "telemetry must be an object")
    for key in ("groups", "windows"):
        _require(
            isinstance(tel.get(key), int) and tel[key] > 0,
            f"telemetry.{key} must be a positive int",
        )
    for key in ("enabled_s", "disabled_s", "overhead_ratio"):
        _require(
            isinstance(tel.get(key), (int, float)) and tel[key] >= 0,
            f"telemetry.{key} must be a non-negative number",
        )
    _require(
        isinstance(tel.get("overhead_pct"), (int, float)),
        "telemetry.overhead_pct must be a number",
    )

    ev = doc.get("eval")
    _require(isinstance(ev, dict), "eval must be an object")
    _require(isinstance(ev.get("dataset"), str), "eval.dataset must be a string")
    _require(
        isinstance(ev.get("pairs"), int) and ev["pairs"] > 0,
        "eval.pairs must be a positive int",
    )
    runs = ev.get("runs")
    _require(isinstance(runs, list) and runs, "eval.runs must be a non-empty list")
    for run in runs:
        _require(
            isinstance(run.get("workers"), int) and run["workers"] >= 1,
            "eval.runs[].workers must be >= 1",
        )
        _require(
            isinstance(run.get("effective_workers"), int)
            and 1 <= run["effective_workers"] <= run["workers"],
            "eval.runs[].effective_workers must be in [1, workers]",
        )
        _require(
            isinstance(run.get("seconds"), (int, float)) and run["seconds"] >= 0,
            "eval.runs[].seconds must be a non-negative number",
        )
        _require(
            isinstance(run.get("fingerprint"), str) and len(run["fingerprint"]) == 64,
            "eval.runs[].fingerprint must be a sha256 hex digest",
        )
    _require(
        ev.get("aggregates_identical") is True,
        "eval.aggregates_identical must be true (worker counts changed results)",
    )

    fleet = doc.get("fleet")
    _require(isinstance(fleet, dict), "fleet must be an object")
    for key in ("hours", "train_hours"):
        _require(
            isinstance(fleet.get(key), (int, float)) and fleet[key] > 0,
            f"fleet.{key} must be a positive number",
        )
    fleet_runs = fleet.get("runs")
    _require(
        isinstance(fleet_runs, list) and fleet_runs,
        "fleet.runs must be a non-empty list",
    )
    for run in fleet_runs:
        for key in ("homes", "shards"):
            _require(
                isinstance(run.get(key), int) and run[key] >= 1,
                f"fleet.runs[].{key} must be >= 1",
            )
        for key in ("events", "alerts"):
            _require(
                isinstance(run.get(key), int) and run[key] >= 0,
                f"fleet.runs[].{key} must be a non-negative int",
            )
        for key in ("seconds", "events_per_s", "alerts_per_s"):
            _require(
                isinstance(run.get(key), (int, float)) and run[key] >= 0,
                f"fleet.runs[].{key} must be a non-negative number",
            )
    _require(
        fleet.get("alerts_identical_across_shards") is True,
        "fleet.alerts_identical_across_shards must be true "
        "(sharding changed per-home alerts)",
    )

    journal = doc.get("journal")
    _require(isinstance(journal, dict), "journal must be an object")
    for key in ("events", "alerts"):
        _require(
            isinstance(journal.get(key), int) and journal[key] >= 0,
            f"journal.{key} must be a non-negative int",
        )
    _require(journal.get("events", 0) > 0, "journal.events must be positive")
    _require(
        isinstance(journal.get("baseline_s"), (int, float))
        and journal["baseline_s"] >= 0,
        "journal.baseline_s must be a non-negative number",
    )
    for section in ("journal_s", "overhead_ratio"):
        block = journal.get(section)
        _require(isinstance(block, dict), f"journal.{section} must be an object")
        for policy in ("never", "interval", "always"):
            _require(
                isinstance(block.get(policy), (int, float)) and block[policy] >= 0,
                f"journal.{section}.{policy} must be a non-negative number",
            )
    _require(
        isinstance(journal.get("overhead_pct_never"), (int, float)),
        "journal.overhead_pct_never must be a number",
    )
    _require(
        journal.get("alerts_identical") is True,
        "journal.alerts_identical must be true (journaling changed alerts)",
    )

    prov = doc.get("provenance")
    _require(isinstance(prov, dict), "provenance must be an object")
    for key in ("events", "alerts", "records"):
        _require(
            isinstance(prov.get(key), int) and prov[key] >= 0,
            f"provenance.{key} must be a non-negative int",
        )
    _require(prov.get("events", 0) > 0, "provenance.events must be positive")
    for key in (
        "disabled_s",
        "enabled_s",
        "events_per_s_disabled",
        "events_per_s_enabled",
        "overhead_ratio",
    ):
        _require(
            isinstance(prov.get(key), (int, float)) and prov[key] >= 0,
            f"provenance.{key} must be a non-negative number",
        )
    _require(
        isinstance(prov.get("overhead_pct"), (int, float)),
        "provenance.overhead_pct must be a number",
    )
    _require(
        prov.get("alerts_identical") is True,
        "provenance.alerts_identical must be true "
        "(evidence capture changed the alert stream)",
    )

    scenarios = doc.get("scenarios")
    _require(isinstance(scenarios, dict), "scenarios must be an object")
    for key in ("cells", "trials"):
        _require(
            isinstance(scenarios.get(key), int) and scenarios[key] >= 1,
            f"scenarios.{key} must be a positive int",
        )
    for key in ("seconds", "cells_per_s"):
        _require(
            isinstance(scenarios.get(key), (int, float)) and scenarios[key] >= 0,
            f"scenarios.{key} must be a non-negative number",
        )
    _require(
        scenarios.get("report_valid") is True,
        "scenarios.report_valid must be true (scenario report failed validation)",
    )
    pairs = scenarios.get("refresh_pairs")
    _require(
        isinstance(pairs, list) and pairs,
        "scenarios.refresh_pairs must be a non-empty list",
    )
    for pair in pairs:
        _require(
            isinstance(pair, dict) and isinstance(pair.get("variant"), str),
            "scenarios.refresh_pairs[].variant must be a string",
        )
        for key in ("plain", "refresh"):
            _require(
                pair.get(key) is None
                or (isinstance(pair[key], (int, float)) and pair[key] >= 0),
                f"scenarios.refresh_pairs[].{key} must be a "
                "non-negative number or null",
            )

    backends = doc.get("backends")
    _require(
        isinstance(backends, list) and backends,
        "backends must be a non-empty list",
    )
    backend_names = [entry.get("backend") for entry in backends]
    _require(
        backend_names == sorted(set(backend_names))
        and all(isinstance(n, str) and n for n in backend_names),
        "backends[].backend must be unique sorted names",
    )
    _require(
        "dice" in backend_names,
        "backends must include the dice reference backend",
    )
    for entry in backends:
        name = entry.get("backend")
        for key in ("fit_seconds", "stream_seconds", "events_per_s"):
            _require(
                isinstance(entry.get(key), (int, float)) and entry[key] >= 0,
                f"backends[{name}].{key} must be a non-negative number",
            )
        for key in ("events", "alerts"):
            _require(
                isinstance(entry.get(key), int) and entry[key] >= 0,
                f"backends[{name}].{key} must be a non-negative int",
            )

    service = doc.get("service")
    _require(isinstance(service, dict), "service must be an object")
    for key in ("events", "alerts"):
        _require(
            isinstance(service.get(key), int) and service[key] >= 0,
            f"service.{key} must be a non-negative int",
        )
    _require(service.get("events", 0) > 0, "service.events must be positive")
    for key in (
        "inprocess_s",
        "service_s",
        "events_per_s_inprocess",
        "events_per_s_service",
        "overhead_ratio",
    ):
        _require(
            isinstance(service.get(key), (int, float)) and service[key] >= 0,
            f"service.{key} must be a non-negative number",
        )
    _require(
        service.get("alerts_identical") is True,
        "service.alerts_identical must be true "
        "(the ingest service changed the alert stream)",
    )
    overload = service.get("overload")
    _require(isinstance(overload, dict), "service.overload must be an object")
    for key in ("events", "queue_capacity", "reconnects", "applied"):
        _require(
            isinstance(overload.get(key), int) and overload[key] >= 1,
            f"service.overload.{key} must be a positive int",
        )
    for key in ("seconds", "events_per_s", "dispatch_delay_s"):
        _require(
            isinstance(overload.get(key), (int, float)) and overload[key] >= 0,
            f"service.overload.{key} must be a non-negative number",
        )
    # The shedding claims are load-shaped by construction (offered rate
    # >> drain rate), so they *are* enforced: the queue must actually
    # overflow, depth must stay bounded, and the stream must complete.
    _require(
        isinstance(overload.get("sheds"), int) and overload["sheds"] >= 1,
        "service.overload.sheds must be >= 1 (the overload arm never shed)",
    )
    _require(
        isinstance(overload.get("max_queue_depth"), int)
        and 1 <= overload["max_queue_depth"] <= overload["queue_capacity"],
        "service.overload.max_queue_depth must stay within queue_capacity",
    )
    _require(
        overload.get("complete") is True,
        "service.overload.complete must be true "
        "(the retrying client never landed the full stream)",
    )

    cap = doc.get("capacity")
    _require(isinstance(cap, dict), "capacity must be an object")
    for key in ("homes", "archetypes", "windows_per_home", "groups",
                "num_bits", "events"):
        _require(
            isinstance(cap.get(key), int) and cap[key] >= 1,
            f"capacity.{key} must be a positive int",
        )
    _require(
        isinstance(cap.get("alerts"), int) and cap["alerts"] >= 0,
        "capacity.alerts must be a non-negative int",
    )
    for key in (
        "shared_s",
        "replicated_s",
        "events_per_s_shared",
        "events_per_s_replicated",
        "speedup_shared_vs_replicated",
        "bytes_per_home_shared",
        "bytes_per_home_replicated",
    ):
        _require(
            isinstance(cap.get(key), (int, float)) and cap[key] >= 0,
            f"capacity.{key} must be a non-negative number",
        )
    # The memory claim is deterministic (estimator bytes, not timings), so
    # it *is* enforced: homes stamped from archetypes must dedup at least
    # 5x per home, the acceptance floor for the capacity work.
    _require(
        isinstance(cap.get("bytes_per_home_reduction"), (int, float))
        and cap["bytes_per_home_reduction"] >= 5.0,
        "capacity.bytes_per_home_reduction must be >= 5 "
        "(shared contexts failed to dedup the fleet)",
    )
    dedup = cap.get("dedup")
    _require(isinstance(dedup, dict), "capacity.dedup must be an object")
    for key in ("contexts", "holders", "intern_hits", "intern_misses"):
        _require(
            isinstance(dedup.get(key), int) and dedup[key] >= 0,
            f"capacity.dedup.{key} must be a non-negative int",
        )
    _require(
        isinstance(dedup.get("dedup_ratio"), (int, float))
        and dedup["dedup_ratio"] >= 1.0,
        "capacity.dedup.dedup_ratio must be >= 1",
    )
    projection = cap.get("projection")
    _require(
        isinstance(projection, list) and projection,
        "capacity.projection must be a non-empty list",
    )
    for row in projection:
        _require(isinstance(row, dict), "capacity.projection[] must be objects")
        for key in ("homes", "shared_bytes", "replicated_bytes"):
            _require(
                isinstance(row.get(key), int) and row[key] >= 1,
                f"capacity.projection[].{key} must be a positive int",
            )
        for key in ("shared_bytes_per_home", "replicated_bytes_per_home"):
            _require(
                isinstance(row.get(key), (int, float)) and row[key] > 0,
                f"capacity.projection[].{key} must be a positive number",
            )
    _require(
        cap.get("alerts_identical") is True,
        "capacity.alerts_identical must be true "
        "(shared contexts changed per-home alerts)",
    )
    return doc
