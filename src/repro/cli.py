"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the everyday workflows:

* ``list`` — the Table 4.1 dataset registry;
* ``generate`` — render a dataset to CSV (plus its device registry);
* ``evaluate`` — run the Ch. V protocol on one dataset and print the
  headline metrics;
* ``experiment`` — regenerate one of the paper's artifacts (accuracy,
  timing, check-timing, computation, degree, ratio) as a table;
* ``stream`` — exercise the hardened gateway runtime on one dataset:
  optional pipe faults on the delivery channel, ingest-guard drop
  accounting, device supervision, checkpoint save/resume, and a
  ``--metrics-out`` telemetry snapshot;
* ``fleet`` — run the sharded multi-home gateway over a generated fleet:
  ``--homes`` deterministic homes hashed onto ``--shards`` workers, with
  fleet-wide checkpoint/restore (``--save-checkpoint``/``--resume``),
  merged telemetry (``--metrics-out``), archetype stamping
  (``--unique-homes``) and shared-context memory accounting
  (``--report-memory``; opt out of the capacity layers with
  ``--no-share-contexts``/``--no-batch-tick``);
* ``serve`` — run the durable fleet as a long-lived network service:
  a binary CRC-framed ingest port with bounded-queue admission control
  plus an HTTP surface (``/metrics`` Prometheus exposition, ``/health``,
  ``/ready``); SIGTERM/SIGINT drain gracefully (flush, optional
  checkpoint, exit 0), and ``--resume`` restarts from checkpoint +
  journal tails;
* ``send`` — stream a deterministically regenerated home's events into a
  running ``serve`` with reconnect-and-resume retries, optionally through
  the network fault injector (``--faults``);
* ``chaos`` — crash-injection harness: run seeded deployments, kill the
  runtime at randomized points (including mid-journal-write), recover
  from checkpoint + journal tail, and verify the alert stream matches an
  uninterrupted run — standalone, fleet, and ``--mode service`` (kill a
  live loopback server under network faults, restart it, let retrying
  clients heal, verify byte-identical per-home alerts and exact
  at-least-once accounting); exit 1 on any mismatch;
* ``metrics`` — render a telemetry snapshot as a table, Prometheus text
  exposition, or JSON; ``--watch`` re-reads it periodically with counter
  rates derived from successive reads;
* ``explain`` — render the causal evidence chain behind one alert (by
  trace-id prefix, ``--seq`` or ``--last``) from a ``--provenance-out``
  file or a journal directory's ``provenance.wal``;
* ``top`` — live terminal dashboard over a re-read metrics snapshot:
  events/s per shard, alert/drop rates, detection-latency percentiles,
  reorder lag and SLO burn;
* ``scenarios`` — the robustness matrix: sweep fault class x dataset x
  arity x attacks x drift x refresh stance through the streaming runtime
  and print per-cell precision/recall/detection-time (``-o`` writes the
  schema-validated deterministic report JSON);
* ``bench`` — time the detection hot paths (fit, scalar vs memoised vs
  batched correlation scan, parallel evaluation, telemetry overhead, fleet
  homes x shards scaling, write-ahead journal overhead, the scenario
  matrix, estate-scale capacity A/B) and write ``BENCH_perf.json``.

Primary results go to **stdout**; diagnostics (resume/checkpoint notices,
errors, state changes) go through the structured logger on stderr —
``--log-level``/``--log-format`` control them, and ``--log-format json``
makes every record one machine-parsable JSON object.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import telemetry

_log = telemetry.get_logger("repro.cli")


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("worker count must be at least 1")
    return value


def _build_parser() -> argparse.ArgumentParser:
    from .faults import models as fault_models

    parser = argparse.ArgumentParser(
        prog="repro",
        description="DICE reproduction: faulty-IoT-device detection in smart homes",
    )
    parser.add_argument(
        "--log-level", choices=sorted(telemetry.LEVELS, key=telemetry.LEVELS.get),
        default="info", help="threshold for diagnostic records on stderr",
    )
    parser.add_argument(
        "--log-format", choices=[telemetry.HUMAN_FORMAT, telemetry.JSON_FORMAT],
        default=telemetry.HUMAN_FORMAT,
        help="human-readable lines or one JSON object per record",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the ten Table 4.1 datasets")

    generate = sub.add_parser("generate", help="render a dataset to CSV")
    generate.add_argument("dataset")
    generate.add_argument("--hours", type=float, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True, help="events CSV path")

    evaluate = sub.add_parser("evaluate", help="run the Ch. V protocol")
    evaluate.add_argument("dataset")
    evaluate.add_argument("--scale", type=float, default=0.5, help="duration scale")
    evaluate.add_argument("--pairs", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--actuators", action="store_true", help="inject actuator faults only"
    )
    evaluate.add_argument(
        "--workers", type=_worker_count, default=1,
        help="worker processes for the segment-pair fan-out (results are "
        "identical for any count)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "name",
        choices=["accuracy", "timing", "check-timing", "computation", "degree", "ratio"],
    )
    experiment.add_argument("--datasets", nargs="*", default=None)
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--pairs", type=int, default=30)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--workers", type=_worker_count, default=1)

    bench = sub.add_parser(
        "bench", help="time the detection hot paths; write BENCH_perf.json"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small workloads for CI smoke (~seconds instead of minutes)",
    )
    bench.add_argument(
        "-o", "--output", default="BENCH_perf.json", help="output JSON path"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--dataset", default="houseA", help="end-to-end eval dataset")
    bench.add_argument(
        "--groups", type=int, default=None, help="scan section: group count"
    )
    bench.add_argument(
        "--windows", type=int, default=None, help="scan section: window count"
    )
    bench.add_argument(
        "--workers", type=_worker_count, nargs="*", default=None,
        help="worker counts for the end-to-end eval section",
    )
    bench.add_argument(
        "--capacity-homes", type=int, default=None, metavar="H",
        help="capacity section: fleet size for the shared-vs-replicated A/B "
        "(default 200 quick / 1000 full)",
    )

    stream = sub.add_parser(
        "stream", help="run the hardened gateway runtime over one dataset"
    )
    stream.add_argument("dataset")
    stream.add_argument("--hours", type=float, default=96.0, help="total recording")
    stream.add_argument(
        "--train-hours", type=float, default=72.0, help="precomputation prefix"
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--lateness", type=float, default=120.0,
        help="reorder-buffer lateness budget in seconds",
    )
    stream.add_argument(
        "--silence", type=float, default=900.0,
        help="supervisor: silence before a device degrades (seconds)",
    )
    stream.add_argument(
        "--quarantine", type=float, default=1800.0,
        help="supervisor: silence before a device is quarantined (seconds)",
    )
    stream.add_argument(
        "--pipe-faults", default=None,
        help="comma-separated channel perturbations to inject "
        "(drop,delay,duplicate,reorder,corrupt_value)",
    )
    stream.add_argument(
        "--pipe-rate", type=float, default=0.05, help="pipe-fault event fraction"
    )
    stream.add_argument(
        "--save-checkpoint", default=None, metavar="PATH",
        help="write the end-of-stream runtime snapshot to PATH",
    )
    stream.add_argument(
        "--resume", default=None, metavar="PATH",
        help="restore the runtime from a snapshot instead of starting fresh "
        "(with --journal-dir, also replay the journal tail past the snapshot)",
    )
    stream.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="write-ahead journal directory: every event is journaled before "
        "processing, so a crashed run resumes exactly via --resume",
    )
    stream.add_argument(
        "--fsync", choices=["never", "interval", "always"], default="never",
        help="journal fsync policy (with --journal-dir)",
    )
    stream.add_argument(
        "--alerts-out", default=None, metavar="PATH",
        help="deliver alerts at-least-once to PATH as JSON lines via the "
        "outbox (requires --journal-dir)",
    )
    stream.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the end-of-run telemetry snapshot to PATH as JSON",
    )
    stream.add_argument(
        "--input-csv", default=None, metavar="PATH",
        help="replay a recorded trace CSV (with its *.devices.csv sidecar) "
        "instead of simulating; DATASET then only names the home",
    )
    stream.add_argument(
        "--provenance-out", default=None, metavar="PATH",
        help="write each alert's evidence record as one JSON line "
        "(see 'repro explain')",
    )
    stream.add_argument(
        "--backend", default="dice", metavar="NAME",
        help="detector backend to host (see 'repro scenarios --backend'; "
        "default: dice)",
    )

    fleet = sub.add_parser(
        "fleet", help="run the sharded multi-home gateway over a generated fleet"
    )
    fleet.add_argument(
        "--homes", type=int, default=8, help="number of generated homes"
    )
    fleet.add_argument(
        "--unique-homes", type=int, default=None, metavar="K",
        help="cap distinct simulated lives at K archetypes; homes beyond K "
        "reuse an archetype's trace and fit to identical trained state "
        "(what the shared-context store dedups); default: all unique",
    )
    fleet.add_argument(
        "--no-share-contexts", dest="share_contexts", action="store_false",
        help="disable content-addressed shared trained contexts "
        "(every home keeps a private copy)",
    )
    fleet.add_argument(
        "--no-batch-tick", dest="batch_tick", action="store_false",
        help="disable the cross-home batched tick (per-event ingest)",
    )
    fleet.add_argument(
        "--report-memory", action="store_true",
        help="print the fleet memory report: trained-state bytes/home "
        "shared vs replicated, dedup ratio, RSS",
    )
    fleet.add_argument(
        "--shards", type=int, default=None,
        help="worker shard count (default 4; on --resume the manifest's count)",
    )
    fleet.add_argument(
        "--hours", type=float, default=48.0, help="per-home recording length"
    )
    fleet.add_argument(
        "--train-hours", type=float, default=36.0, help="precomputation prefix"
    )
    fleet.add_argument("--seed", type=int, default=0, help="fleet seed")
    fleet.add_argument(
        "--tick", type=float, default=300.0,
        help="dispatch tick width in seconds",
    )
    fleet.add_argument(
        "--lateness", type=float, default=120.0,
        help="per-home reorder-buffer lateness budget in seconds",
    )
    fleet.add_argument(
        "--silence", type=float, default=900.0,
        help="supervisor: silence before a device degrades (seconds)",
    )
    fleet.add_argument(
        "--quarantine", type=float, default=1800.0,
        help="supervisor: silence before a device is quarantined (seconds)",
    )
    fleet.add_argument(
        "--save-checkpoint", default=None, metavar="DIR",
        help="write the fleet checkpoint (manifest + per-home snapshots) to DIR",
    )
    fleet.add_argument(
        "--resume", default=None, metavar="DIR",
        help="restore the fleet from a checkpoint directory instead of fresh "
        "(with --journal-dir, also replay each home's journal tail)",
    )
    fleet.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="per-home write-ahead journal root: routed events are journaled "
        "before dispatch, so a crashed fleet resumes exactly via --resume",
    )
    fleet.add_argument(
        "--fsync", choices=["never", "interval", "always"], default="never",
        help="journal fsync policy (with --journal-dir)",
    )
    fleet.add_argument(
        "--alerts-out", default=None, metavar="PATH",
        help="deliver alerts at-least-once to PATH as JSON lines via the "
        "outbox (requires --journal-dir)",
    )
    fleet.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the merged fleet telemetry snapshot to PATH as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="run the durable fleet as a long-lived network service "
        "(binary ingest port + /metrics /health /ready; SIGTERM drains)",
    )
    serve.add_argument(
        "--homes", type=int, default=4, help="number of generated homes"
    )
    serve.add_argument(
        "--unique-homes", type=int, default=None, metavar="K",
        help="cap distinct simulated lives at K archetypes (see 'repro fleet')",
    )
    serve.add_argument(
        "--hours", type=float, default=48.0, help="per-home recording length"
    )
    serve.add_argument(
        "--train-hours", type=float, default=36.0, help="precomputation prefix"
    )
    serve.add_argument("--seed", type=int, default=0, help="fleet seed")
    serve.add_argument(
        "--shards", type=int, default=None,
        help="worker shard count (default 4; on --resume the manifest's count)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="ingest port (default 0 = ephemeral; see --ports-out)",
    )
    serve.add_argument(
        "--http-port", type=int, default=0,
        help="HTTP port for /metrics /health /ready (default 0 = ephemeral)",
    )
    serve.add_argument(
        "--ports-out", default=None, metavar="PATH",
        help="write the bound ports as JSON to PATH once listening "
        "(lets scripts use ephemeral ports)",
    )
    serve.add_argument(
        "--journal-dir", required=True, metavar="DIR",
        help="per-home write-ahead journal root (the service's durability)",
    )
    serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write a fleet checkpoint to DIR during graceful drain",
    )
    serve.add_argument(
        "--resume", default=None, metavar="DIR",
        help="restore from a checkpoint directory (plus journal tails) "
        "instead of starting fresh",
    )
    serve.add_argument(
        "--fsync", choices=["never", "interval", "always"], default="never"
    )
    serve.add_argument(
        "--alerts-out", default=None, metavar="PATH",
        help="deliver alerts at-least-once to PATH as JSON lines via the outbox",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=4096,
        help="global admitted-event bound; beyond it the server sheds",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=10.0,
        help="per-connection idle read bound in seconds",
    )
    serve.add_argument(
        "--lateness", type=float, default=120.0,
        help="per-home reorder-buffer lateness budget in seconds",
    )
    serve.add_argument(
        "--silence", type=float, default=900.0,
        help="supervisor: silence before a device degrades (seconds)",
    )
    serve.add_argument(
        "--quarantine", type=float, default=1800.0,
        help="supervisor: silence before a device is quarantined (seconds)",
    )

    send = sub.add_parser(
        "send",
        help="stream generated home events into a running 'repro serve' "
        "with reconnect-and-resume retries",
    )
    send.add_argument(
        "--homes", type=int, default=4,
        help="fleet size the server was started with (events are "
        "regenerated deterministically from the same parameters)",
    )
    send.add_argument("--unique-homes", type=int, default=None, metavar="K")
    send.add_argument("--hours", type=float, default=48.0)
    send.add_argument("--train-hours", type=float, default=36.0)
    send.add_argument("--seed", type=int, default=0, help="fleet seed")
    send.add_argument("--host", default="127.0.0.1")
    send.add_argument(
        "--port", type=int, default=None, help="server ingest port"
    )
    send.add_argument(
        "--ports-file", default=None, metavar="PATH",
        help="read the port from a 'repro serve --ports-out' JSON file",
    )
    send.add_argument(
        "--home", default=None, metavar="ID",
        help="send only this home's stream (default: every home in turn)",
    )
    send.add_argument(
        "--no-finish", action="store_true",
        help="barrier instead of closing the stream (a later send resumes)",
    )
    send.add_argument(
        "--max-attempts", type=int, default=10,
        help="consecutive no-progress attempts before giving up",
    )
    send.add_argument(
        "--faults", action="store_true",
        help="inject network faults into the send path (torn writes, "
        "disconnects, garbage, slowloris, duplicate sends)",
    )
    send.add_argument(
        "--fault-seed", type=int, default=0, help="fault injector seed"
    )

    chaos = sub.add_parser(
        "chaos",
        help="crash-injection harness: kill seeded runs at random points, "
        "recover, and verify alert-stream parity",
    )
    chaos.add_argument(
        "--mode",
        choices=["standalone", "fleet", "service", "both", "all"],
        default="both",
        help="'both' = standalone+fleet (the in-process harnesses); "
        "'service' = network kill/fault trials against a live loopback "
        "server; 'all' = everything",
    )
    chaos.add_argument(
        "--deployments", type=int, default=5, help="standalone chaos homes"
    )
    chaos.add_argument(
        "--kills", type=int, default=5, help="kill points per standalone home"
    )
    chaos.add_argument("--fleets", type=int, default=2, help="chaos fleets")
    chaos.add_argument(
        "--fleet-kills", type=int, default=4, help="kill points per fleet"
    )
    chaos.add_argument(
        "--homes", type=int, default=3, help="homes per chaos fleet"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fault-class",
        choices=[t.value for t in fault_models.ALL_FAULT_TYPES],
        default=fault_models.FaultType.FAIL_STOP.value,
        help="device fault injected into every chaos victim "
        "(default: fail_stop, the original harness behaviour)",
    )
    chaos.add_argument(
        "--fsync", choices=["never", "interval", "always"], default="never"
    )
    chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep trial artifacts under DIR (default: a temp dir)",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="scenario-matrix robustness sweep: fault classes, attacks and "
        "concept drift through the streaming runtime",
    )
    scenarios.add_argument("--seed", type=int, default=7)
    scenarios.add_argument(
        "--trials", type=int, default=3, help="trials per cell"
    )
    scenarios.add_argument(
        "--cells", default=None, metavar="FILTERS",
        help="comma-separated substrings matched against cell ids "
        "(e.g. 'drift,attack:temperature'); default: the full matrix",
    )
    scenarios.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="write the validated report JSON to PATH",
    )
    scenarios.add_argument(
        "--list", action="store_true", dest="list_cells",
        help="print the cell ids of the (filtered) matrix and exit",
    )
    scenarios.add_argument(
        "--backend", action="append", default=None, dest="backends",
        metavar="NAME",
        help="detector backend to sweep; repeatable for a side-by-side "
        "baselines table (default: dice)",
    )

    metrics = sub.add_parser(
        "metrics", help="render a telemetry snapshot (see stream --metrics-out)"
    )
    metrics.add_argument("snapshot", help="metrics snapshot JSON path")
    metrics.add_argument(
        "--format", choices=["table", "prom", "json"], default="table",
        help="pretty table (default), Prometheus text exposition, or JSON",
    )
    metrics.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-read and re-render the snapshot every SECONDS, with "
        "counter rates derived from successive reads",
    )
    metrics.add_argument(
        "--iterations", type=int, default=None,
        help="with --watch: stop after N refreshes (default: until ^C)",
    )

    explain = sub.add_parser(
        "explain",
        help="render the causal evidence chain behind one alert "
        "(see stream --provenance-out / --journal-dir)",
    )
    explain.add_argument(
        "selector", nargs="?", default=None,
        help="alert trace-id prefix (as stamped on delivered alerts)",
    )
    explain.add_argument(
        "--last", action="store_true", help="explain the newest record"
    )
    explain.add_argument(
        "--seq", type=int, default=None,
        help="select by per-home alert sequence number",
    )
    explain.add_argument(
        "--provenance", default=None, metavar="PATH",
        help="provenance records file: 'stream --provenance-out' JSON lines "
        "or a journal directory's provenance.wal (auto-detected)",
    )
    explain.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="read DIR/provenance.wal (the durable archive)",
    )
    explain.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw evidence record instead of the narrative",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a metrics snapshot file "
        "(events/s per shard, alert/drop rates, latency percentiles, "
        "SLO burn)",
    )
    top.add_argument(
        "--metrics", required=True, metavar="PATH",
        help="metrics snapshot JSON re-read every refresh "
        "(see stream/fleet --metrics-out)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N refreshes (default: until ^C)",
    )
    top.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    return parser


def _cmd_list() -> int:
    from .datasets import DATASETS
    from .eval.report import format_table

    rows = [
        [
            info.name,
            int(info.hours),
            info.binary_sensors,
            info.numeric_sensors,
            info.actuators,
            info.activities,
            info.residents,
            info.family,
        ]
        for info in DATASETS.values()
    ]
    print(
        format_table(
            ["dataset", "hours", "binary", "numeric", "actuators", "activities",
             "residents", "family"],
            rows,
        )
    )
    return 0


def _cmd_generate(args) -> int:
    from .datasets import load_dataset, write_trace

    data = load_dataset(args.dataset, seed=args.seed, hours=args.hours)
    write_trace(data.trace, args.output)
    print(
        f"wrote {len(data.trace)} events "
        f"({data.trace.duration_hours:.1f} h of {data.name}) to {args.output}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    from .datasets import load_dataset
    from .eval import EvaluationRunner

    hours = None if args.scale == 1.0 else data_hours(args.dataset, args.scale)
    data = load_dataset(args.dataset, seed=args.seed, hours=hours)
    runner = EvaluationRunner(
        precompute_hours=300.0 * args.scale, pairs=args.pairs, seed=args.seed,
        workers=args.workers,
    )
    devices = data.trace.registry.actuators() if args.actuators else None
    result = runner.evaluate(args.dataset, data.trace, devices=devices)
    detection = result.detection_counts()
    identification = result.identification_counts()
    print(f"dataset:             {args.dataset} (scale {args.scale}, {args.pairs} pairs)")
    print(f"correlation degree:  {result.correlation_degree:.2f}")
    print(f"groups:              {result.num_groups}")
    print(
        f"detection:           precision {100 * detection.precision:.1f}%  "
        f"recall {100 * detection.recall:.1f}%"
    )
    print(
        f"identification:      precision {100 * identification.precision:.1f}%  "
        f"recall {100 * identification.recall:.1f}%"
    )
    print(
        f"detection time:      {result.detection_time().mean:.1f} min mean "
        f"({result.detection_time().median:.1f} median)"
    )
    print(
        f"identification time: {result.identification_time().mean:.1f} min mean"
    )
    return 0


def data_hours(name: str, scale: float) -> float:
    from .datasets import dataset_info

    return dataset_info(name).hours * scale


def _cmd_experiment(args) -> int:
    from .eval import report
    from .eval.experiments import (
        ProtocolSettings,
        accuracy,
        computation,
        correlation_degree,
        detection_ratio,
        timing,
    )

    settings = ProtocolSettings(
        hours_scale=args.scale, pairs=args.pairs, seed=args.seed,
        workers=args.workers,
    )
    datasets = args.datasets or None
    if args.name == "accuracy":
        print(report.format_accuracy(accuracy.run(datasets, settings)))
    elif args.name == "timing":
        print(report.format_timing(timing.run(datasets, settings)))
    elif args.name == "check-timing":
        print(report.format_check_timing(timing.run_by_check(datasets, settings)))
    elif args.name == "computation":
        print(report.format_computation(computation.run(datasets, settings)))
    elif args.name == "degree":
        print(report.format_degree(correlation_degree.run(datasets, settings)))
    elif args.name == "ratio":
        print(report.format_detection_ratio(detection_ratio.run(datasets, settings)))
    return 0


def _cmd_stream(args) -> int:
    import numpy as np

    from .datasets import load_dataset
    from .faults import PipeFaultInjector, PipeFaultSpec, PipeFaultType
    from .streaming import (
        HardenedOnlineDice,
        SupervisorPolicy,
        restore_from_file,
        save_checkpoint,
    )

    if args.input_csv:
        from .datasets.io import read_trace

        try:
            trace = read_trace(args.input_csv)
        except (OSError, ValueError) as exc:
            _log.error("bad_input_csv", path=args.input_csv, error=str(exc))
            return 2
    else:
        data = load_dataset(args.dataset, seed=args.seed, hours=args.hours)
        trace = data.trace
    split = trace.start + args.train_hours * 3600.0
    if not trace.start < split < trace.end:
        _log.error("bad_split", reason="train-hours must leave a non-empty live segment")
        return 2
    from .core import available_backends, create_backend

    if args.backend not in available_backends():
        valid = ", ".join(available_backends())
        _log.error("unknown_backend", backend=args.backend, valid=valid)
        return 2
    detector = create_backend(args.backend, trace.registry).fit(
        trace.slice(trace.start, split)
    )
    live = trace.slice(split, trace.end)
    policy = SupervisorPolicy(
        silence_seconds=args.silence, quarantine_seconds=args.quarantine
    )
    if args.alerts_out and not args.journal_dir:
        _log.error("bad_stream", reason="--alerts-out requires --journal-dir")
        return 2

    durable = None
    if args.journal_dir:
        import os

        from .durability import AlertOutbox, DurableOnlineDice, FileSink, JournalError
        from .streaming import CheckpointError

        outbox = None
        if args.alerts_out:
            outbox = AlertOutbox(
                os.path.join(args.journal_dir, "outbox"), FileSink(args.alerts_out)
            )
        try:
            if args.resume:
                durable, replayed = DurableOnlineDice.recover(
                    detector, args.journal_dir, checkpoint_path=args.resume,
                    home_id=args.dataset, start=live.start, fsync=args.fsync,
                    outbox=outbox, lateness_seconds=args.lateness, policy=policy,
                )
                _log.info(
                    "resumed from checkpoint + journal tail",
                    path=args.resume, journal=args.journal_dir,
                    replayed_alerts=len(replayed),
                    watermark=durable.runtime.reorder.watermark,
                )
            else:
                durable = DurableOnlineDice(
                    detector, args.journal_dir, home_id=args.dataset,
                    start=live.start, fsync=args.fsync, outbox=outbox,
                    lateness_seconds=args.lateness, policy=policy,
                )
        except (OSError, ValueError, KeyError, JournalError, CheckpointError) as exc:
            _log.error("resume_failed", path=args.resume, error=str(exc))
            return 2
        runtime = durable.runtime
    elif args.resume:
        from .streaming import CheckpointError

        try:
            runtime = restore_from_file(detector, args.resume)
        except (OSError, ValueError, KeyError, CheckpointError) as exc:
            _log.error("resume_failed", path=args.resume, error=str(exc))
            return 2
        _log.info(
            "resumed from checkpoint",
            path=args.resume,
            watermark=runtime.reorder.watermark,
        )
    else:
        runtime = HardenedOnlineDice(
            detector,
            start=live.start,
            lateness_seconds=args.lateness,
            policy=policy,
        )
    # Trace ids hash the home id; the dataset name is the home on every
    # path (the durable layer may carry it forward from its checkpoint),
    # so ids agree between fresh, resumed and durable runs.
    if runtime.provenance.enabled:
        runtime.provenance.home_id = (
            durable.home_id if durable is not None else args.dataset
        )

    events = [e for e in live if e.timestamp > runtime.reorder.watermark]
    if args.pipe_faults:
        specs = []
        for name in args.pipe_faults.split(","):
            try:
                fault_type = PipeFaultType(name.strip())
            except ValueError:
                valid = ", ".join(t.value for t in PipeFaultType)
                _log.error(
                    "unknown_pipe_fault", fault=name.strip(), valid=valid
                )
                return 2
            specs.append(
                PipeFaultSpec(
                    fault_type,
                    rate=args.pipe_rate,
                    max_delay_seconds=args.lateness,
                )
            )
        injector = PipeFaultInjector(np.random.default_rng(args.seed), specs)
        events = injector.apply(events)

    driver = durable if durable is not None else runtime
    # SIGTERM/SIGINT request a drain: stop at a chunk boundary, leave the
    # stream open (checkpoint/journal carry the resume state) and exit 0.
    from .service import GracefulShutdown

    alerts = []
    sent = 0
    with GracefulShutdown() as shutdown:
        chunk_size = 512
        for offset in range(0, len(events), chunk_size):
            if shutdown.requested:
                break
            chunk = events[offset : offset + chunk_size]
            alerts += driver.ingest_many(chunk)
            sent += len(chunk)
    drained = shutdown.requested
    if drained:
        _log.info(
            "drain_requested", signal=shutdown.signal_name, ingested=sent,
            remaining=len(events) - sent,
        )
    if args.save_checkpoint:
        if durable is not None:
            durable.save_checkpoint(args.save_checkpoint)
        else:
            save_checkpoint(runtime, args.save_checkpoint)
        _log.info("checkpoint saved, stream left open", path=args.save_checkpoint)
    elif not drained:
        alerts += driver.finish_stream(live.end)

    print(
        f"streamed {sent} events "
        f"({live.duration_hours:.1f} h live segment of {args.dataset})"
        + (" [drained early]" if drained else "")
    )
    kinds: dict = {}
    for alert in alerts:
        kinds[alert.kind] = kinds.get(alert.kind, 0) + 1
    for kind in ("detection", "identification", "device_silence",
                 "device_errors", "device_recovered"):
        if kind in kinds:
            print(f"alerts[{kind}]: {kinds[kind]}")
    drops = runtime.drops.summary()
    print(f"dropped events: {runtime.drops.total}"
          + (f" ({', '.join(f'{k}={v}' for k, v in drops.items())})" if drops else ""))
    quarantined = sorted(runtime.supervisor.quarantined)
    if quarantined:
        print(f"quarantined devices: {', '.join(quarantined)}")
    if durable is not None:
        if durable.outbox is not None:
            delivery = durable.deliver_pending()
            print(
                f"alerts delivered: {delivery['delivered']} "
                f"(dead-lettered {delivery['dead']}) to {args.alerts_out}"
            )
        durable.close()
    if args.provenance_out:
        from .telemetry.provenance import canonical_record_bytes

        if durable is not None:
            records = durable.provenance_log.records()
        else:
            records = runtime.provenance.records()
        records = sorted(records, key=lambda r: r["alert"]["seq"])
        with open(args.provenance_out, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(canonical_record_bytes(record).decode("utf-8"))
                handle.write("\n")
        print(f"wrote {len(records)} provenance records to {args.provenance_out}")
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(runtime.metrics.snapshot(), handle, indent=2, sort_keys=True)
        print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0


def _cmd_fleet(args) -> int:
    from .fleet import (
        FleetGateway,
        build_fleet_homes,
        fit_fleet_detectors,
        replay_fleet,
        restore_fleet,
    )
    from .streaming import CheckpointError, SupervisorPolicy

    if args.homes < 1:
        _log.error("bad_fleet", reason="--homes must be at least 1")
        return 2
    if args.shards is not None and args.shards < 1:
        _log.error("bad_fleet", reason="--shards must be at least 1")
        return 2
    try:
        homes = build_fleet_homes(
            args.homes, seed=args.seed, hours=args.hours,
            train_hours=args.train_hours, unique_homes=args.unique_homes,
        )
    except ValueError as exc:
        _log.error("bad_fleet", reason=str(exc))
        return 2
    if args.alerts_out and not args.journal_dir:
        _log.error("bad_fleet", reason="--alerts-out requires --journal-dir")
        return 2
    detectors = fit_fleet_detectors(homes)
    policy = SupervisorPolicy(
        silence_seconds=args.silence, quarantine_seconds=args.quarantine
    )

    def fresh_gateway() -> FleetGateway:
        fresh = FleetGateway(
            4 if args.shards is None else args.shards,
            share_contexts=args.share_contexts,
            batch_tick=args.batch_tick,
        )
        for home in homes:
            fresh.add_home(
                home.home_id, detectors[home.home_id], start=home.split,
                lateness_seconds=args.lateness, policy=policy,
            )
        return fresh

    durable = None
    if args.journal_dir:
        import os

        from .durability import AlertOutbox, DurableFleetGateway, FileSink

        outbox = None
        if args.alerts_out:
            outbox = AlertOutbox(
                os.path.join(args.journal_dir, "outbox"), FileSink(args.alerts_out)
            )
        try:
            durable, replayed = DurableFleetGateway.recover(
                detectors, args.journal_dir,
                checkpoint_dir=args.resume,
                gateway=None if args.resume else fresh_gateway(),
                num_shards=args.shards, fsync=args.fsync, outbox=outbox,
                lateness_seconds=args.lateness, policy=policy,
            )
        except (OSError, ValueError, KeyError, CheckpointError) as exc:
            _log.error("resume_failed", path=args.resume, error=str(exc))
            return 2
        if args.resume:
            _log.info(
                "resumed fleet checkpoint + journal tails", path=args.resume,
                journal=args.journal_dir, replayed_alerts=len(replayed),
                homes=len(durable), shards=durable.num_shards,
            )
        gateway = durable
    elif args.resume:
        try:
            gateway = restore_fleet(
                detectors, args.resume, num_shards=args.shards,
                share_contexts=args.share_contexts,
                batch_tick=args.batch_tick,
                lateness_seconds=args.lateness, policy=policy,
            )
        except (OSError, ValueError, KeyError, CheckpointError) as exc:
            _log.error("resume_failed", path=args.resume, error=str(exc))
            return 2
        _log.info(
            "resumed fleet checkpoint", path=args.resume,
            homes=len(gateway), shards=gateway.num_shards,
        )
    else:
        gateway = fresh_gateway()

    # SIGTERM/SIGINT request a drain: replay stops at a tick boundary with
    # streams left open; a checkpoint (when requested) makes the resume
    # explicit, and with --journal-dir the journals alone are enough.
    from .service import GracefulShutdown

    with GracefulShutdown() as shutdown:
        alerts = replay_fleet(
            gateway, homes, tick_seconds=args.tick,
            finish=not args.save_checkpoint,
            stop=lambda: shutdown.requested,
        )
    if shutdown.requested:
        _log.info("drain_requested", signal=shutdown.signal_name)
    if args.save_checkpoint:
        gateway.save_checkpoint(args.save_checkpoint)
        _log.info(
            "fleet checkpoint saved, streams left open", path=args.save_checkpoint
        )

    entry = gateway.metrics_snapshot()["metrics"].get("dice_fleet_events_total")
    events = int(sum(row["value"] for row in entry["series"])) if entry else 0
    print(
        f"fleet: {len(gateway)} homes on {gateway.num_shards} shards "
        f"({args.hours:.0f} h each, {args.train_hours:.0f} h training)"
    )
    print(f"dispatched {events} events in {args.tick:.0f} s ticks")
    kinds: dict = {}
    for fleet_alert in alerts:
        kind = fleet_alert.alert.kind
        kinds[kind] = kinds.get(kind, 0) + 1
    for kind in ("detection", "identification", "device_silence",
                 "device_errors", "device_recovered"):
        if kind in kinds:
            print(f"alerts[{kind}]: {kinds[kind]}")
    per_shard = gateway.health()["homes_per_shard"]
    print(
        "homes per shard: "
        + ", ".join(
            f"{index}:{count}"
            for index, count in sorted(
                per_shard.items(), key=lambda item: int(item[0])
            )
        )
    )
    if gateway.unrouted:
        print(f"unrouted events: {gateway.unrouted}")
    if args.report_memory:
        inner = durable.gateway if durable is not None else gateway
        report = inner.memory_report()
        print(
            f"trained contexts: {report['distinct_contexts']} distinct for "
            f"{report['homes']} homes "
            f"(dedup {report['store']['dedup_ratio']:.1f}x, "
            f"intern hits {report['store']['intern_hits']})"
        )
        print(
            f"trained bytes/home: {report['trained_bytes_per_home']:.0f} shared "
            f"vs {report['replicated_bytes_per_home']:.0f} replicated "
            f"({report['savings_ratio']:.1f}x saved)"
        )
        if report["rss_bytes"] is not None:
            print(f"process RSS: {report['rss_bytes'] / 2**20:.1f} MiB")
    if durable is not None:
        if durable.outbox is not None:
            delivery = durable.deliver_pending()
            print(
                f"alerts delivered: {delivery['delivered']} "
                f"(dead-lettered {delivery['dead']}) to {args.alerts_out}"
            )
        durable.close()
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(
                gateway.metrics_snapshot(), handle, indent=2, sort_keys=True
            )
        print(f"wrote merged metrics snapshot to {args.metrics_out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import json
    import os
    import signal

    from .durability import AlertOutbox, DurableFleetGateway, FileSink
    from .fleet import FleetGateway, build_fleet_homes, fit_fleet_detectors
    from .service import IngestServer, ServiceConfig
    from .streaming import CheckpointError, SupervisorPolicy

    try:
        homes = build_fleet_homes(
            args.homes, seed=args.seed, hours=args.hours,
            train_hours=args.train_hours, unique_homes=args.unique_homes,
        )
    except ValueError as exc:
        _log.error("bad_fleet", reason=str(exc))
        return 2
    detectors = fit_fleet_detectors(homes)
    policy = SupervisorPolicy(
        silence_seconds=args.silence, quarantine_seconds=args.quarantine
    )

    def fresh_gateway() -> FleetGateway:
        fresh = FleetGateway(4 if args.shards is None else args.shards)
        for home in homes:
            fresh.add_home(
                home.home_id, detectors[home.home_id], start=home.split,
                lateness_seconds=args.lateness, policy=policy,
            )
        return fresh

    outbox = None
    if args.alerts_out:
        outbox = AlertOutbox(
            os.path.join(args.journal_dir, "outbox"), FileSink(args.alerts_out)
        )
    try:
        durable, replayed = DurableFleetGateway.recover(
            detectors, args.journal_dir,
            checkpoint_dir=args.resume,
            gateway=None if args.resume else fresh_gateway(),
            num_shards=args.shards, fsync=args.fsync, outbox=outbox,
            lateness_seconds=args.lateness, policy=policy,
        )
    except (OSError, ValueError, KeyError, CheckpointError) as exc:
        _log.error("resume_failed", path=args.resume, error=str(exc))
        return 2
    if args.resume:
        _log.info(
            "resumed fleet checkpoint + journal tails", path=args.resume,
            journal=args.journal_dir, replayed_alerts=len(replayed),
            homes=len(durable), shards=durable.num_shards,
        )
    config = ServiceConfig(
        host=args.host, port=args.port, http_port=args.http_port,
        queue_capacity=args.queue_capacity, read_timeout_s=args.read_timeout,
        frame_timeout_s=args.read_timeout,
    )
    server = IngestServer(durable, config, checkpoint_dir=args.checkpoint_dir)

    async def serve() -> None:
        await server.start()
        print(
            f"serving {len(durable)} homes on {durable.num_shards} shards: "
            f"ingest {args.host}:{server.port}  "
            f"http {args.host}:{server.http_port}",
            flush=True,
        )
        if args.ports_out:
            with open(args.ports_out, "w", encoding="utf-8") as handle:
                json.dump(
                    {"port": server.port, "http_port": server.http_port}, handle
                )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        _log.info("shutdown_signal_received")
        await server.drain()

    asyncio.run(serve())
    print(
        "drained: streams left open "
        + (
            f"(checkpoint at {args.checkpoint_dir})"
            if args.checkpoint_dir
            else "(journal only)"
        ),
        flush=True,
    )
    return 0


def _cmd_send(args) -> int:
    import json

    from .fleet import build_fleet_homes
    from .service import ServiceClient, ServiceError

    port = args.port
    if port is None and args.ports_file:
        try:
            with open(args.ports_file, "r", encoding="utf-8") as handle:
                port = int(json.load(handle)["port"])
        except (OSError, ValueError, KeyError) as exc:
            _log.error("bad_ports_file", path=args.ports_file, error=str(exc))
            return 2
    if port is None:
        _log.error("bad_send", reason="one of --port or --ports-file is required")
        return 2
    try:
        homes = build_fleet_homes(
            args.homes, seed=args.seed, hours=args.hours,
            train_hours=args.train_hours, unique_homes=args.unique_homes,
        )
    except ValueError as exc:
        _log.error("bad_fleet", reason=str(exc))
        return 2
    if args.home is not None:
        homes = [home for home in homes if home.home_id == args.home]
        if not homes:
            _log.error("unknown_home", home=args.home)
            return 2
    failed = 0
    for index, home in enumerate(homes):
        injector = None
        if args.faults:
            import numpy as np

            from .faults import NetFaultInjector

            injector = NetFaultInjector(
                np.random.default_rng(args.fault_seed * 7919 + index)
            )
        client = ServiceClient(
            args.host, port,
            max_attempts=args.max_attempts,
            jitter_seed=args.fault_seed + index,
            fault_injector=injector,
        )
        events = list(home.live)
        try:
            report = client.send_stream(
                home.home_id, events,
                end=home.trace.end, finish=not args.no_finish,
            )
        except (ServiceError, OSError) as exc:
            failed += 1
            print(f"{home.home_id}: FAILED ({exc})")
            continue
        line = (
            f"{home.home_id}: {report.applied}/{report.total_events} applied"
            f"  connects {report.connects}  retries {report.retries}"
            f"  resent {report.resent}"
        )
        if report.finished:
            line += "  finished"
        if injector is not None:
            counts = injector.counts
            line += (
                f"  faults[torn={counts.torn_writes} disc={counts.disconnects}"
                f" garbage={counts.garbage} slow={counts.slowloris}"
                f" dup={counts.duplicates}]"
            )
        print(line)
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    import os
    import tempfile

    from .faults.crash import run_chaos_fleet, run_chaos_standalone
    from .faults.models import FaultType

    fault_class = FaultType(args.fault_class)

    def run(base: str) -> int:
        failed = 0
        if args.mode in ("standalone", "both", "all"):
            report = run_chaos_standalone(
                os.path.join(base, "standalone"),
                deployments=args.deployments,
                kills_per_deployment=args.kills,
                seed=args.seed,
                fsync=args.fsync,
                fault_class=fault_class,
            )
            summary = report.summary()
            print(
                f"standalone: {summary['trials']} trials "
                f"({summary['torn_trials']} torn, "
                f"{summary['checkpointed_trials']} checkpointed), "
                f"{summary['delivered']} alerts delivered, "
                f"{summary['dead_letters']} dead-lettered -> "
                f"{'OK' if report.ok else 'FAIL'}"
            )
            for trial in report.trials:
                if not trial.ok:
                    failed += 1
                    print(
                        f"  FAIL standalone seed={trial.deploy_seed} "
                        f"kill={trial.kill_index}/{trial.total_events} "
                        f"torn={trial.torn} checkpointed={trial.checkpointed} "
                        f"parity={trial.parity} counters={trial.counters_monotone} "
                        f"delivery={trial.delivery_ok}"
                    )
        if args.mode in ("fleet", "both", "all"):
            report = run_chaos_fleet(
                os.path.join(base, "fleet"),
                fleets=args.fleets,
                kills_per_fleet=args.fleet_kills,
                num_homes=args.homes,
                seed=args.seed,
                fsync=args.fsync,
                fault_class=fault_class,
            )
            summary = report.summary()
            print(
                f"fleet: {summary['trials']} trials "
                f"({summary['torn_trials']} torn, "
                f"{summary['checkpointed_trials']} checkpointed), "
                f"{summary['delivered']} alerts delivered, "
                f"{summary['dead_letters']} dead-lettered -> "
                f"{'OK' if report.ok else 'FAIL'}"
            )
            for trial in report.trials:
                if not trial.ok:
                    failed += 1
                    print(
                        f"  FAIL fleet seed={trial.deploy_seed} "
                        f"kill={trial.kill_index}/{trial.total_events} "
                        f"shards={trial.shards_before}->{trial.shards_after} "
                        f"torn={trial.torn} checkpointed={trial.checkpointed} "
                        f"parity={trial.parity} counters={trial.counters_monotone} "
                        f"delivery={trial.delivery_ok}"
                    )
        if args.mode in ("service", "all"):
            from .faults.net import run_chaos_service

            report = run_chaos_service(
                os.path.join(base, "service"),
                fleets=args.fleets,
                kills_per_fleet=args.fleet_kills,
                num_homes=args.homes,
                seed=args.seed,
            )
            summary = report.summary()
            print(
                f"service: {summary['trials']} trials "
                f"({summary['torn_trials']} torn, "
                f"{summary['checkpointed_trials']} checkpointed), "
                f"{summary['delivered']} alerts delivered, "
                f"{summary['dead_letters']} dead-lettered -> "
                f"{'OK' if report.ok else 'FAIL'}"
            )
            for trial in report.trials:
                if not trial.ok:
                    failed += 1
                    print(
                        f"  FAIL service seed={trial.deploy_seed} "
                        f"kill={trial.kill_index}/{trial.total_events} "
                        f"shards={trial.shards_before}->{trial.shards_after} "
                        f"torn={trial.torn} checkpointed={trial.checkpointed} "
                        f"parity={trial.parity} counters={trial.counters_monotone} "
                        f"delivery={trial.delivery_ok}"
                    )
        return 1 if failed else 0

    if args.workdir:
        os.makedirs(args.workdir, exist_ok=True)
        return run(args.workdir)
    with tempfile.TemporaryDirectory(prefix="dice-chaos-") as base:
        return run(base)


def _cmd_scenarios(args) -> int:
    from .core import available_backends
    from .scenarios import (
        ScenarioSettings,
        build_report,
        default_matrix,
        refresh_pairs,
        render_baselines,
        render_table,
        run_matrix,
        select_cells,
        write_report,
    )

    backends = tuple(args.backends) if args.backends else ("dice",)
    for backend in backends:
        if backend not in available_backends():
            valid = ", ".join(available_backends())
            _log.error("unknown_backend", backend=backend, valid=valid)
            return 2
    filters = args.cells.split(",") if args.cells else None
    try:
        cells = select_cells(default_matrix(), filters)
    except ValueError as exc:
        _log.error("bad_cell_filter", error=str(exc))
        return 2
    if args.list_cells:
        for cell in cells:
            print(cell.cell_id)
        return 0
    settings = ScenarioSettings(trials=args.trials)
    results = run_matrix(
        cells, seed=args.seed, settings=settings, backends=backends
    )
    doc = build_report(results, seed=args.seed, settings=settings)
    print(render_table(doc))
    print()
    print(render_baselines(doc))
    for pair in refresh_pairs(doc):
        print(
            f"drift {pair['variant']}: sustained alerts/h "
            f"{pair['plain']} (plain) -> {pair['refresh']} (refresh)"
        )
    if args.out:
        write_report(doc, args.out)
        print(f"wrote scenario report to {args.out}")
    return 0


def _read_snapshot(path: str) -> Optional[dict]:
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        _log.error("bad_snapshot", path=path, error=str(exc))
        return None
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        _log.error("bad_snapshot", path=path, error="not a metrics snapshot")
        return None
    return snapshot


def _render_snapshot(snapshot: dict, fmt: str) -> str:
    import json

    from .eval.report import format_table
    from .telemetry import to_prometheus

    if fmt == "json":
        return json.dumps(snapshot, indent=2, sort_keys=True)
    if fmt == "prom":
        return to_prometheus(snapshot).rstrip("\n")
    rows = []
    for name, entry in sorted(snapshot["metrics"].items()):
        for row in entry["series"]:
            labels = ",".join(f"{k}={v}" for k, v in row.get("labels", {}).items())
            if entry["type"] == "histogram":
                value = (
                    f"count={row['count']} sum={row['sum']:.6g}"
                )
            else:
                value = f"{row['value']:g}"
            rows.append([name, entry["type"], labels or "-", value])
    return format_table(["metric", "type", "labels", "value"], rows)


def _cmd_metrics(args) -> int:
    if args.watch is None:
        snapshot = _read_snapshot(args.snapshot)
        if snapshot is None:
            return 2
        print(_render_snapshot(snapshot, args.format))
        return 0

    import time

    from .telemetry import SnapshotSampler

    if args.watch <= 0:
        _log.error("bad_watch", reason="--watch must be positive")
        return 2
    sampler = SnapshotSampler()
    iteration = 0
    try:
        while True:
            snapshot = _read_snapshot(args.snapshot)
            if snapshot is None:
                return 2
            sampler.add(time.monotonic(), snapshot)
            print(_render_snapshot(snapshot, args.format))
            rates = "  ".join(
                f"{label} {('n/a' if rate is None else f'{rate:.2f}/s')}"
                for label, rate in (
                    ("windows", sampler.counter_rate("dice_windows_total")),
                    ("alerts", sampler.counter_rate("dice_alerts_total")),
                    ("drops", sampler.counter_rate("dice_ingest_dropped_total")),
                )
            )
            print(f"-- refresh {iteration + 1}: {rates}")
            iteration += 1
            if args.iterations is not None and iteration >= args.iterations:
                break
            time.sleep(args.watch)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_explain(args) -> int:
    import json
    import os

    from .telemetry import render_explanation

    path = args.provenance
    if path is None and args.journal_dir:
        path = os.path.join(args.journal_dir, "provenance.wal")
    if path is None:
        _log.error(
            "bad_explain", reason="one of --provenance or --journal-dir is required"
        )
        return 2
    if args.selector is None and not args.last and args.seq is None:
        _log.error(
            "bad_explain", reason="give a trace-id prefix, --last or --seq"
        )
        return 2
    try:
        # 'stream --provenance-out' files are JSON lines (first byte '{');
        # the durable archive is length+CRC framed (first byte is a frame
        # header, never '{').
        with open(path, "rb") as handle:
            first = handle.read(1)
        if first == b"{":
            records = []
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        records.append(json.loads(line))
        else:
            from .durability import read_segment

            records, _ = read_segment(path)
    except (OSError, ValueError) as exc:
        _log.error("bad_provenance", path=path, error=str(exc))
        return 2
    record = None
    if args.seq is not None:
        for candidate in records:
            if candidate.get("alert", {}).get("seq") == args.seq:
                record = candidate
    elif args.selector is not None:
        for candidate in records:
            if candidate.get("id", "").startswith(args.selector):
                record = candidate
    else:
        record = records[-1] if records else None
    if record is None:
        _log.error(
            "no_such_alert", path=path, selector=args.selector, seq=args.seq,
            records=len(records),
        )
        return 1
    if args.as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(render_explanation(record))
    return 0


def _cmd_top(args) -> int:
    import time

    from .telemetry import SnapshotSampler, render_dashboard

    if args.interval <= 0:
        _log.error("bad_top", reason="--interval must be positive")
        return 2
    sampler = SnapshotSampler()
    max_iterations = 1 if args.once else args.iterations
    iteration = 0
    try:
        while True:
            snapshot = _read_snapshot(args.metrics)
            if snapshot is None:
                return 2
            sampler.add(time.monotonic(), snapshot)
            if sys.stdout.isatty() and iteration > 0:  # pragma: no cover
                sys.stdout.write("\033[2J\033[H")
            print(render_dashboard(sampler))
            iteration += 1
            if max_iterations is not None and iteration >= max_iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def _cmd_bench(args) -> int:
    from .bench import run_benchmarks
    from .bench.perf import write_document

    doc = run_benchmarks(
        quick=args.quick,
        seed=args.seed,
        dataset=args.dataset,
        groups=args.groups,
        windows=args.windows,
        workers_list=args.workers,
        capacity_homes=args.capacity_homes,
    )
    write_document(doc, args.output)
    scan = doc["scan"][0]
    print(
        f"scan: {scan['groups']} groups x {scan['windows']} windows  "
        f"scalar {1e3 * scan['scalar_s']:.1f} ms  "
        f"batch {1e3 * scan['batch_cold_s']:.1f} ms  "
        f"({scan['speedup_batch_vs_scalar']:.1f}x, "
        f"warm {scan['speedup_warm_vs_scalar']:.1f}x)"
    )
    segment = doc["segment"]
    print(
        f"segment: full pipeline batch vs scalar {segment['speedup']:.1f}x "
        f"({1e3 * segment['scalar_s']:.1f} -> {1e3 * segment['batch_s']:.1f} ms)"
    )
    tel = doc["telemetry"]
    print(
        f"telemetry: overhead {tel['overhead_pct']:+.1f}% "
        f"({1e3 * tel['disabled_s']:.1f} -> {1e3 * tel['enabled_s']:.1f} ms)"
    )
    for run in doc["eval"]["runs"]:
        print(
            f"eval[{doc['eval']['dataset']}]: workers={run['workers']} "
            f"(effective {run['effective_workers']}) "
            f"{run['seconds']:.2f}s  cache hit rate {100 * run['cache_hit_rate']:.1f}%"
        )
    print(
        "eval aggregates identical across worker counts: "
        f"{doc['eval']['aggregates_identical']}"
    )
    for run in doc["fleet"]["runs"]:
        print(
            f"fleet: homes={run['homes']} shards={run['shards']} "
            f"{run['seconds']:.2f}s  {run['events_per_s']:.0f} events/s  "
            f"{run['alerts_per_s']:.0f} alerts/s"
        )
    print(
        "fleet alerts identical across shard counts: "
        f"{doc['fleet']['alerts_identical_across_shards']}"
    )
    journal = doc["journal"]
    print(
        f"journal: {journal['events']} events  "
        f"overhead never {journal['overhead_pct_never']:+.1f}%  "
        f"(interval {journal['overhead_ratio']['interval']:.2f}x, "
        f"always {journal['overhead_ratio']['always']:.2f}x)"
    )
    scenarios = doc["scenarios"]
    print(
        f"scenarios: {scenarios['cells']} cells x {scenarios['trials']} trials "
        f"in {scenarios['seconds']:.2f}s"
    )
    for pair in scenarios["refresh_pairs"]:
        print(
            f"scenarios drift {pair['variant']}: sustained alerts/h "
            f"{pair['plain']} (plain) -> {pair['refresh']} (refresh)"
        )
    for entry in doc["backends"]:
        print(
            f"backend[{entry['backend']}]: fit {entry['fit_seconds']:.2f}s  "
            f"{entry['events_per_s']:.0f} events/s  "
            f"{entry['alerts']} alerts"
        )
    service = doc["service"]
    print(
        f"service: {service['events_per_s_service']:.0f} events/s over "
        f"loopback vs {service['events_per_s_inprocess']:.0f} in-process "
        f"({service['overhead_ratio']:.2f}x), parity "
        f"{service['alerts_identical']}"
    )
    overload = service["overload"]
    print(
        f"service overload: queue {overload['queue_capacity']} "
        f"(max depth {overload['max_queue_depth']})  "
        f"{overload['sheds']} sheds  {overload['reconnects']} reconnects  "
        f"complete {overload['complete']}"
    )
    cap = doc["capacity"]
    print(
        f"capacity: {cap['homes']} homes from {cap['archetypes']} archetypes  "
        f"shared+batched {cap['events_per_s_shared']:.0f} events/s vs "
        f"replicated {cap['events_per_s_replicated']:.0f} "
        f"({cap['speedup_shared_vs_replicated']:.2f}x), "
        f"parity {cap['alerts_identical']}"
    )
    print(
        f"capacity memory: {cap['bytes_per_home_shared'] / 1024:.1f} KiB/home "
        f"shared vs {cap['bytes_per_home_replicated'] / 1024:.1f} KiB/home "
        f"replicated ({cap['bytes_per_home_reduction']:.0f}x)"
    )
    for proj in cap["projection"]:
        print(
            f"capacity projection: {proj['homes']} homes -> "
            f"{proj['shared_bytes'] / 2**20:.1f} MiB trained state shared vs "
            f"{proj['replicated_bytes'] / 2**20:.1f} MiB replicated"
        )
    print(f"wrote {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    previous = telemetry.configure(level=args.log_level, format=args.log_format)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "evaluate":
            return _cmd_evaluate(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "send":
            return _cmd_send(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "bench":
            return _cmd_bench(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        # Restore the library default so embedding callers (and tests) are
        # not left with the CLI's log policy.
        telemetry.configure(level=previous.level, format=previous.format)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
