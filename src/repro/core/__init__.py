"""DICE core: context extraction, real-time checks, identification."""

from .bitset import PackedBitsets, hamming, mask_from_bits, popcount, set_bits
from .checks import (
    CorrelationChecker,
    CorrelationResult,
    TransitionCase,
    TransitionChecker,
    TransitionViolation,
    correlation_evidence,
    violation_evidence,
)
from .config import (
    BITS_PER_BINARY_DEVICE,
    BITS_PER_NUMERIC_SENSOR,
    DEFAULT_CONFIG,
    DiceConfig,
)
from .context import (
    SharedContext,
    SharedContextStore,
    context_hash,
    trained_context_nbytes,
)
from .detector import (
    CORRELATION_CHECK,
    STAGE_SECONDS_HISTOGRAM,
    STAGE_SECONDS_TOTAL,
    STAGES,
    TRANSITION_CHECK,
    WINDOWS_TOTAL,
    DetectionRecord,
    DiceDetector,
    DiceModel,
    IdentificationRecord,
    SegmentReport,
    StageTimings,
)
from .encoding import (
    BINARY_ROLE,
    NUMERIC_ROLES,
    BitLayout,
    BitSpec,
    StateSetEncoder,
    WindowedTrace,
)
from .groups import GroupRegistry
from .identification import (
    Identifier,
    IdentificationOutcome,
    IdentificationSession,
    ProbableFaultSet,
)
from .transitions import TransitionMatrix, TransitionModel
from .weights import DeviceWeights

__all__ = [
    "PackedBitsets",
    "hamming",
    "mask_from_bits",
    "popcount",
    "set_bits",
    "CorrelationChecker",
    "CorrelationResult",
    "TransitionCase",
    "TransitionChecker",
    "TransitionViolation",
    "correlation_evidence",
    "violation_evidence",
    "BITS_PER_BINARY_DEVICE",
    "BITS_PER_NUMERIC_SENSOR",
    "DEFAULT_CONFIG",
    "DiceConfig",
    "SharedContext",
    "SharedContextStore",
    "context_hash",
    "trained_context_nbytes",
    "CORRELATION_CHECK",
    "STAGE_SECONDS_HISTOGRAM",
    "STAGE_SECONDS_TOTAL",
    "STAGES",
    "TRANSITION_CHECK",
    "WINDOWS_TOTAL",
    "DetectionRecord",
    "DiceDetector",
    "DiceModel",
    "IdentificationRecord",
    "SegmentReport",
    "StageTimings",
    "BINARY_ROLE",
    "NUMERIC_ROLES",
    "BitLayout",
    "BitSpec",
    "StateSetEncoder",
    "WindowedTrace",
    "GroupRegistry",
    "Identifier",
    "IdentificationOutcome",
    "IdentificationSession",
    "ProbableFaultSet",
    "TransitionMatrix",
    "TransitionModel",
    "DeviceWeights",
]
