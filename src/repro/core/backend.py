"""Pluggable streaming detector backends.

The streaming runtime used to be welded to the DICE pipeline: the window
loop called the correlation checker, the transition checker and the
identifier directly.  :class:`DetectorBackend` extracts the seam — a
backend owns *what to check per window and whom to blame*, while the
runtime keeps everything transport-level (windowing, reorder, supervision,
checkpoints, provenance, telemetry).

The contract per backend:

* ``fit(trace)`` — precomputation on fault-free data;
* ``encoder`` / ``encode_window`` — the state-set encoding the windower
  drives (all backends reuse the paper's Eq. 3.1-3.4 encoding);
* ``check(snapshot, qbits)`` — one window's verdict.  ``qbits`` are
  state-set bits owned by quarantined sensors; a backend must ignore them;
* ``identify(verdict, snapshot)`` — the probable-faulty device set a
  violating window contributes to the shared identification session;
* ``checkpoint_state()`` / ``load_state(state)`` — JSON round-trip of the
  backend's transient streaming state (the fitted model is *not* included,
  mirroring the runtime checkpoint contract);
* ``fingerprint()`` / ``context_hash()`` — cheap invariants and a content
  hash of the fitted model, so checkpoints and fleet manifests can refuse
  restores onto the wrong model.

Three backends register here:

* ``dice`` — the paper's pipeline, byte-compatible with every checkpoint
  and golden fixture that predates the backend seam;
* ``markov`` — a per-device Markov-process transition detector (the WSN
  anomaly-framework restriction of DICE's transition check): one state
  chain per device, a violation whenever a device takes a transition never
  observed in training;
* ``ensemble`` — N child backends voting on alerts with a quorum.

Every registered backend is automatically run through the conformance
suite in ``tests/backends/``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .. import telemetry
from ..model import DeviceRegistry, Trace
from .checks import CorrelationResult, TransitionCase
from .config import DEFAULT_CONFIG, KNOWN_BACKENDS, DiceConfig
from .detector import (
    CORRELATION_CHECK,
    STAGE_SECONDS_HISTOGRAM,
    TRANSITION_CHECK,
    DiceDetector,
)
from .encoding import StateSetEncoder, WindowedTrace
from .identification import IdentificationSession, ProbableFaultSet
from .transitions import TransitionMatrix
from .weights import DeviceWeights

#: Check labels for the non-DICE backends (DICE keeps the paper's
#: "correlation"/"transition").
MARKOV_CHECK = "markov"
ENSEMBLE_CHECK = "ensemble"


@dataclass(frozen=True)
class BackendAlert:
    """One alert a backend raises; the runtime re-wraps it as a streaming
    :class:`~repro.streaming.Alert` without touching any field."""

    kind: str  # "detection" or "identification"
    time: float
    check: Optional[str] = None
    cases: Tuple[TransitionCase, ...] = ()
    devices: FrozenSet[str] = frozenset()
    converged: bool = True


@dataclass(frozen=True)
class WindowVerdict:
    """One window's check outcome.

    ``payload`` is backend-private evidence (whatever ``identify`` and
    ``window_evidence`` need); ``drift_signal`` feeds the context-refresh
    drift monitor and is deliberately distinct from ``violation`` — for
    DICE only *correlation* violations indicate drifted contexts.
    """

    violation: bool
    check: Optional[str] = None
    cases: Tuple[TransitionCase, ...] = ()
    payload: object = None
    drift_signal: bool = False


@dataclass(frozen=True)
class WindowOutcome:
    """What one completed window produced, for the runtime to publish."""

    alerts: Tuple[BackendAlert, ...] = ()
    violation: bool = False
    drift_signal: bool = False


@dataclass(frozen=True)
class _BatchWindow:
    """Duck-typed window snapshot for the batch replay path (kept local so
    ``repro.core`` never imports ``repro.streaming``)."""

    index: int
    start: float
    end: float
    mask: int
    actuator_activations: FrozenSet[str] = field(default_factory=frozenset)


class DetectorBackend:
    """Base class: the shared identification-session state machine plus the
    checkpoint plumbing; subclasses supply ``fit``/``check``/``identify``.

    The session template in :meth:`observe_window` is *the* semantics both
    the batch driver and the streaming runtime agree on — subclassing it is
    what makes streaming==batch parity hold for free for a new backend.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(
        self,
        registry: DeviceRegistry,
        config: DiceConfig = DEFAULT_CONFIG,
        weights: Optional[DeviceWeights] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        self.registry = registry
        self.config = config
        self.weights = weights
        self.metrics = telemetry.resolve(metrics)
        self.tracer = telemetry.Tracer(self.metrics)
        self._session: Optional[IdentificationSession] = None
        self._session_trigger: str = CORRELATION_CHECK
        stage_hist = self.metrics.histogram(
            STAGE_SECONDS_HISTOGRAM,
            "Wall-clock seconds per streamed window, by real-time stage",
            labelnames=("stage",),
        )
        self._stage_obs = {
            stage: stage_hist.labels(stage=stage)
            for stage in ("correlation", "transition", "identification")
        }

    # -- fitting -------------------------------------------------------- #

    @property
    def is_fitted(self) -> bool:
        raise NotImplementedError

    def fit(self, trace: Trace) -> "DetectorBackend":
        raise NotImplementedError

    @property
    def encoder(self) -> StateSetEncoder:
        """The fitted state-set encoder the streaming windower drives."""
        raise NotImplementedError

    def encode_window(self, trace: Trace) -> WindowedTrace:
        """Encode a segment into the per-window view this backend checks."""
        return self.encoder.encode(trace)

    # -- per-window checking -------------------------------------------- #

    def check(self, snapshot, qbits: int = 0) -> WindowVerdict:
        """Check one completed window (must not mutate streaming state)."""
        raise NotImplementedError

    def identify(self, verdict: WindowVerdict, snapshot) -> ProbableFaultSet:
        """Probable faulty devices a violating window contributes (§3.4)."""
        raise NotImplementedError

    def _post_window(self, snapshot, verdict: WindowVerdict, qbits: int) -> None:
        """Hook: advance backend streaming state after a window concludes."""

    def observe_window(self, snapshot, qbits: int = 0) -> WindowOutcome:
        """Run one window through check + the identification session.

        This is the exact state machine of the paper's real-time phase
        (and of ``DiceDetector.process``): a violation with no session
        open raises a detection and opens a session; while a session is
        open every window feeds it probable-faulty evidence; a converged
        (or exhausted) session concludes with an identification.
        """
        verdict = self.check(snapshot, qbits)
        alerts: List[BackendAlert] = []
        t0 = time.perf_counter()
        if self._session is None:
            if verdict.violation:
                alerts.append(
                    BackendAlert(
                        "detection",
                        snapshot.end,
                        check=verdict.check,
                        cases=verdict.cases,
                    )
                )
                probable = self.identify(verdict, snapshot)
                self._session = IdentificationSession(
                    self.config, probable, self.weights
                )
                self._session_trigger = verdict.check
        else:
            if verdict.violation:
                probable = self.identify(verdict, snapshot)
            else:
                probable = ProbableFaultSet(frozenset())
            self._session.update(probable)

        if self._session is not None and self._session.is_done:
            outcome = self._session.outcome
            alerts.append(
                BackendAlert(
                    "identification",
                    snapshot.end,
                    check=self._session_trigger,
                    devices=outcome.devices,
                    converged=outcome.converged,
                )
            )
            self._session = None
        self._stage_obs["identification"].observe(time.perf_counter() - t0)
        self._post_window(snapshot, verdict, qbits)
        return WindowOutcome(
            tuple(alerts), verdict.violation, verdict.drift_signal
        )

    def finish_segment(self, end_time: float) -> Optional[BackendAlert]:
        """End-of-segment: conclude an open session with its best guess."""
        if self._session is None:
            return None
        alert = BackendAlert(
            "identification",
            end_time,
            check=self._session_trigger,
            devices=self._session.intersection,
            converged=False,
        )
        self._session = None
        return alert

    # -- batch replay (the differential oracle's other arm) -------------- #

    def batch_twin(self) -> "DetectorBackend":
        """A backend sharing this one's fitted model but with fresh
        transient streaming state — what :meth:`process_batch` drives."""
        raise NotImplementedError

    def process_batch(self, trace: Trace) -> List[BackendAlert]:
        """Replay a segment through the window loop in one batch pass.

        Default implementation: encode the whole segment, then run the
        same :meth:`observe_window` template per window on a fresh twin.
        Backends with a genuinely different batch path (DICE's vectorised
        ``check_many``) override this — that difference is exactly what
        the conformance suite's parity oracle exercises.
        """
        twin = self.batch_twin()
        windowed = twin.encode_window(trace)
        seconds = windowed.window_seconds
        alerts: List[BackendAlert] = []
        for i, (mask, acts) in enumerate(windowed):
            start = windowed.window_start(i)
            window = _BatchWindow(i, start, start + seconds, mask, acts)
            alerts.extend(twin.observe_window(window).alerts)
        last_end = (
            windowed.window_start(len(windowed) - 1) + seconds
            if len(windowed)
            else trace.start
        )
        tail = twin.finish_segment(last_end)
        if tail is not None:
            alerts.append(tail)
        return alerts

    # -- evidence / telemetry ------------------------------------------- #

    def window_evidence(self, snapshot) -> dict:
        """Deterministic JSON evidence for the last checked window."""
        return {
            "window": snapshot.index,
            "start": snapshot.start,
            "end": snapshot.end,
            "mask": format(snapshot.mask, "x"),
            "actuators": sorted(snapshot.actuator_activations),
        }

    def context_summary(self) -> dict:
        """One-line fitted-context summary stamped into provenance."""
        return {"backend": self.name}

    def cache_counters(self) -> Tuple[int, int]:
        """(hits, misses) of whatever per-window memo the backend keeps."""
        return (0, 0)

    #: The underlying :class:`DiceDetector` when this backend has one
    #: (``None`` otherwise); the fleet's shared-context interning and the
    #: context refresher only apply to DICE-backed runtimes.
    dice_detector: Optional[DiceDetector] = None

    #: The live correlation checker for memo pre-warming (``None`` when the
    #: backend has no correlation memo).
    correlation_checker = None

    # -- checkpointing --------------------------------------------------- #

    def state_payload(self) -> Optional[dict]:
        """Backend-private transient state beyond the shared session."""
        return None

    def load_payload(self, payload: Optional[dict]) -> None:
        """Inverse of :meth:`state_payload` (``None`` = fresh state)."""

    def checkpoint_state(self) -> dict:
        """JSON-serializable transient streaming state (flat keys, merged
        into the runtime checkpoint)."""
        state = {
            "session": (
                None if self._session is None else self._session.state_dict()
            ),
            "session_trigger": self._session_trigger,
        }
        payload = self.state_payload()
        if payload is not None:
            state[self.name] = payload
        return state

    def load_state(self, state: dict) -> None:
        session = state.get("session")
        self._session = (
            None
            if session is None
            else IdentificationSession.from_state_dict(
                self.config, session, self.weights
            )
        )
        self._session_trigger = state.get("session_trigger", CORRELATION_CHECK)
        self.load_payload(state.get(self.name))

    # -- model identity --------------------------------------------------- #

    def fingerprint(self) -> dict:
        """Cheap invariants of the fitted model; checkpoints must match."""
        raise NotImplementedError

    def context_hash(self) -> str:
        """Content hash of the fitted model (fleet manifests record it)."""
        raise NotImplementedError


class DiceBackend(DetectorBackend):
    """The paper's pipeline as the reference backend.

    Wraps a :class:`DiceDetector`; every checker is read through the
    detector on each access, so shared-context interning, copy-on-write
    forks and context refreshes keep working unchanged.  The checkpoint
    layout and fingerprint are byte-compatible with the pre-backend
    runtime (checkpoint versions 1-4).
    """

    name = "dice"

    def __init__(self, detector: DiceDetector) -> None:
        super().__init__(
            detector.registry,
            detector.config,
            detector.weights,
            metrics=detector.metrics,
        )
        # Share the detector's tracer so spans nest as before.
        self.tracer = detector.tracer
        self.dice_detector = detector
        self._prev_group: Optional[int] = None
        self._anchor_group: Optional[int] = None
        self._prev_acts: FrozenSet[str] = frozenset()
        self._last_check: Tuple[CorrelationResult, tuple] = (
            CorrelationResult(0, None, ()),
            (),
        )

    @property
    def is_fitted(self) -> bool:
        return self.dice_detector.model is not None

    def fit(self, trace: Trace) -> "DiceBackend":
        self.dice_detector.fit(trace)
        return self

    @property
    def encoder(self) -> StateSetEncoder:
        return self.dice_detector._require_fitted().encoder

    @property
    def correlation_checker(self):
        return self.dice_detector._correlation_checker

    # -- checking --------------------------------------------------------- #

    def _check_correlation(self, mask: int, qbits: int) -> CorrelationResult:
        """The correlation check, quarantine-aware.

        With no quarantine active this is the fast memoised/vectorised
        path; while devices are quarantined, Hamming distances are
        computed over the remaining (visible) bits only — still one
        vectorised XOR+AND+popcount pass via ``masked_distances`` — so a
        dead sensor's permanently-zero bits cannot turn every window into
        a correlation violation.  Masked results bypass the memo: they
        depend on the quarantine set, not just the mask.
        """
        checker = self.dice_detector._correlation_checker
        if qbits == 0:
            return checker.check(mask)
        visible = ~qbits
        dists = checker.groups.masked_distances(mask, visible)
        main: Optional[int] = None
        probable: List[Tuple[int, int]] = []
        zero = np.nonzero(dists == 0)[0]
        if len(zero):
            main = int(zero[0])
        near = np.nonzero((dists > 0) & (dists <= checker.max_distance))[0]
        order = np.lexsort((near, dists[near]))
        for g in near[order]:
            probable.append((int(g), int(dists[g])))
        return CorrelationResult(mask & visible, main, tuple(probable))

    def check(self, snapshot, qbits: int = 0) -> WindowVerdict:
        detector = self.dice_detector
        observe = self._stage_obs
        with self.tracer.trace("correlation"):
            t0 = time.perf_counter()
            corr = self._check_correlation(snapshot.mask, qbits)
            observe["correlation"].observe(time.perf_counter() - t0)
        violations: tuple = ()
        if not corr.is_violation:
            with self.tracer.trace("transition"):
                t0 = time.perf_counter()
                violations = tuple(
                    detector._transition_checker.check(
                        self._prev_group,
                        corr.main_group,
                        self._prev_acts,
                        snapshot.actuator_activations,
                    )
                )
                observe["transition"].observe(time.perf_counter() - t0)
        self._last_check = (corr, violations)
        if corr.is_violation:
            return WindowVerdict(
                True,
                CORRELATION_CHECK,
                payload=(corr, violations),
                drift_signal=True,
            )
        if violations:
            return WindowVerdict(
                True,
                TRANSITION_CHECK,
                cases=tuple(v.case for v in violations),
                payload=(corr, violations),
            )
        return WindowVerdict(False, payload=(corr, violations))

    def identify(self, verdict: WindowVerdict, snapshot) -> ProbableFaultSet:
        corr, violations = verdict.payload
        identifier = self.dice_detector._identifier
        if corr.is_violation:
            return identifier.from_correlation_violation(
                corr, self._anchor_group
            )
        return identifier.from_transition_violations(
            violations, snapshot.mask, self._prev_group
        )

    def _post_window(self, snapshot, verdict: WindowVerdict, qbits: int) -> None:
        corr, _ = verdict.payload
        self._prev_group = corr.main_group
        if corr.main_group is not None:
            self._anchor_group = corr.main_group
        self._prev_acts = snapshot.actuator_activations

    # -- batch ------------------------------------------------------------ #

    def batch_twin(self) -> "DiceBackend":
        # A fresh wrap over the same fitted detector: clean transient
        # streaming state, shared trained model.  Used when DICE runs as
        # an ensemble child — the standalone batch path below goes
        # through the vectorised report driver instead.
        return DiceBackend(self.dice_detector)

    def process_batch(self, trace: Trace) -> List[BackendAlert]:
        """The genuinely different arm of the differential oracle: DICE's
        batch driver resolves every correlation check through one
        vectorised ``check_many`` matrix pass, then merges the report back
        into window order."""
        report = self.dice_detector.process(trace, publish=False)
        alerts: List[BackendAlert] = []
        detections = report.detections
        identifications = report.identifications
        di = ii = 0
        while di < len(detections) or ii < len(identifications):
            take_detection = ii >= len(identifications) or (
                di < len(detections)
                and detections[di].window <= identifications[ii].window
            )
            if take_detection:
                r = detections[di]
                di += 1
                alerts.append(
                    BackendAlert(
                        "detection", r.time, check=r.check, cases=r.cases
                    )
                )
            else:
                r = identifications[ii]
                ii += 1
                alerts.append(
                    BackendAlert(
                        "identification",
                        r.time,
                        check=r.triggered_by,
                        devices=r.devices,
                        converged=r.converged,
                    )
                )
        return alerts

    # -- evidence / telemetry --------------------------------------------- #

    def window_evidence(self, snapshot) -> dict:
        from .checks import correlation_evidence, violation_evidence

        detector = self.dice_detector
        corr, violations = self._last_check
        return {
            "window": snapshot.index,
            "start": snapshot.start,
            "end": snapshot.end,
            "mask": format(snapshot.mask, "x"),
            "actuators": sorted(snapshot.actuator_activations),
            "correlation": correlation_evidence(
                corr, detector._correlation_checker.max_distance
            ),
            "transitions": [
                violation_evidence(detector.model.transitions, v)
                for v in violations
            ],
        }

    def context_summary(self) -> dict:
        return self.dice_detector.context_summary()

    def cache_counters(self) -> Tuple[int, int]:
        checker = self.dice_detector._correlation_checker
        return (checker.cache_hits, checker.cache_misses)

    # -- checkpointing ----------------------------------------------------- #

    def checkpoint_state(self) -> dict:
        # Flat legacy keys: byte-compatible with checkpoint versions 1-4.
        return {
            "prev_group": self._prev_group,
            "anchor_group": self._anchor_group,
            "prev_acts": sorted(self._prev_acts),
            "session": (
                None if self._session is None else self._session.state_dict()
            ),
            "session_trigger": self._session_trigger,
        }

    def load_state(self, state: dict) -> None:
        self._prev_group = state["prev_group"]
        self._anchor_group = state["anchor_group"]
        self._prev_acts = frozenset(state["prev_acts"])
        session = state["session"]
        self._session = (
            None
            if session is None
            else IdentificationSession.from_state_dict(
                self.config, session, self.weights
            )
        )
        self._session_trigger = state["session_trigger"]

    # -- model identity ----------------------------------------------------- #

    def fingerprint(self) -> dict:
        # The legacy four-key fingerprint, unchanged so v1-v4 checkpoints
        # and fleet-manifest/1-2 entries keep validating.
        model = self.dice_detector.model
        if model is None:
            raise ValueError("detector must be fitted")
        return {
            "num_bits": model.encoder.layout.num_bits,
            "num_groups": len(model.groups),
            "window_seconds": model.encoder.window_seconds,
            "num_devices": len(self.registry),
        }

    def context_hash(self) -> str:
        from .context import context_hash

        detector = self.dice_detector
        return detector._interned_hash or context_hash(detector)


class MarkovBackend(DetectorBackend):
    """Per-device Markov-process transition detector.

    A restriction of DICE's transition check: each device gets its own
    state chain (a binary sensor's window state is its activation bit, a
    numeric sensor's its three derived bits, an actuator's its per-window
    activation), and a window violates when any device takes a transition
    whose training count is zero while its source state is trusted
    (``min_row_observations``).  No cross-device context is extracted —
    which is exactly what makes it a useful baseline for the paper's
    correlated-group claim.
    """

    name = "markov"

    def __init__(
        self,
        registry: DeviceRegistry,
        config: DiceConfig = DEFAULT_CONFIG,
        weights: Optional[DeviceWeights] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        super().__init__(registry, config, weights, metrics=metrics)
        self._encoder: Optional[StateSetEncoder] = None
        self._chains: Optional[Dict[str, TransitionMatrix]] = None
        self._training_windows = 0
        self._sensor_ids: Tuple[str, ...] = ()
        self._actuator_ids: Tuple[str, ...] = ()
        self._device_order: Tuple[str, ...] = ()
        self._prev_states: Dict[str, Optional[int]] = {}
        self._last_violating: Tuple[str, ...] = ()

    @property
    def is_fitted(self) -> bool:
        return self._chains is not None

    @property
    def encoder(self) -> StateSetEncoder:
        if self._encoder is None:
            raise RuntimeError("backend not fitted; call fit() first")
        return self._encoder

    def fit(self, trace: Trace) -> "MarkovBackend":
        encoder = StateSetEncoder(self.registry, self.config.window_seconds)
        encoder.fit(trace)
        self._encoder = encoder
        self._sensor_ids = tuple(
            sorted(
                d.device_id
                for d in self.registry
                if not d.is_actuator
            )
        )
        self._actuator_ids = tuple(
            sorted(d.device_id for d in self.registry if d.is_actuator)
        )
        self._device_order = self._sensor_ids + self._actuator_ids
        chains = {device: TransitionMatrix() for device in self._device_order}
        prev: Optional[Dict[str, int]] = None
        windowed = encoder.encode(trace)
        for mask, acts in windowed:
            states = self._window_states(mask, acts)
            if prev is not None:
                for device, cur in states.items():
                    chains[device].observe(prev[device], cur)
            prev = states
        self._chains = chains
        self._training_windows = len(windowed)
        self._prev_states = {}
        return self

    def _window_states(self, mask: int, acts: FrozenSet[str]) -> Dict[str, int]:
        """Each tracked device's window state (sensor bits / activation)."""
        layout = self.encoder.layout
        states: Dict[str, int] = {}
        for device in self._sensor_ids:
            state = 0
            for k, bit in enumerate(layout.bits_of_device(device)):
                state |= ((mask >> bit) & 1) << k
            states[device] = state
        for device in self._actuator_ids:
            states[device] = 1 if device in acts else 0
        return states

    def check(self, snapshot, qbits: int = 0) -> WindowVerdict:
        self._require_fitted()
        with self.tracer.trace("transition"):
            t0 = time.perf_counter()
            layout = self.encoder.layout
            states: Dict[str, Optional[int]] = dict(
                self._window_states(snapshot.mask, snapshot.actuator_activations)
            )
            if qbits:
                # Quarantined sensors are unknowns: no violation can be
                # charged to (or through) their masked bits.
                for device in self._sensor_ids:
                    if any(
                        (qbits >> bit) & 1
                        for bit in layout.bits_of_device(device)
                    ):
                        states[device] = None
            min_row = self.config.min_row_observations
            violating: List[str] = []
            for device in self._device_order:
                cur = states[device]
                prev = self._prev_states.get(device)
                if prev is None or cur is None:
                    continue
                chain = self._chains[device]
                if (
                    chain.row_total(prev) >= min_row
                    and chain.count(prev, cur) == 0
                ):
                    violating.append(device)
            self._stage_obs["transition"].observe(time.perf_counter() - t0)
        self._last_violating = tuple(violating)
        payload = (tuple(violating), states)
        if violating:
            return WindowVerdict(True, MARKOV_CHECK, payload=payload)
        return WindowVerdict(False, payload=payload)

    def identify(self, verdict: WindowVerdict, snapshot) -> ProbableFaultSet:
        violating, _states = verdict.payload
        return ProbableFaultSet(frozenset(violating))

    def _post_window(self, snapshot, verdict: WindowVerdict, qbits: int) -> None:
        _violating, states = verdict.payload
        self._prev_states = dict(states)

    def _require_fitted(self) -> None:
        if self._chains is None:
            raise RuntimeError("backend not fitted; call fit() first")

    # -- batch ------------------------------------------------------------ #

    def batch_twin(self) -> "MarkovBackend":
        twin = MarkovBackend(
            self.registry, self.config, self.weights, metrics=self.metrics
        )
        twin._encoder = self._encoder
        twin._chains = self._chains
        twin._training_windows = self._training_windows
        twin._sensor_ids = self._sensor_ids
        twin._actuator_ids = self._actuator_ids
        twin._device_order = self._device_order
        return twin

    # -- evidence / telemetry --------------------------------------------- #

    def window_evidence(self, snapshot) -> dict:
        evidence = super().window_evidence(snapshot)
        evidence["markov"] = {"violations": sorted(self._last_violating)}
        return evidence

    def context_summary(self) -> dict:
        self._require_fitted()
        return {
            "backend": self.name,
            "chains": len(self._chains),
            "training_windows": self._training_windows,
        }

    # -- checkpointing ----------------------------------------------------- #

    def state_payload(self) -> Optional[dict]:
        return {"prev": dict(sorted(self._prev_states.items()))}

    def load_payload(self, payload: Optional[dict]) -> None:
        self._prev_states = dict(payload["prev"]) if payload else {}

    # -- model identity ----------------------------------------------------- #

    def fingerprint(self) -> dict:
        if self._chains is None:
            raise ValueError("detector must be fitted")
        return {
            "backend": self.name,
            "num_bits": self.encoder.layout.num_bits,
            "window_seconds": self.encoder.window_seconds,
            "num_devices": len(self.registry),
            "num_chains": len(self._chains),
        }

    def context_hash(self) -> str:
        self._require_fitted()
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr(self.encoder.window_seconds).encode())
        digest.update(repr(self._device_order).encode())
        thresholds = self.encoder._value_thresholds
        if thresholds is not None:
            digest.update(repr(thresholds.tolist()).encode())
        for device in self._device_order:
            chain = self._chains[device]
            for row in sorted(chain._counts):
                for col, count in sorted(chain._counts[row].items()):
                    digest.update(
                        f"{device}:{row}->{col}={count};".encode()
                    )
        return digest.hexdigest()


class EnsembleBackend(DetectorBackend):
    """N child backends voting on alerts with a configurable quorum.

    Every child observes every window (quarantine bits included); the
    ensemble raises a detection when at least ``quorum`` children detect
    in the same window, and an identification when at least ``quorum``
    children conclude one in the same window — blaming the devices named
    by at least ``quorum`` of those concluding children.  A single noisy
    child can therefore never dominate a quorum of two or more.
    """

    name = "ensemble"

    #: Child backends of the default registered ensemble.
    DEFAULT_CHILDREN = ("dice", "markov")
    DEFAULT_QUORUM = 2

    def __init__(
        self,
        registry: DeviceRegistry,
        config: DiceConfig = DEFAULT_CONFIG,
        weights: Optional[DeviceWeights] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
        *,
        children: Optional[Sequence[DetectorBackend]] = None,
        quorum: Optional[int] = None,
    ) -> None:
        super().__init__(registry, config, weights, metrics=metrics)
        if children is None:
            children = [
                create_backend(
                    name, registry, config, weights=weights, metrics=metrics
                )
                for name in self.DEFAULT_CHILDREN
            ]
        self.children: List[DetectorBackend] = list(children)
        if not self.children:
            raise ValueError("ensemble needs at least one child backend")
        self.quorum = self.DEFAULT_QUORUM if quorum is None else int(quorum)
        if not 1 <= self.quorum <= len(self.children):
            raise ValueError(
                f"quorum must be in [1, {len(self.children)}], "
                f"got {self.quorum}"
            )

    @property
    def is_fitted(self) -> bool:
        return all(child.is_fitted for child in self.children)

    @property
    def encoder(self) -> StateSetEncoder:
        # All children fit the same deterministic encoding on the same
        # training trace, so the first child's encoder drives the windower
        # for everyone.
        return self.children[0].encoder

    def fit(self, trace: Trace) -> "EnsembleBackend":
        for child in self.children:
            child.fit(trace)
        return self

    # -- voting ----------------------------------------------------------- #

    def observe_window(self, snapshot, qbits: int = 0) -> WindowOutcome:
        detect_votes = 0
        ident_votes: List[BackendAlert] = []
        drift_votes = 0
        violation_votes = 0
        for child in self.children:
            outcome = child.observe_window(snapshot, qbits)
            if any(a.kind == "detection" for a in outcome.alerts):
                detect_votes += 1
            concluded = [
                a for a in outcome.alerts if a.kind == "identification"
            ]
            if concluded:
                ident_votes.append(concluded[-1])
            if outcome.violation:
                violation_votes += 1
            if outcome.drift_signal:
                drift_votes += 1
        alerts: List[BackendAlert] = []
        if detect_votes >= self.quorum:
            alerts.append(
                BackendAlert("detection", snapshot.end, check=ENSEMBLE_CHECK)
            )
        if len(ident_votes) >= self.quorum:
            alerts.append(
                BackendAlert(
                    "identification",
                    snapshot.end,
                    check=ENSEMBLE_CHECK,
                    devices=self._vote_devices(ident_votes),
                    converged=(
                        sum(1 for a in ident_votes if a.converged)
                        >= self.quorum
                    ),
                )
            )
        return WindowOutcome(
            tuple(alerts),
            violation_votes >= self.quorum,
            drift_votes >= self.quorum,
        )

    def _vote_devices(
        self, ident_votes: Sequence[BackendAlert]
    ) -> FrozenSet[str]:
        counts: Dict[str, int] = {}
        for alert in ident_votes:
            for device in alert.devices:
                counts[device] = counts.get(device, 0) + 1
        return frozenset(
            device for device, votes in counts.items() if votes >= self.quorum
        )

    def finish_segment(self, end_time: float) -> Optional[BackendAlert]:
        tails = [child.finish_segment(end_time) for child in self.children]
        votes = [tail for tail in tails if tail is not None]
        if len(votes) < self.quorum:
            return None
        return BackendAlert(
            "identification",
            end_time,
            check=ENSEMBLE_CHECK,
            devices=self._vote_devices(votes),
            converged=False,
        )

    # -- batch ------------------------------------------------------------ #

    def batch_twin(self) -> "EnsembleBackend":
        return EnsembleBackend(
            self.registry,
            self.config,
            self.weights,
            metrics=self.metrics,
            children=[child.batch_twin() for child in self.children],
            quorum=self.quorum,
        )

    # -- evidence / telemetry --------------------------------------------- #

    def context_summary(self) -> dict:
        return {
            "backend": self.name,
            "quorum": self.quorum,
            "children": [child.name for child in self.children],
        }

    def cache_counters(self) -> Tuple[int, int]:
        hits = misses = 0
        for child in self.children:
            h, m = child.cache_counters()
            hits += h
            misses += m
        return (hits, misses)

    # -- checkpointing ----------------------------------------------------- #

    def checkpoint_state(self) -> dict:
        return {
            "ensemble": {
                "quorum": self.quorum,
                "children": [
                    {"name": child.name, "state": child.checkpoint_state()}
                    for child in self.children
                ],
            }
        }

    def load_state(self, state: dict) -> None:
        payload = state.get("ensemble")
        if payload is None:
            return
        entries = payload.get("children", [])
        if len(entries) != len(self.children):
            raise ValueError(
                f"ensemble checkpoint has {len(entries)} children, "
                f"runtime has {len(self.children)}"
            )
        for entry, child in zip(entries, self.children):
            if entry.get("name") != child.name:
                raise ValueError(
                    f"ensemble child mismatch: checkpoint has "
                    f"{entry.get('name')!r}, runtime has {child.name!r}"
                )
            child.load_state(entry["state"])

    # -- model identity ----------------------------------------------------- #

    def fingerprint(self) -> dict:
        return {
            "backend": self.name,
            "quorum": self.quorum,
            "children": [child.fingerprint() for child in self.children],
        }

    def context_hash(self) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"quorum={self.quorum};".encode())
        for child in self.children:
            digest.update(f"{child.name}:{child.context_hash()};".encode())
        return digest.hexdigest()


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

BackendFactory = Callable[..., DetectorBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend constructor under *name* (overwrites allowed, so
    tests can shadow a backend and restore it)."""
    _BACKENDS[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted for stable error messages."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    name: Optional[str],
    registry: DeviceRegistry,
    config: DiceConfig = DEFAULT_CONFIG,
    *,
    weights: Optional[DeviceWeights] = None,
    metrics: Optional["telemetry.MetricsRegistry"] = None,
) -> DetectorBackend:
    """Instantiate a registered backend (unfitted).

    ``name=None`` selects ``config.backend``.  An unknown name raises
    ``ValueError`` with one line naming the valid backends — the CLI
    surfaces it verbatim and exits 2.
    """
    if name is None:
        name = config.backend
    factory = _BACKENDS.get(name)
    if factory is None:
        valid = ", ".join(available_backends())
        raise ValueError(f"unknown backend {name!r}; valid backends: {valid}")
    return factory(registry, config, weights=weights, metrics=metrics)


def as_backend(obj) -> DetectorBackend:
    """Coerce a detector-or-backend into a :class:`DetectorBackend`.

    A :class:`DiceDetector` is wrapped in a fresh :class:`DiceBackend`
    (each wrap carries its own transient streaming state, exactly like the
    pre-backend runtime kept that state per-runtime); a backend passes
    through unchanged.
    """
    if isinstance(obj, DetectorBackend):
        return obj
    if isinstance(obj, DiceDetector):
        return DiceBackend(obj)
    raise TypeError(
        f"expected a DetectorBackend or DiceDetector, got {type(obj).__name__}"
    )


def _dice_factory(registry, config=DEFAULT_CONFIG, *, weights=None, metrics=None):
    return DiceBackend(DiceDetector(registry, config, weights, metrics=metrics))


def _markov_factory(registry, config=DEFAULT_CONFIG, *, weights=None, metrics=None):
    return MarkovBackend(registry, config, weights, metrics=metrics)


def _ensemble_factory(registry, config=DEFAULT_CONFIG, *, weights=None, metrics=None):
    return EnsembleBackend(registry, config, weights, metrics=metrics)


register_backend("dice", _dice_factory)
register_backend("markov", _markov_factory)
register_backend("ensemble", _ensemble_factory)

# The config-side name list must cover the built-in registry, so a bad
# ``DiceConfig(backend=...)`` fails at construction with the same message
# shape as ``create_backend``.
assert set(KNOWN_BACKENDS) == set(_BACKENDS), (
    "KNOWN_BACKENDS out of sync with the backend registry"
)
