"""Packed bitset arithmetic for sensor state sets.

A sensor state set is a vector of activation bits (one per binary device,
three per numeric sensor).  Deployments can exceed 64 bits (hh102 encodes
270), so state sets are stored as Python ints for hashing/interning and as
rows of ``uint64`` words for the vectorised Hamming-distance scan that
dominates the correlation check (the "obtaining probable groups" cost the
paper measures in Fig. 5.3).

Storage grows by capacity doubling: ``append`` writes into a preallocated
backing array instead of reallocating per call, so interning ``n`` groups
costs O(n) words copied in total rather than the O(n²) a per-append
``np.vstack`` would.  ``distances_many`` batches the scan — one
XOR + popcount matrix pass answers every window of a segment at once.

Requires numpy >= 2.0 for ``np.bitwise_count`` (pinned in pyproject.toml).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Probe rows per block in the batched scan; bounds each XOR temporary to
#: ``_BLOCK_ROWS × n`` words regardless of segment length.
_BLOCK_ROWS = 2048

#: Batches at least this tall go through the float32 bit-plane GEMM kernel
#: (``d(a,b) = |a| + |b| - 2·a·b``); below it the per-word XOR+popcount
#: accumulation wins (no unpack/setup cost).
_GEMM_MIN_ROWS = 64


def _unpack_planes(words: np.ndarray) -> np.ndarray:
    """Unpack ``(k, num_words)`` uint64 rows into ``(k, 64·num_words)``
    float32 0/1 bit planes (bit order is consistent across calls, which is
    all Hamming arithmetic needs)."""
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1
    ).astype(np.float32)


def words_needed(num_bits: int) -> int:
    """uint64 words required to hold *num_bits*."""
    if num_bits < 0:
        raise ValueError("num_bits must be non-negative")
    return max(1, (num_bits + 63) // 64)


def pack_int(mask: int, num_words: int) -> np.ndarray:
    """Split a non-negative int bitmask into little-endian uint64 words."""
    if mask < 0:
        raise ValueError("mask must be non-negative")
    words = np.empty(num_words, dtype=np.uint64)
    for w in range(num_words):
        words[w] = (mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
    if mask >> (64 * num_words):
        raise ValueError("mask does not fit in the given number of words")
    return words


def unpack_int(words: np.ndarray) -> int:
    """Inverse of :func:`pack_int`."""
    mask = 0
    for w, word in enumerate(np.asarray(words, dtype=np.uint64)):
        mask |= int(word) << (64 * w)
    return mask


def popcount(mask: int) -> int:
    """Number of set bits in a Python int.

    The single popcount entry point for the whole codebase.
    """
    if mask < 0:
        raise ValueError("mask must be non-negative")
    return mask.bit_count()


def hamming(a: int, b: int) -> int:
    """Hamming distance between two int bitmasks (§3.3.1 group distance)."""
    return popcount(a ^ b)


def set_bits(mask: int) -> List[int]:
    """Indices of set bits, ascending."""
    bits = []
    i = 0
    while mask:
        if mask & 1:
            bits.append(i)
        mask >>= 1
        i += 1
    return bits


def mask_from_bits(bits: Iterable[int]) -> int:
    """Bitmask with the given bit indices set."""
    mask = 0
    for bit in bits:
        if bit < 0:
            raise ValueError("bit indices must be non-negative")
        mask |= 1 << bit
    return mask


class PackedBitsets:
    """A growable collection of equal-width bitsets supporting bulk queries.

    Rows are packed into a capacity-doubled ``(capacity, num_words)`` uint64
    backing array; :attr:`rows` exposes the live ``(n, num_words)`` prefix.
    Distances from one probe mask to *all* rows is a single vectorised
    XOR + popcount pass; :meth:`distances_many` does the same for a whole
    batch of probes as one ``(W, n)`` matrix pass.
    """

    def __init__(
        self,
        num_bits: int,
        masks: Sequence[int] = (),
        gemm_min_rows: Optional[int] = None,
    ) -> None:
        self.num_bits = int(num_bits)
        self.num_words = words_needed(self.num_bits)
        self._masks: List[int] = []
        self._buf = np.empty((0, self.num_words), dtype=np.uint64)
        #: Lazily-built float32 bit planes of the rows for the GEMM kernel,
        #: tagged with the row count they were built at.
        self._planes: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        #: Plain-int tallies of which batch kernel ran, read by the
        #: telemetry collector (``dice_bitset_kernel_calls_total``).
        self.kernel_calls: Dict[str, int] = {"gemm": 0, "xor": 0}
        #: Scalar/GEMM crossover for :meth:`distances_many`; ``None`` keeps
        #: the module heuristic (overridable via ``DiceConfig``).
        self.gemm_min_rows = (
            _GEMM_MIN_ROWS if gemm_min_rows is None else int(gemm_min_rows)
        )
        if masks:
            self.extend(masks)

    def copy(self) -> "PackedBitsets":
        """Independent twin with the same rows and fresh kernel tallies."""
        twin = PackedBitsets(self.num_bits, gemm_min_rows=self.gemm_min_rows)
        twin._masks = list(self._masks)
        twin._buf = self._buf[: len(self._masks)].copy()
        return twin

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_planes"] = None  # derived; rebuilt on demand
        return state

    def __len__(self) -> int:
        return len(self._masks)

    @property
    def masks(self) -> List[int]:
        """The stored masks, in insertion order."""
        return list(self._masks)

    @property
    def rows(self) -> np.ndarray:
        """Live ``(n, num_words)`` view of the packed rows (no copy)."""
        return self._buf[: len(self._masks)]

    def _reserve(self, extra: int) -> None:
        """Ensure capacity for *extra* more rows, doubling on growth."""
        need = len(self._masks) + extra
        capacity = self._buf.shape[0]
        if need <= capacity:
            return
        new_capacity = max(16, capacity)
        while new_capacity < need:
            new_capacity *= 2
        buf = np.empty((new_capacity, self.num_words), dtype=np.uint64)
        buf[: len(self._masks)] = self.rows
        self._buf = buf

    def append(self, mask: int) -> int:
        """Add one mask; returns its row index.  Amortised O(num_words)."""
        self._reserve(1)
        index = len(self._masks)
        self._buf[index] = pack_int(mask, self.num_words)
        self._masks.append(mask)
        return index

    def extend(self, masks: Iterable[int]) -> None:
        masks = list(masks)
        if not masks:
            return
        self._reserve(len(masks))
        base = len(self._masks)
        for i, mask in enumerate(masks):
            self._buf[base + i] = pack_int(mask, self.num_words)
        self._masks.extend(masks)

    def pack_many(self, masks: Sequence[int]) -> np.ndarray:
        """Pack a sequence of int masks into a ``(len, num_words)`` matrix."""
        probes = np.empty((len(masks), self.num_words), dtype=np.uint64)
        for i, mask in enumerate(masks):
            probes[i] = pack_int(mask, self.num_words)
        return probes

    def distances(self, mask: int) -> np.ndarray:
        """Hamming distance from *mask* to every stored row."""
        if not self._masks:
            return np.empty(0, dtype=np.int64)
        probe = pack_int(mask, self.num_words)
        xored = self.rows ^ probe[None, :]
        return np.bitwise_count(xored).sum(axis=1).astype(np.int64)

    def distances_many(
        self, masks: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Hamming distances from every probe to every row: ``(W, n)``.

        *masks* is either a sequence of int bitmasks or an already-packed
        ``(W, num_words)`` uint64 matrix.  Probes are processed in blocks
        so the XOR temporary stays bounded for arbitrarily long segments.
        """
        probes = (
            np.asarray(masks, dtype=np.uint64)
            if isinstance(masks, np.ndarray)
            else self.pack_many(masks)
        )
        n = len(self._masks)
        out = np.empty((probes.shape[0], n), dtype=np.int64)
        if probes.shape[0] == 0 or n == 0:
            return out
        if probes.shape[0] >= self.gemm_min_rows:
            self.kernel_calls["gemm"] += 1
            return self._distances_gemm(probes, out)
        self.kernel_calls["xor"] += 1
        rows = self.rows
        # Accumulate word by word over 2D (block, n) temporaries: far
        # friendlier to the cache than one 3D (block, n, words) broadcast.
        for lo in range(0, probes.shape[0], _BLOCK_ROWS):
            block = probes[lo : lo + _BLOCK_ROWS]
            acc = np.bitwise_count(
                block[:, 0, None] ^ rows[None, :, 0]
            ).astype(np.int64)
            for w in range(1, self.num_words):
                acc += np.bitwise_count(block[:, w, None] ^ rows[None, :, w])
            out[lo : lo + block.shape[0]] = acc
        return out

    def _row_planes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Float32 bit planes of the stored rows (and their popcounts),
        rebuilt whenever the row count has changed since last use."""
        n = len(self._masks)
        if self._planes is None or self._planes[0] != n:
            planes = _unpack_planes(self.rows)
            self._planes = (n, planes, planes.sum(axis=1))
        return self._planes[1], self._planes[2]

    def _distances_gemm(self, probes: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Hamming distances via one float32 GEMM on unpacked bit planes.

        ``d(a, b) = |a| + |b| - 2·a·b`` — every quantity is a small
        integer (≤ 64·num_words), exactly representable in float32, so the
        result is exact.  A single BLAS matrix multiply beats elementwise
        XOR+popcount passes once the batch is tall enough.
        """
        row_planes, row_pops = self._row_planes()
        probe_planes = _unpack_planes(probes)
        probe_pops = probe_planes.sum(axis=1)
        for lo in range(0, probes.shape[0], _BLOCK_ROWS):
            hi = min(lo + _BLOCK_ROWS, probes.shape[0])
            prod = probe_planes[lo:hi] @ row_planes.T
            np.multiply(prod, -2.0, out=prod)
            prod += probe_pops[lo:hi, None]
            prod += row_pops[None, :]
            out[lo:hi] = prod
        return out

    def masked_distances(self, mask: int, visible: Optional[int] = None) -> np.ndarray:
        """Distances from *mask* to every row over *visible* bits only.

        ``visible`` is a bitmask of the positions that count (quarantined
        devices' bits are masked out of the gateway's correlation check);
        ``None`` means all bits, identical to :meth:`distances`.
        """
        if visible is None:
            return self.distances(mask)
        if not self._masks:
            return np.empty(0, dtype=np.int64)
        probe = pack_int(mask, self.num_words)
        keep = pack_int(
            visible & ((1 << (64 * self.num_words)) - 1), self.num_words
        )
        xored = (self.rows ^ probe[None, :]) & keep[None, :]
        return np.bitwise_count(xored).sum(axis=1).astype(np.int64)

    def within(self, mask: int, max_distance: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices (and distances) of rows within *max_distance* of *mask*.

        Results are sorted by ascending distance, ties by row index, so the
        closest candidate group always comes first.
        """
        dists = self.distances(mask)
        hit = np.nonzero(dists <= max_distance)[0]
        order = np.lexsort((hit, dists[hit]))
        hit = hit[order]
        return hit, dists[hit]
