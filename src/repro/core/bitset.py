"""Packed bitset arithmetic for sensor state sets.

A sensor state set is a vector of activation bits (one per binary device,
three per numeric sensor).  Deployments can exceed 64 bits (hh102 encodes
270), so state sets are stored as Python ints for hashing/interning and as
rows of ``uint64`` words for the vectorised Hamming-distance scan that
dominates the correlation check (the "obtaining probable groups" cost the
paper measures in Fig. 5.3).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def words_needed(num_bits: int) -> int:
    """uint64 words required to hold *num_bits*."""
    if num_bits < 0:
        raise ValueError("num_bits must be non-negative")
    return max(1, (num_bits + 63) // 64)


def pack_int(mask: int, num_words: int) -> np.ndarray:
    """Split a non-negative int bitmask into little-endian uint64 words."""
    if mask < 0:
        raise ValueError("mask must be non-negative")
    words = np.empty(num_words, dtype=np.uint64)
    for w in range(num_words):
        words[w] = (mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
    if mask >> (64 * num_words):
        raise ValueError("mask does not fit in the given number of words")
    return words


def unpack_int(words: np.ndarray) -> int:
    """Inverse of :func:`pack_int`."""
    mask = 0
    for w, word in enumerate(np.asarray(words, dtype=np.uint64)):
        mask |= int(word) << (64 * w)
    return mask


def popcount(mask: int) -> int:
    """Number of set bits in a Python int."""
    return bin(mask).count("1") if mask >= 0 else _raise_negative()


def _raise_negative() -> int:
    raise ValueError("mask must be non-negative")


def hamming(a: int, b: int) -> int:
    """Hamming distance between two int bitmasks (§3.3.1 group distance)."""
    return popcount(a ^ b)


def set_bits(mask: int) -> List[int]:
    """Indices of set bits, ascending."""
    bits = []
    i = 0
    while mask:
        if mask & 1:
            bits.append(i)
        mask >>= 1
        i += 1
    return bits


def mask_from_bits(bits: Iterable[int]) -> int:
    """Bitmask with the given bit indices set."""
    mask = 0
    for bit in bits:
        if bit < 0:
            raise ValueError("bit indices must be non-negative")
        mask |= 1 << bit
    return mask


class PackedBitsets:
    """A fixed collection of equal-width bitsets supporting bulk queries.

    Rows are packed into a ``(n, num_words)`` uint64 matrix so that
    distances from one probe mask to *all* rows is a single vectorised
    XOR + popcount pass.
    """

    def __init__(self, num_bits: int, masks: Sequence[int] = ()) -> None:
        self.num_bits = int(num_bits)
        self.num_words = words_needed(self.num_bits)
        self._masks: List[int] = []
        self._rows = np.empty((0, self.num_words), dtype=np.uint64)
        if masks:
            self.extend(masks)

    def __len__(self) -> int:
        return len(self._masks)

    @property
    def masks(self) -> List[int]:
        """The stored masks, in insertion order."""
        return list(self._masks)

    def append(self, mask: int) -> int:
        """Add one mask; returns its row index."""
        row = pack_int(mask, self.num_words)
        self._rows = np.vstack([self._rows, row[None, :]])
        self._masks.append(mask)
        return len(self._masks) - 1

    def extend(self, masks: Iterable[int]) -> None:
        masks = list(masks)
        if not masks:
            return
        block = np.empty((len(masks), self.num_words), dtype=np.uint64)
        for i, mask in enumerate(masks):
            block[i] = pack_int(mask, self.num_words)
        self._rows = np.vstack([self._rows, block])
        self._masks.extend(masks)

    def distances(self, mask: int) -> np.ndarray:
        """Hamming distance from *mask* to every stored row."""
        if not self._masks:
            return np.empty(0, dtype=np.int64)
        probe = pack_int(mask, self.num_words)
        xored = self._rows ^ probe[None, :]
        return np.bitwise_count(xored).sum(axis=1).astype(np.int64)

    def within(self, mask: int, max_distance: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices (and distances) of rows within *max_distance* of *mask*.

        Results are sorted by ascending distance, ties by row index, so the
        closest candidate group always comes first.
        """
        dists = self.distances(mask)
        hit = np.nonzero(dists <= max_distance)[0]
        order = np.lexsort((hit, dists[hit]))
        hit = hit[order]
        return hit, dists[hit]
