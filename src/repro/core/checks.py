"""Real-time detection checks (§3.3).

The **correlation check** matches each incoming sensor state set against the
training groups: an exact match is the *main group*; near matches (within a
Hamming bound derived from the assumed fault count) are *probable groups*.
No main group ⇒ a correlation violation — a sensor combination never seen in
training.

The **transition check** runs only when a main group exists, because
non-fail-stop faults (notably stuck-at) often preserve the correlation
structure; it flags transitions with zero learned probability:

* case 1 — previous group → current group unseen in G2G;
* case 2 — previous group → currently activated actuator unseen in G2A;
* case 3 — previously activated actuator → current group unseen in A2G.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .config import DiceConfig
from .groups import GroupRegistry
from .transitions import TransitionModel


@dataclass(frozen=True)
class CorrelationResult:
    """Outcome of the correlation check for one window."""

    mask: int
    main_group: Optional[int]
    #: Candidate groups other than the main group: (group_id, distance),
    #: nearest first.
    probable_groups: Tuple[Tuple[int, int], ...]

    @property
    def is_violation(self) -> bool:
        return self.main_group is None


class TransitionCase(enum.Enum):
    """Which matrix a transition violation came from (§3.3.2 cases 1-3)."""

    G2G = "g2g"
    G2A = "g2a"
    A2G = "a2g"


@dataclass(frozen=True)
class TransitionViolation:
    """A zero-probability transition observed at run time."""

    case: TransitionCase
    prev_group: Optional[int]
    cur_group: Optional[int]
    actuator: Optional[str] = None


def correlation_evidence(result: CorrelationResult, max_distance: int) -> dict:
    """JSON-serializable evidence of one correlation check, for provenance.

    Captures the verdict *and* the numbers behind it: the candidate groups
    with their Hamming distances against the bound in force, so an alert
    can later show how close the window came to matching.
    """
    return {
        "mask": format(result.mask, "x"),
        "violation": result.is_violation,
        "main_group": result.main_group,
        "candidates": [[g, d] for g, d in result.probable_groups],
        "max_distance": int(max_distance),
    }


def violation_evidence(
    model: TransitionModel, violation: TransitionViolation
) -> dict:
    """JSON-serializable evidence of one transition violation.

    Joins the violation's edge with the fitted matrices' probability terms
    (count, row total, probability) — the exact quantities
    :meth:`TransitionChecker.check` gated on.
    """
    case = violation.case
    if case is TransitionCase.G2G:
        edge = model.edge_stats("g2g", violation.prev_group, violation.cur_group)
    elif case is TransitionCase.G2A:
        edge = model.edge_stats("g2a", violation.prev_group, violation.actuator)
    else:
        edge = model.edge_stats("a2g", violation.actuator, violation.cur_group)
    return {
        "case": case.value,
        "prev_group": violation.prev_group,
        "cur_group": violation.cur_group,
        "actuator": violation.actuator,
        **edge,
    }


class CorrelationChecker:
    """§3.3.1 — main/probable group search over the group registry.

    Live traffic repeats a small working set of state-set masks heavily
    (state sets "retain their value for several rounds", §5.2), so results
    are memoised in an LRU mask → :class:`CorrelationResult` cache: a hit
    skips the group scan entirely.  The cache is keyed on the fitted
    registry — it drops itself whenever :attr:`GroupRegistry.version`
    changes (i.e. on refit), so stale results can never be served.

    :meth:`check_many` is the batch path: all misses of a whole segment are
    resolved in one ``(W, G)`` XOR + popcount matrix pass instead of one
    scan per window, with results identical to the scalar :meth:`check`.
    """

    def __init__(
        self,
        groups: GroupRegistry,
        config: DiceConfig,
        cache_size: Optional[int] = None,
    ) -> None:
        self.groups = groups
        self.config = config
        if config.gemm_min_rows is not None:
            # Kernel crossover is a pure performance knob (identical
            # distances either way), so applying it to a shared registry is
            # safe: every holder runs the same config by construction.
            groups.gemm_min_rows = config.gemm_min_rows
        self.max_distance = config.candidate_distance(groups.layout.has_numeric)
        self._cache_size = (
            config.correlation_cache_size if cache_size is None else cache_size
        )
        self._cache: "OrderedDict[int, CorrelationResult]" = OrderedDict()
        self._cache_version = groups.version
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    # -- cache plumbing -------------------------------------------------- #

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and current cache occupancy."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "size": len(self._cache),
            "max_size": self._cache_size,
        }

    def clear_cache(self) -> None:
        self._cache.clear()
        self._cache_version = self.groups.version

    def _cache_lookup(self, mask: int) -> Optional[CorrelationResult]:
        if self.groups.version != self._cache_version:
            self.clear_cache()
        result = self._cache.get(mask)
        if result is not None:
            self._cache.move_to_end(mask)
        return result

    def _cache_store(self, mask: int, result: CorrelationResult) -> None:
        self._cache[mask] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self.cache_evictions += 1

    # -- scalar path ----------------------------------------------------- #

    def scan(self, mask: int) -> CorrelationResult:
        """Uncached single-mask scan (the pre-memoisation seed path)."""
        candidates = self.groups.candidates(mask, self.max_distance)
        main: Optional[int] = None
        probable: List[Tuple[int, int]] = []
        for group_id, distance in candidates:
            if distance == 0 and main is None:
                main = group_id
            else:
                probable.append((group_id, distance))
        return CorrelationResult(mask, main, tuple(probable))

    def check(self, mask: int) -> CorrelationResult:
        if not self._cache_size:
            self.cache_misses += 1
            return self.scan(mask)
        cached = self._cache_lookup(mask)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        result = self.scan(mask)
        self._cache_store(mask, result)
        return result

    # -- batch path ------------------------------------------------------ #

    def check_many(self, masks: Sequence[int]) -> List[CorrelationResult]:
        """Correlation checks for a whole segment's windows at once.

        Result-identical to calling :meth:`check` per window; cache-miss
        masks are resolved through one batched distance-matrix pass.
        """
        masks = list(masks)
        if not masks:
            return []
        if not self._cache_size:
            self.cache_misses += len(masks)
            return self._scan_many(masks)
        if self.groups.version != self._cache_version:
            self.clear_cache()
        cache = self._cache
        hits = 0
        results: List[Optional[CorrelationResult]] = [None] * len(masks)
        pending: Dict[int, List[int]] = {}
        for i, mask in enumerate(masks):
            cached = cache.get(mask)
            if cached is not None:
                hits += 1
                cache.move_to_end(mask)
                results[i] = cached
            elif mask in pending:
                # The scalar loop would have hit the entry stored by the
                # first occurrence; count it the same way.
                hits += 1
                pending[mask].append(i)
            else:
                pending[mask] = [i]
        self.cache_hits += hits
        if pending:
            unique = list(pending)
            self.cache_misses += len(unique)
            for mask, result in zip(unique, self._scan_many(unique)):
                cache[mask] = result
                for i in pending[mask]:
                    results[i] = result
            while len(cache) > self._cache_size:
                cache.popitem(last=False)
                self.cache_evictions += 1
        return results  # type: ignore[return-value]

    def warm(self, masks: Sequence[int]) -> int:
        """Prefill the memo for *masks* without touching hit/miss counters.

        The cross-home batched tick stacks the pending windows of every
        home sharing this checker into one ``(W, G)`` matrix pass, then
        each home's in-order drain consults the memo as usual.  Because
        the memo is a pure cache, warming changes *which kernel* resolves
        a mask, never the result — per-home alerts are byte-identical to
        the unwarmed path.  Returns the number of masks actually scanned.
        """
        if not self._cache_size:
            return 0
        if self.groups.version != self._cache_version:
            self.clear_cache()
        cache = self._cache
        fresh: List[int] = []
        seen = set()
        for mask in masks:
            if mask in cache:
                cache.move_to_end(mask)
            elif mask not in seen:
                seen.add(mask)
                fresh.append(mask)
        if not fresh:
            return 0
        for mask, result in zip(fresh, self._scan_many(fresh)):
            cache[mask] = result
        while len(cache) > self._cache_size:
            cache.popitem(last=False)
            self.cache_evictions += 1
        return len(fresh)

    def _scan_many(self, masks: List[int]) -> List[CorrelationResult]:
        """One (W, G) matrix pass; per-row candidate extraction mirrors
        :meth:`PackedBitsets.within` (distance order, ties by group id)."""
        if len(self.groups) == 0:
            return [CorrelationResult(mask, None, ()) for mask in masks]
        dist = self.groups.distances_many(masks)
        rows, cols = np.nonzero(dist <= self.max_distance)
        ds = dist[rows, cols]
        order = np.lexsort((cols, ds, rows))
        rows = rows[order]
        bounds = np.searchsorted(rows, np.arange(len(masks) + 1)).tolist()
        cols = cols[order].tolist()
        ds = ds[order].tolist()
        results: List[CorrelationResult] = []
        for i, mask in enumerate(masks):
            lo, hi = bounds[i], bounds[i + 1]
            if lo == hi:
                # No group within the bound: a correlation violation.
                results.append(CorrelationResult(mask, None, ()))
                continue
            main: Optional[int] = None
            probable: List[Tuple[int, int]] = []
            for k in range(lo, hi):
                if ds[k] == 0 and main is None:
                    main = cols[k]
                else:
                    probable.append((cols[k], ds[k]))
            results.append(CorrelationResult(mask, main, tuple(probable)))
        return results

    def nearest(self, mask: int, limit_distance: int) -> Tuple[Tuple[int, int], ...]:
        """Groups at the smallest non-zero distance ≤ *limit_distance*.

        Fallback for identification when no candidate lies within the
        standard bound: widen the search until some group is comparable.
        """
        for distance in range(self.max_distance + 1, limit_distance + 1):
            candidates = self.groups.candidates(mask, distance)
            hits = tuple((g, d) for g, d in candidates if d > 0)
            if hits:
                return hits
        return ()


class TransitionChecker:
    """§3.3.2 — zero-probability transition detection.

    When constructed with a group registry, G2G violations additionally
    require both endpoint groups to be frequent (``min_group_observations``)
    — see :class:`~repro.core.config.DiceConfig` for the rationale.
    """

    def __init__(
        self,
        transitions: TransitionModel,
        config: DiceConfig,
        groups: Optional[GroupRegistry] = None,
    ) -> None:
        self.transitions = transitions
        self.config = config
        self.groups = groups

    def _group_is_confident(self, group_id: Optional[int]) -> bool:
        if self.groups is None or group_id is None:
            return True
        return self.groups.count_of(group_id) >= self.config.min_group_observations

    def _two_step_reachable(self, prev_group: int, cur_group: int) -> bool:
        """Whether cur is reachable from prev through one intermediate group
        (window-boundary aliasing absorption; see ``DiceConfig``)."""
        if not self.config.g2g_two_step_closure:
            return False
        g2g = self.transitions.g2g
        max_self = self.config.closure_max_self_loop
        for middle in g2g.successors(prev_group):
            if middle == prev_group or middle == cur_group:
                continue
            # Only genuine hand-over groups qualify as skipped middles: they
            # dwell for about one window, so their self-loop probability is
            # low.  Long-dwell hubs (most of all the all-quiet group) would
            # otherwise make every pair reachable and blind the check.
            if g2g.probability(middle, middle) > max_self:
                continue
            if g2g.probability(middle, cur_group) > 0.0:
                return True
        return False

    def check(
        self,
        prev_group: Optional[int],
        cur_group: int,
        prev_actuators: FrozenSet[str],
        cur_actuators: FrozenSet[str],
    ) -> List[TransitionViolation]:
        """All violations for the window transition *prev* → *cur*.

        ``prev_group`` is ``None`` when the previous window had no main
        group (detection is re-anchoring after a violation); G2G and G2A
        are then skipped, A2G still applies.
        """
        violations: List[TransitionViolation] = []
        model = self.transitions
        min_obs = self.config.min_row_observations
        if prev_group is not None:
            if (
                model.g2g.row_total(prev_group) >= min_obs
                and model.g2g.probability(prev_group, cur_group) == 0.0
                and self._group_is_confident(prev_group)
                and self._group_is_confident(cur_group)
                and not self._two_step_reachable(prev_group, cur_group)
            ):
                violations.append(
                    TransitionViolation(TransitionCase.G2G, prev_group, cur_group)
                )
            for act in sorted(cur_actuators):
                if (
                    model.g2a.probability(prev_group, act) == 0.0
                    and self._group_is_confident(prev_group)
                ):
                    violations.append(
                        TransitionViolation(
                            TransitionCase.G2A, prev_group, cur_group, actuator=act
                        )
                    )
        for act in sorted(prev_actuators):
            if (
                model.a2g.row_total(act) >= min_obs
                and model.a2g.probability(act, cur_group) == 0.0
                and self._group_is_confident(cur_group)
            ):
                violations.append(
                    TransitionViolation(
                        TransitionCase.A2G, prev_group, cur_group, actuator=act
                    )
                )
        return violations
