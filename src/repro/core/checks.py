"""Real-time detection checks (§3.3).

The **correlation check** matches each incoming sensor state set against the
training groups: an exact match is the *main group*; near matches (within a
Hamming bound derived from the assumed fault count) are *probable groups*.
No main group ⇒ a correlation violation — a sensor combination never seen in
training.

The **transition check** runs only when a main group exists, because
non-fail-stop faults (notably stuck-at) often preserve the correlation
structure; it flags transitions with zero learned probability:

* case 1 — previous group → current group unseen in G2G;
* case 2 — previous group → currently activated actuator unseen in G2A;
* case 3 — previously activated actuator → current group unseen in A2G.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from .config import DiceConfig
from .groups import GroupRegistry
from .transitions import TransitionModel


@dataclass(frozen=True)
class CorrelationResult:
    """Outcome of the correlation check for one window."""

    mask: int
    main_group: Optional[int]
    #: Candidate groups other than the main group: (group_id, distance),
    #: nearest first.
    probable_groups: Tuple[Tuple[int, int], ...]

    @property
    def is_violation(self) -> bool:
        return self.main_group is None


class TransitionCase(enum.Enum):
    """Which matrix a transition violation came from (§3.3.2 cases 1-3)."""

    G2G = "g2g"
    G2A = "g2a"
    A2G = "a2g"


@dataclass(frozen=True)
class TransitionViolation:
    """A zero-probability transition observed at run time."""

    case: TransitionCase
    prev_group: Optional[int]
    cur_group: Optional[int]
    actuator: Optional[str] = None


class CorrelationChecker:
    """§3.3.1 — main/probable group search over the group registry."""

    def __init__(self, groups: GroupRegistry, config: DiceConfig) -> None:
        self.groups = groups
        self.config = config
        self.max_distance = config.candidate_distance(groups.layout.has_numeric)

    def check(self, mask: int) -> CorrelationResult:
        candidates = self.groups.candidates(mask, self.max_distance)
        main: Optional[int] = None
        probable: List[Tuple[int, int]] = []
        for group_id, distance in candidates:
            if distance == 0 and main is None:
                main = group_id
            else:
                probable.append((group_id, distance))
        return CorrelationResult(mask, main, tuple(probable))

    def nearest(self, mask: int, limit_distance: int) -> Tuple[Tuple[int, int], ...]:
        """Groups at the smallest non-zero distance ≤ *limit_distance*.

        Fallback for identification when no candidate lies within the
        standard bound: widen the search until some group is comparable.
        """
        for distance in range(self.max_distance + 1, limit_distance + 1):
            candidates = self.groups.candidates(mask, distance)
            hits = tuple((g, d) for g, d in candidates if d > 0)
            if hits:
                return hits
        return ()


class TransitionChecker:
    """§3.3.2 — zero-probability transition detection.

    When constructed with a group registry, G2G violations additionally
    require both endpoint groups to be frequent (``min_group_observations``)
    — see :class:`~repro.core.config.DiceConfig` for the rationale.
    """

    def __init__(
        self,
        transitions: TransitionModel,
        config: DiceConfig,
        groups: Optional[GroupRegistry] = None,
    ) -> None:
        self.transitions = transitions
        self.config = config
        self.groups = groups

    def _group_is_confident(self, group_id: Optional[int]) -> bool:
        if self.groups is None or group_id is None:
            return True
        return self.groups.count_of(group_id) >= self.config.min_group_observations

    def _two_step_reachable(self, prev_group: int, cur_group: int) -> bool:
        """Whether cur is reachable from prev through one intermediate group
        (window-boundary aliasing absorption; see ``DiceConfig``)."""
        if not self.config.g2g_two_step_closure:
            return False
        g2g = self.transitions.g2g
        max_self = self.config.closure_max_self_loop
        for middle in g2g.successors(prev_group):
            if middle == prev_group or middle == cur_group:
                continue
            # Only genuine hand-over groups qualify as skipped middles: they
            # dwell for about one window, so their self-loop probability is
            # low.  Long-dwell hubs (most of all the all-quiet group) would
            # otherwise make every pair reachable and blind the check.
            if g2g.probability(middle, middle) > max_self:
                continue
            if g2g.probability(middle, cur_group) > 0.0:
                return True
        return False

    def check(
        self,
        prev_group: Optional[int],
        cur_group: int,
        prev_actuators: FrozenSet[str],
        cur_actuators: FrozenSet[str],
    ) -> List[TransitionViolation]:
        """All violations for the window transition *prev* → *cur*.

        ``prev_group`` is ``None`` when the previous window had no main
        group (detection is re-anchoring after a violation); G2G and G2A
        are then skipped, A2G still applies.
        """
        violations: List[TransitionViolation] = []
        model = self.transitions
        min_obs = self.config.min_row_observations
        if prev_group is not None:
            if (
                model.g2g.row_total(prev_group) >= min_obs
                and model.g2g.probability(prev_group, cur_group) == 0.0
                and self._group_is_confident(prev_group)
                and self._group_is_confident(cur_group)
                and not self._two_step_reachable(prev_group, cur_group)
            ):
                violations.append(
                    TransitionViolation(TransitionCase.G2G, prev_group, cur_group)
                )
            for act in sorted(cur_actuators):
                if (
                    model.g2a.probability(prev_group, act) == 0.0
                    and self._group_is_confident(prev_group)
                ):
                    violations.append(
                        TransitionViolation(
                            TransitionCase.G2A, prev_group, cur_group, actuator=act
                        )
                    )
        for act in sorted(prev_actuators):
            if (
                model.a2g.row_total(act) >= min_obs
                and model.a2g.probability(act, cur_group) == 0.0
                and self._group_is_confident(cur_group)
            ):
                violations.append(
                    TransitionViolation(
                        TransitionCase.A2G, prev_group, cur_group, actuator=act
                    )
                )
        return violations
