"""DICE configuration.

All tunables named in the paper live here with their paper defaults:

* ``window_seconds`` — duration of a sensor state set (``d``).  §VI found
  one minute optimal; shorter windows split correlated sensors whose
  reactions are offset in time, longer windows merge uncorrelated sensors.
* ``num_faults`` — how many simultaneous faults the deployment guards
  against.  Drives both the candidate-group distance bound in the
  correlation check (§3.3.1) and ``numThre``, the identification
  convergence threshold (§3.4): 1 in the single-fault evaluation, 3 in the
  multi-fault experiment of Ch. VI.
* ``max_candidate_distance`` — optional override of the Hamming bound used
  to collect candidate groups.  When ``None`` it is derived from
  ``num_faults`` × the widest bit footprint of a single device (1 bit for a
  binary device, 3 for a numeric sensor), which generalises the paper's
  "groups with less than two distance" rule for the binary single-fault
  case to deployments with numeric sensors.
* ``max_identification_windows`` — safety bound on how many windows an
  identification session may consume before reporting its best guess.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: Bits contributed per device class (Eq. 3.1 vs Eqs. 3.2-3.4).
BITS_PER_BINARY_DEVICE = 1
BITS_PER_NUMERIC_SENSOR = 3

#: Names of the built-in detector backends (see ``repro.core.backend``).
#: Kept here — not derived from the backend registry — so config validation
#: never imports the backend module (which imports this one).
KNOWN_BACKENDS = ("dice", "ensemble", "markov")


@dataclass(frozen=True)
class DiceConfig:
    """Immutable bundle of DICE tunables."""

    window_seconds: float = 60.0
    num_faults: int = 1
    max_candidate_distance: Optional[int] = None
    max_identification_windows: int = 120
    #: Minimum observations before a transition row is trusted; rows observed
    #: fewer times than this never raise transition violations.  The paper's
    #: rule corresponds to 1 (any observed row counts); raising it guards
    #: against sparse-training artefacts at some recall cost.
    min_row_observations: int = 1
    #: Confidence guard for G2G transition violations: both endpoint groups
    #: must have been observed at least this many times in training before a
    #: zero-probability transition between them counts as a violation.
    #: Rare boundary groups (an activity hand-over split oddly across a
    #: window edge) otherwise dominate false positives; genuinely faulty
    #: transitions connect *common* groups (e.g. stuck-at holds a frequent
    #: state), so recall is unaffected.
    min_group_observations: int = 3
    #: Absorb window-boundary aliasing in the G2G check: a transition a→c
    #: is only a violation if c is not even reachable through one
    #: intermediate group b (a→b→c observed).  Sensor state sets "retain
    #: their value for several rounds" (§5.2), so a legal hand-over a→b→c
    #: whose short-dwell boundary group b happens to be skipped by the
    #: window grid is indistinguishable from a→c; without the closure these
    #: alias pairs dominate false positives.  The paper's zero-probability
    #: rule corresponds to False.
    g2g_two_step_closure: bool = True
    #: A group only qualifies as a skipped middle in the two-step closure if
    #: its training self-loop probability is at most this (short dwell).
    closure_max_self_loop: float = 0.4
    #: LRU entries for the mask → correlation-result memo.  Smart-home state
    #: sets "retain their value for several rounds" (§5.2), so live traffic
    #: repeats a small working set of masks heavily; a hit skips the group
    #: scan entirely.  0 disables memoisation (every check scans).
    correlation_cache_size: int = 4096
    #: Batch height at which ``distances_many`` switches from the per-word
    #: XOR + popcount kernel to the float32 bit-plane GEMM.  ``None`` keeps
    #: the built-in heuristic (64 rows); 0 forces GEMM on every batch, a
    #: very large value forces the XOR path.  Kernel choice never changes
    #: results — only which arithmetic computes the same distances.
    gemm_min_rows: Optional[int] = None
    #: Which detector backend the streaming runtime hosts.  ``dice`` is the
    #: paper's pipeline; see ``repro.core.backend`` for the others.
    backend: str = "dice"

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.num_faults < 1:
            raise ValueError("num_faults must be at least 1")
        if self.max_candidate_distance is not None and self.max_candidate_distance < 1:
            raise ValueError("max_candidate_distance must be at least 1")
        if self.max_identification_windows < 1:
            raise ValueError("max_identification_windows must be at least 1")
        if self.min_row_observations < 1:
            raise ValueError("min_row_observations must be at least 1")
        if self.min_group_observations < 1:
            raise ValueError("min_group_observations must be at least 1")
        if self.correlation_cache_size < 0:
            raise ValueError("correlation_cache_size must be non-negative")
        if self.gemm_min_rows is not None and self.gemm_min_rows < 0:
            raise ValueError("gemm_min_rows must be non-negative")
        if self.backend not in KNOWN_BACKENDS:
            valid = ", ".join(KNOWN_BACKENDS)
            raise ValueError(
                f"unknown backend {self.backend!r}; valid backends: {valid}"
            )

    @property
    def num_thre(self) -> int:
        """``numThre`` — identification stops once the intersection of
        probable faulty devices is at most this size (§3.4)."""
        return self.num_faults

    def candidate_distance(self, has_numeric_sensors: bool) -> int:
        """Hamming bound for candidate groups in the correlation check.

        A single faulty binary device flips at most one bit; a faulty
        numeric sensor can flip up to its three derived bits.
        """
        if self.max_candidate_distance is not None:
            return self.max_candidate_distance
        per_device = (
            BITS_PER_NUMERIC_SENSOR if has_numeric_sensors else BITS_PER_BINARY_DEVICE
        )
        return self.num_faults * per_device

    def with_(self, **changes) -> "DiceConfig":
        """A copy with *changes* applied (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)


DEFAULT_CONFIG = DiceConfig()
