"""Content-addressed shared detector contexts (the fleet capacity layer).

A fitted detector's trained state — the group registry with its packed
context bitsets, the three transition matrices, the encoder thresholds
and the device weights — is *identical* across homes that fit the same
floor plan / dataset / config, which is the common case in a large fleet
(``build_fleet_homes`` stamps out a handful of archetypes).  Replicating
that state per home is what makes a million-home fleet not fit in memory.

This module makes the trained state **content-addressed**:

* :func:`context_hash` — a blake2b digest over a canonical serialization
  of everything the real-time phase reads from a fitted model.  Two
  detectors hash equal iff their detection behaviour is identical.
* :class:`SharedContextStore` — interns fitted detectors by hash: the
  first detector with a given hash donates its model and checkers as the
  canonical :class:`SharedContext` (its registry is frozen); later
  detectors with the same hash drop their private copies and point at
  the shared one, including the correlation memo, which is keyed only on
  (mask, group set, config) and is therefore home-independent.
* **Copy-on-write** — sharing is broken the moment a home mutates: the
  first :class:`~repro.streaming.refresh.ContextRefresher` apply calls
  :meth:`DiceDetector.fork_context`, which copies the registry and
  matrices onto a private unfrozen context.  A frozen registry raises on
  ``add``, so a missed fork is a loud error, never silent corruption.
* :func:`trained_context_nbytes` — a deterministic estimate of the
  trained state's resident bytes, used by the capacity bench and
  ``repro fleet --report-memory`` (RSS is reported separately as an
  informational number; the estimator is what CI budgets gate on,
  because it cannot flake with allocator behaviour).
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .checks import CorrelationChecker, TransitionChecker
from .detector import DiceDetector, DiceModel
from .transitions import TransitionMatrix


def _hash_config(h, config) -> None:
    h.update(repr(dataclasses.astuple(config)).encode())


def _hash_devices(h, registry) -> None:
    for device in registry:
        h.update(
            f"{device.device_id}\x00{device.kind.value}\x00"
            f"{device.sensor_type.value}\x00{device.room}\x01".encode()
        )


def _hash_encoder(h, encoder) -> None:
    h.update(struct.pack("<d", encoder.window_seconds))
    thresholds = encoder._value_thresholds
    if thresholds is None:
        h.update(b"unfitted")
    else:
        h.update(np.ascontiguousarray(thresholds, dtype=np.float64).tobytes())


def _hash_groups(h, groups) -> None:
    for group_id, mask in enumerate(groups.masks):
        nbytes = max(1, (mask.bit_length() + 7) // 8)
        h.update(struct.pack("<qq", groups.count_of(group_id), nbytes))
        h.update(mask.to_bytes(nbytes, "little"))


def _hash_matrix(h, name: str, matrix: TransitionMatrix) -> None:
    # Rows/cols are ints (group ids) or strings (actuator ids); sort by
    # repr so mixed key types cannot break ordering.
    canonical = sorted(
        (
            (repr(row), sorted((repr(col), n) for col, n in cols.items()))
            for row, cols in matrix._counts.items()
        )
    )
    h.update(name.encode())
    h.update(repr(canonical).encode())


def _hash_weights(h, weights) -> None:
    if weights is None:
        h.update(b"no-weights")
        return
    h.update(
        repr(
            (
                sorted(weights.criticality.items()),
                sorted(weights.failure.items()),
                weights.alarm_threshold,
            )
        ).encode()
    )


def context_hash(detector: DiceDetector) -> str:
    """Blake2b digest of everything detection reads from the fitted state.

    Covers the config, the device census, the encoder's learned
    thresholds, every group mask with its observation count, all three
    transition matrices, and the device weights — so equal hashes imply
    byte-identical detection behaviour, and any divergence (a refresh, a
    different fit) changes the hash.
    """
    model = detector.model
    if model is None:
        raise ValueError("detector must be fitted before hashing its context")
    h = hashlib.blake2b(digest_size=16)
    _hash_config(h, detector.config)
    _hash_devices(h, detector.registry)
    _hash_encoder(h, model.encoder)
    _hash_groups(h, model.groups)
    _hash_matrix(h, "g2g", model.transitions.g2g)
    _hash_matrix(h, "g2a", model.transitions.g2a)
    _hash_matrix(h, "a2g", model.transitions.a2g)
    _hash_weights(h, detector.weights)
    h.update(struct.pack("<q", model.training_windows))
    return h.hexdigest()


def _matrix_nbytes(matrix: TransitionMatrix) -> int:
    total = sys.getsizeof(matrix._counts) + sys.getsizeof(matrix._row_totals)
    for cols in matrix._counts.values():
        total += sys.getsizeof(cols)
    return total


def trained_context_nbytes(detector: DiceDetector) -> int:
    """Deterministic resident-byte estimate of one fitted trained state.

    Sums the numpy buffers exactly (``nbytes``) and the Python container
    overheads via ``sys.getsizeof`` — stable across runs, unlike RSS, so
    the CI capacity budget can gate on it.  Interned ints/strings shared
    between contexts are deliberately *not* chased: the estimate is the
    marginal cost of one more unshared context.
    """
    model = detector.model
    if model is None:
        raise ValueError("detector must be fitted")
    groups = model.groups
    bitsets = groups._bitsets
    total = bitsets._buf.nbytes
    total += sys.getsizeof(bitsets._masks)
    total += sum(sys.getsizeof(m) for m in bitsets._masks)
    if bitsets._planes is not None:
        total += bitsets._planes[1].nbytes + bitsets._planes[2].nbytes
    total += sys.getsizeof(groups._by_mask)
    total += sys.getsizeof(groups._counts)
    for matrix in (model.transitions.g2g, model.transitions.g2a,
                   model.transitions.a2g):
        total += _matrix_nbytes(matrix)
    thresholds = model.encoder._value_thresholds
    if thresholds is not None:
        total += thresholds.nbytes
    checker = detector._correlation_checker
    if checker is not None:
        total += sys.getsizeof(checker._cache)
    return total


@dataclass
class SharedContext:
    """One interned trained context plus the checkers built over it.

    All holders reference the *same* model, checkers and correlation
    memo; the memo is safe to share because its entries depend only on
    (mask, group set, config), never on which home asked.
    """

    hash: str
    model: DiceModel
    correlation_checker: CorrelationChecker
    transition_checker: TransitionChecker
    identifier: object
    #: Detectors currently pointing at this context.
    holders: int = 0
    #: The holder that publishes the shared delta counters (evictions,
    #: kernel calls) into telemetry — exactly one, to avoid double counting
    #: in merged fleet snapshots.  ``None`` after that holder forks.
    owner: Optional[DiceDetector] = field(default=None, repr=False)


class SharedContextStore:
    """Interns fitted detectors by :func:`context_hash`.

    One store per fleet gateway; :meth:`intern` either adopts the
    detector onto an existing context (dropping its private trained
    state) or registers the detector's own state as the new canonical
    context and freezes its registry.
    """

    def __init__(self) -> None:
        self._by_hash: Dict[str, SharedContext] = {}
        self.intern_hits = 0
        self.intern_misses = 0

    def __len__(self) -> int:
        return len(self._by_hash)

    def get(self, key: str) -> Optional[SharedContext]:
        return self._by_hash.get(key)

    def intern(
        self, detector: DiceDetector, key: Optional[str] = None
    ) -> SharedContext:
        """Point *detector* at the canonical context for its trained state.

        *key* short-circuits hashing when the caller already computed the
        detector's :func:`context_hash` (e.g. fleet restore validation).
        """
        if key is None:
            key = detector._interned_hash or context_hash(detector)
        shared = self._by_hash.get(key)
        if shared is None:
            self.intern_misses += 1
            shared = SharedContext(
                key,
                detector.model,
                detector._correlation_checker,
                detector._transition_checker,
                detector._identifier,
                owner=detector,
            )
            shared.model.groups.freeze()
            self._by_hash[key] = shared
        else:
            self.intern_hits += 1
        detector.adopt_context(shared)
        return shared

    def stats(self) -> dict:
        """Interning accounting for memory reports and the capacity bench."""
        holders = sum(ctx.holders for ctx in self._by_hash.values())
        return {
            "contexts": len(self._by_hash),
            "holders": holders,
            "intern_hits": self.intern_hits,
            "intern_misses": self.intern_misses,
            "dedup_ratio": (holders / len(self._by_hash)) if self._by_hash else 0.0,
        }
