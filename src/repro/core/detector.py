"""The DICE detector: precomputation + real-time phases (Fig. 3.2).

:class:`DiceDetector` is the library's main entry point:

>>> detector = DiceDetector(registry).fit(training_trace)
>>> report = detector.process(live_trace)
>>> report.first_identification.devices
frozenset({'kitchen_motion'})

``fit`` runs the precomputation phase — state-set encoding, group
extraction and transition extraction — on fault-free data.  ``process``
runs the real-time phase over a segment: correlation check, transition
check, and (on a violation) an identification session that narrows the
probable faulty devices window by window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from .. import telemetry
from ..model import DeviceRegistry, Trace
from .checks import (
    CorrelationChecker,
    CorrelationResult,
    TransitionCase,
    TransitionChecker,
)
from .config import DEFAULT_CONFIG, DiceConfig
from .encoding import StateSetEncoder, WindowedTrace
from .groups import GroupRegistry
from .identification import (
    Identifier,
    IdentificationSession,
    ProbableFaultSet,
)
from .transitions import TransitionModel
from .weights import DeviceWeights

#: Detection-check labels used throughout evaluation (Fig. 5.4).
CORRELATION_CHECK = "correlation"
TRANSITION_CHECK = "transition"

#: Real-time stage labels, in pipeline order.
STAGES = ("encoding", "correlation", "transition", "identification")

#: Telemetry metric families the pipeline reports into.  The counters are
#: the source of truth :class:`StageTimings` is a view over.
STAGE_SECONDS_TOTAL = "dice_stage_seconds_total"
STAGE_SECONDS_HISTOGRAM = "dice_stage_seconds"
SEGMENT_STAGE_SECONDS = "dice_segment_stage_seconds"
WINDOWS_TOTAL = "dice_windows_total"
CACHE_HITS_TOTAL = "dice_correlation_cache_hits_total"
CACHE_MISSES_TOTAL = "dice_correlation_cache_misses_total"


@dataclass
class StageTimings:
    """Accumulated wall-clock cost per real-time stage (Fig. 5.3).

    Also carries the correlation-memo hit/miss counters, so evaluation
    results expose how much of the dominant scan cost the cache absorbed.

    This is a *view* over the telemetry counters: :meth:`publish` adds an
    accumulation into a :class:`~repro.telemetry.MetricsRegistry` and
    :meth:`from_snapshot` reads one back, so the evaluation runner, the
    bench harness and ``repro metrics`` all report the same numbers — and
    process-parallel workers merge into the same registry at join.
    """

    encoding_s: float = 0.0
    correlation_s: float = 0.0
    transition_s: float = 0.0
    identification_s: float = 0.0
    windows: int = 0
    correlation_cache_hits: int = 0
    correlation_cache_misses: int = 0

    def per_window(self) -> Optional[dict]:
        """Average seconds per processed window for each stage.

        ``None`` when no window was processed — zero windows means nothing
        was measured, not that the stages were instantaneous.
        """
        n = self.windows
        if n == 0:
            return None
        return {
            "encoding": self.encoding_s / n,
            "correlation_check": self.correlation_s / n,
            "transition_check": self.transition_s / n,
            "identification": self.identification_s / n,
        }

    @property
    def correlation_cache_hit_rate(self) -> float:
        total = self.correlation_cache_hits + self.correlation_cache_misses
        return self.correlation_cache_hits / total if total else 0.0

    def merge(self, other: "StageTimings") -> None:
        self.encoding_s += other.encoding_s
        self.correlation_s += other.correlation_s
        self.transition_s += other.transition_s
        self.identification_s += other.identification_s
        self.windows += other.windows
        self.correlation_cache_hits += other.correlation_cache_hits
        self.correlation_cache_misses += other.correlation_cache_misses

    def _stage_seconds(self) -> Tuple[Tuple[str, float], ...]:
        return (
            ("encoding", self.encoding_s),
            ("correlation", self.correlation_s),
            ("transition", self.transition_s),
            ("identification", self.identification_s),
        )

    def publish(self, metrics: "telemetry.MetricsRegistry") -> None:
        """Add this accumulation into the registry's stage counters."""
        if not metrics.enabled:
            return
        totals = metrics.counter(
            STAGE_SECONDS_TOTAL,
            "Cumulative wall-clock seconds per real-time stage",
            labelnames=("stage",),
        )
        per_segment = metrics.histogram(
            SEGMENT_STAGE_SECONDS,
            "Wall-clock seconds per stage for one processed segment",
            labelnames=("stage",),
        )
        for stage, seconds in self._stage_seconds():
            totals.labels(stage=stage).inc(seconds)
            per_segment.labels(stage=stage).observe(seconds)
        metrics.counter(WINDOWS_TOTAL, "Windows run through the real-time phase").inc(
            self.windows
        )
        metrics.counter(CACHE_HITS_TOTAL, "Correlation-memo hits").inc(
            self.correlation_cache_hits
        )
        metrics.counter(CACHE_MISSES_TOTAL, "Correlation-memo misses").inc(
            self.correlation_cache_misses
        )

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "StageTimings":
        """Rebuild stage totals from a metrics snapshot (the inverse view)."""
        metrics = snapshot.get("metrics", {})

        def _counter(name: str, labels: Optional[dict] = None) -> float:
            entry = metrics.get(name)
            if entry is None:
                return 0.0
            total = 0.0
            for row in entry.get("series", []):
                if labels is None or row.get("labels", {}) == labels:
                    total += row.get("value", 0.0)
            return total

        return cls(
            encoding_s=_counter(STAGE_SECONDS_TOTAL, {"stage": "encoding"}),
            correlation_s=_counter(STAGE_SECONDS_TOTAL, {"stage": "correlation"}),
            transition_s=_counter(STAGE_SECONDS_TOTAL, {"stage": "transition"}),
            identification_s=_counter(STAGE_SECONDS_TOTAL, {"stage": "identification"}),
            windows=int(_counter(WINDOWS_TOTAL)),
            correlation_cache_hits=int(_counter(CACHE_HITS_TOTAL)),
            correlation_cache_misses=int(_counter(CACHE_MISSES_TOTAL)),
        )


@dataclass(frozen=True)
class DetectionRecord:
    """One detected violation."""

    window: int
    time: float  # absolute seconds; the end of the violating window
    check: str  # CORRELATION_CHECK or TRANSITION_CHECK
    cases: Tuple[TransitionCase, ...] = ()


@dataclass(frozen=True)
class IdentificationRecord:
    """One concluded identification session."""

    window: int
    time: float
    devices: FrozenSet[str]
    windows_used: int
    converged: bool
    weighted_early: bool = False
    triggered_by: str = CORRELATION_CHECK


@dataclass
class SegmentReport:
    """Everything DICE observed while processing one real-time segment."""

    n_windows: int
    window_seconds: float
    start: float
    detections: List[DetectionRecord] = field(default_factory=list)
    identifications: List[IdentificationRecord] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    @property
    def first_detection(self) -> Optional[DetectionRecord]:
        return self.detections[0] if self.detections else None

    @property
    def first_identification(self) -> Optional[IdentificationRecord]:
        return self.identifications[0] if self.identifications else None

    def identified_devices(self) -> FrozenSet[str]:
        """Union of every session's verdict."""
        devices: set = set()
        for record in self.identifications:
            devices |= record.devices
        return frozenset(devices)


@dataclass
class DiceModel:
    """The artefacts of the precomputation phase."""

    encoder: StateSetEncoder
    groups: GroupRegistry
    transitions: TransitionModel
    training_windows: int

    @property
    def correlation_degree(self) -> float:
        return self.groups.correlation_degree()


class DiceDetector:
    """Detection & Identification with Context Extraction."""

    def __init__(
        self,
        registry: DeviceRegistry,
        config: DiceConfig = DEFAULT_CONFIG,
        weights: Optional[DeviceWeights] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        self.registry = registry
        self.config = config
        self.weights = weights
        #: Telemetry sink; ``None`` selects the process-global registry,
        #: ``telemetry.NULL_REGISTRY`` turns recording off entirely.
        self.metrics = telemetry.resolve(metrics)
        self.tracer = telemetry.Tracer(self.metrics)
        self.model: Optional[DiceModel] = None
        self._correlation_checker: Optional[CorrelationChecker] = None
        self._transition_checker: Optional[TransitionChecker] = None
        self._identifier: Optional[Identifier] = None
        #: The interned :class:`~repro.core.context.SharedContext` this
        #: detector references, if any (``None`` = privately owned state).
        self._shared = None
        #: Content hash stamped at interning; cleared on fork.
        self._interned_hash: Optional[str] = None
        #: Baselines for the delta-published telemetry counters.
        self._telemetry_last = {"evictions": 0, "gemm": 0, "xor": 0}

    # ------------------------------------------------------------------ #
    # Precomputation phase
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self.model is not None

    def fit(self, trace: Trace) -> "DiceDetector":
        """Run the precomputation phase on fault-free training data."""
        encoder = StateSetEncoder(self.registry, self.config.window_seconds)
        encoder.fit(trace)
        windowed = encoder.encode(trace)
        return self.fit_windows(encoder, windowed)

    def fit_windows(
        self, encoder: StateSetEncoder, windowed: WindowedTrace
    ) -> "DiceDetector":
        """Precomputation from an already-encoded training trace."""
        groups, sequence = GroupRegistry.from_windows(windowed)
        transitions = TransitionModel.extract(
            sequence, windowed.actuator_activations
        )
        self._install_model(
            DiceModel(encoder, groups, transitions, len(windowed))
        )
        self._register_telemetry()
        return self

    @classmethod
    def from_model(
        cls,
        registry: DeviceRegistry,
        model: DiceModel,
        config: DiceConfig = DEFAULT_CONFIG,
        weights: Optional[DeviceWeights] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> "DiceDetector":
        """A fitted detector wrapped around an existing precomputed model.

        Used wherever the fit artefacts come from elsewhere — the capacity
        bench synthesises one archetype model and stamps out detectors per
        home without re-running the precomputation phase."""
        detector = cls(registry, config, weights, metrics=metrics)
        detector._install_model(model)
        detector._register_telemetry()
        return detector

    def _install_model(self, model: DiceModel) -> None:
        """Build the real-time checkers over *model* (privately owned)."""
        self.model = model
        self._correlation_checker = CorrelationChecker(model.groups, self.config)
        self._transition_checker = TransitionChecker(
            model.transitions, self.config, model.groups
        )
        self._identifier = Identifier(
            model.groups, model.transitions, self._correlation_checker, self.config
        )
        self._shared = None
        self._interned_hash = None
        self._telemetry_last = {"evictions": 0, "gemm": 0, "xor": 0}

    # ------------------------------------------------------------------ #
    # Shared contexts (copy-on-write)
    # ------------------------------------------------------------------ #

    def adopt_context(self, shared) -> None:
        """Reference an interned :class:`~repro.core.context.SharedContext`.

        Drops this detector's private model/checkers in favour of the
        shared ones (including the correlation memo, which is keyed only
        on mask + group set + config, so results are home-independent).
        Called by :meth:`SharedContextStore.intern`."""
        self._require_fitted()
        if self._shared is not None:
            self._shared.holders -= 1
            if self._shared.owner is self:
                self._shared.owner = None
        self.model = shared.model
        self._correlation_checker = shared.correlation_checker
        self._transition_checker = shared.transition_checker
        self._identifier = shared.identifier
        self._shared = shared
        self._interned_hash = shared.hash
        self._telemetry_last = {"evictions": 0, "gemm": 0, "xor": 0}
        shared.holders += 1

    def fork_context(self) -> bool:
        """Copy-on-write: take a private copy of a shared trained context.

        No-op (returns ``False``) when the state is already private.  The
        copy reproduces group ids, counts and transition counts exactly,
        so a forked home's subsequent mutations (context refresh) behave
        byte-identically to a home that never shared.  The other holders
        keep the canonical objects untouched."""
        shared = self._shared
        if shared is None:
            return False
        model = self._require_fitted()
        groups = model.groups.copy()
        transitions = model.transitions.copy()
        self._install_model(
            DiceModel(model.encoder, groups, transitions, model.training_windows)
        )
        shared.holders -= 1
        if shared.owner is self:
            shared.owner = None
        return True

    def _register_telemetry(self) -> None:
        """Expose memo occupancy/evictions and kernel choices as metrics.

        The hot paths keep plain-int counters (zero overhead); a snapshot
        collector publishes their deltas, so the registry only pays at
        export time.
        """
        metrics = self.metrics
        if not metrics.enabled:
            return
        # Created eagerly so every family is present in snapshots even
        # before the first window is processed.
        metrics.counter(CACHE_HITS_TOTAL, "Correlation-memo hits")
        metrics.counter(CACHE_MISSES_TOTAL, "Correlation-memo misses")
        cache_size = metrics.gauge(
            "dice_correlation_cache_size", "Entries currently in the correlation memo"
        )
        evictions = metrics.counter(
            "dice_correlation_cache_evictions_total",
            "LRU evictions from the correlation memo",
        )
        kernels = metrics.counter(
            "dice_bitset_kernel_calls_total",
            "distances_many kernel selections (float32 GEMM vs per-word XOR)",
            labelnames=("kernel",),
        )
        groups_gauge = metrics.gauge(
            "dice_groups", "Groups in the fitted registry"
        )

        def collect() -> None:
            # Read the *current* checker/groups through self: a context
            # adoption or copy-on-write fork swaps them out from under a
            # collector registered at fit time.
            checker = self._correlation_checker
            if checker is None or self.model is None:
                return
            groups = self.model.groups
            cache_size.set(checker.cache_info()["size"])
            groups_gauge.set(len(groups))
            shared = self._shared
            if shared is not None and shared.owner is not self:
                # The shared eviction/kernel tallies are published by
                # exactly one holder (the context owner); every other
                # holder repeating the same deltas would double-count
                # them in merged fleet snapshots.
                return
            last = self._telemetry_last
            evictions.inc(checker.cache_evictions - last["evictions"])
            last["evictions"] = checker.cache_evictions
            counts = groups.kernel_call_counts()
            for kernel in ("gemm", "xor"):
                kernels.labels(kernel=kernel).inc(counts[kernel] - last[kernel])
                last[kernel] = counts[kernel]

        metrics.register_collector("detector", collect)

    def _require_fitted(self) -> DiceModel:
        if self.model is None:
            raise RuntimeError("detector not fitted; call fit() first")
        return self.model

    def context_summary(self) -> dict:
        """Deterministic one-line summary of the fitted context.

        The detection-side context an alert's provenance record stamps:
        how many groups the check ran against, the candidate Hamming bound
        in force, and the training support behind them.  Reads the
        *current* model, so a context refresh or copy-on-write fork is
        reflected immediately.
        """
        model = self._require_fitted()
        return {
            "groups": len(model.groups),
            "max_distance": self._correlation_checker.max_distance,
            "training_windows": model.training_windows,
        }

    # ------------------------------------------------------------------ #
    # Real-time phase
    # ------------------------------------------------------------------ #

    def process(
        self, trace: Trace, batch: bool = True, publish: bool = True
    ) -> SegmentReport:
        """Run the real-time phase over a segment trace.

        ``batch=True`` (default) resolves every window's correlation check
        through one vectorised distance-matrix pass; ``batch=False`` keeps
        the window-at-a-time scalar path.  Both produce identical reports.

        ``publish=False`` suppresses reporting the segment's
        :class:`StageTimings` into the telemetry registry — the evaluation
        runner uses it so parallel-worker timings are published exactly
        once, at join, in the parent process.
        """
        model = self._require_fitted()
        with self.tracer.trace("process"):
            with self.tracer.trace("encoding"):
                t0 = time.perf_counter()
                windowed = model.encoder.encode(trace)
                encoding_s = time.perf_counter() - t0
            report = self._process_windows_impl(windowed, batch)
            report.timings.encoding_s += encoding_s
        if publish:
            report.timings.publish(self.metrics)
        return report

    def process_windows(
        self, windowed: WindowedTrace, batch: bool = True, publish: bool = True
    ) -> SegmentReport:
        """Real-time phase over pre-encoded windows."""
        self._require_fitted()
        with self.tracer.trace("process_windows"):
            report = self._process_windows_impl(windowed, batch)
        if publish:
            report.timings.publish(self.metrics)
        return report

    def _process_windows_impl(
        self, windowed: WindowedTrace, batch: bool = True
    ) -> SegmentReport:
        report = SegmentReport(
            n_windows=len(windowed),
            window_seconds=windowed.window_seconds,
            start=windowed.start,
        )
        timings = report.timings
        corr_checker = self._correlation_checker
        trans_checker = self._transition_checker
        identifier = self._identifier
        cache_hits0 = corr_checker.cache_hits
        cache_misses0 = corr_checker.cache_misses

        # Batch path: one (W, G) matrix pass answers the correlation check
        # for the whole segment; the per-window loop below then consumes
        # the precomputed results in order.
        corr_results: Optional[List[CorrelationResult]] = None
        if batch and len(windowed):
            with self.tracer.trace("correlation"):
                t0 = time.perf_counter()
                corr_results = corr_checker.check_many(windowed.masks)
                timings.correlation_s += time.perf_counter() - t0

        prev_group: Optional[int] = None
        # The last window that matched a main group — identification prunes
        # probable groups by their transition probability from this anchor,
        # which stays valid across a run of violating windows.
        anchor_group: Optional[int] = None
        prev_acts: FrozenSet[str] = frozenset()
        session: Optional[IdentificationSession] = None
        session_trigger = CORRELATION_CHECK

        for i, (mask, acts) in enumerate(windowed):
            timings.windows += 1
            window_end = windowed.window_start(i) + windowed.window_seconds

            if corr_results is not None:
                corr = corr_results[i]
            else:
                t0 = time.perf_counter()
                corr = corr_checker.check(mask)
                timings.correlation_s += time.perf_counter() - t0

            violations = ()
            if not corr.is_violation:
                t0 = time.perf_counter()
                violations = trans_checker.check(
                    prev_group, corr.main_group, prev_acts, acts
                )
                timings.transition_s += time.perf_counter() - t0

            if session is None:
                if corr.is_violation:
                    report.detections.append(
                        DetectionRecord(i, window_end, CORRELATION_CHECK)
                    )
                    t0 = time.perf_counter()
                    probable = identifier.from_correlation_violation(
                        corr, anchor_group
                    )
                    session = IdentificationSession(
                        self.config, probable, self.weights
                    )
                    timings.identification_s += time.perf_counter() - t0
                    session_trigger = CORRELATION_CHECK
                    session_start_window = i
                elif violations:
                    report.detections.append(
                        DetectionRecord(
                            i,
                            window_end,
                            TRANSITION_CHECK,
                            tuple(v.case for v in violations),
                        )
                    )
                    t0 = time.perf_counter()
                    probable = identifier.from_transition_violations(
                        violations, mask, prev_group
                    )
                    session = IdentificationSession(
                        self.config, probable, self.weights
                    )
                    timings.identification_s += time.perf_counter() - t0
                    session_trigger = TRANSITION_CHECK
                    session_start_window = i
            else:
                # §3.4: while identifying, skip fresh detections and feed
                # the session this window's probable-faulty evidence.
                t0 = time.perf_counter()
                if corr.is_violation:
                    probable = identifier.from_correlation_violation(
                        corr, anchor_group
                    )
                elif violations:
                    probable = identifier.from_transition_violations(
                        violations, mask, prev_group
                    )
                else:
                    probable = ProbableFaultSet(frozenset())
                session.update(probable)
                timings.identification_s += time.perf_counter() - t0

            if session is not None and session.is_done:
                outcome = session.outcome
                report.identifications.append(
                    IdentificationRecord(
                        i,
                        window_end,
                        outcome.devices,
                        outcome.windows_used,
                        outcome.converged,
                        outcome.weighted_early,
                        triggered_by=session_trigger,
                    )
                )
                session = None

            prev_group = corr.main_group
            if corr.main_group is not None:
                anchor_group = corr.main_group
            prev_acts = acts

        timings.correlation_cache_hits += corr_checker.cache_hits - cache_hits0
        timings.correlation_cache_misses += (
            corr_checker.cache_misses - cache_misses0
        )
        if session is not None:
            # Segment ended mid-session: report the best current guess.
            last_end = windowed.window_start(len(windowed) - 1) + (
                windowed.window_seconds if len(windowed) else 0.0
            )
            report.identifications.append(
                IdentificationRecord(
                    max(0, len(windowed) - 1),
                    last_end,
                    session.intersection,
                    session.windows_used,
                    converged=False,
                    triggered_by=session_trigger,
                )
            )
        return report
