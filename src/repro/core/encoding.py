"""Sensor-state-set construction (§3.2.1, Eqs. 3.1-3.4).

Raw sensor data is cut into fixed-duration windows (default one minute) and
each window is summarised as a *sensor state set* — a bit vector over the
deployment's sensors:

* a **binary** sensor contributes one bit: 1 iff it activated at least once
  in the window (Eq. 3.1, a bitwise OR over its readings);
* a **numeric** sensor contributes three bits: sample skewness positive
  (Eq. 3.2), rising trend across the window (Eq. 3.3), and window mean above
  the sensor's training-period mean ``valueThre`` (Eq. 3.4).

Actuators do not appear in the state set; their activations are tracked per
window separately to feed the G2A/A2G transition matrices.

The encoder is fully vectorised: one stable lexsort by (device, window)
followed by segmented reductions produces every bit for a multi-million
event trace in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..model import DeviceRegistry, Trace
from .bitset import words_needed

#: Roles of the three numeric-sensor bits, in layout order.
NUMERIC_ROLES = ("skew", "trend", "mean")
BINARY_ROLE = "active"


@dataclass(frozen=True)
class BitSpec:
    """One bit of the state set: which device and which derived feature."""

    bit: int
    device_id: str
    role: str


class BitLayout:
    """Mapping between sensors and state-set bit positions.

    Binary sensors are laid out first (one bit each, registry order), then
    numeric sensors (three consecutive bits each: skew, trend, mean).
    """

    def __init__(self, registry: DeviceRegistry) -> None:
        self.registry = registry
        self._specs: List[BitSpec] = []
        self._device_bits: Dict[str, Tuple[int, ...]] = {}
        bit = 0
        for device in registry.binary_sensors():
            self._specs.append(BitSpec(bit, device.device_id, BINARY_ROLE))
            self._device_bits[device.device_id] = (bit,)
            bit += 1
        for device in registry.numeric_sensors():
            bits = []
            for role in NUMERIC_ROLES:
                self._specs.append(BitSpec(bit, device.device_id, role))
                bits.append(bit)
                bit += 1
            self._device_bits[device.device_id] = tuple(bits)
        self.num_bits = bit
        self.num_words = words_needed(self.num_bits)

    def __len__(self) -> int:
        return self.num_bits

    @property
    def specs(self) -> List[BitSpec]:
        return list(self._specs)

    def spec(self, bit: int) -> BitSpec:
        return self._specs[bit]

    def device_of_bit(self, bit: int) -> str:
        """The sensor a bit belongs to — the identification step's map from
        differing bits back to probable faulty devices (§3.4)."""
        return self._specs[bit].device_id

    def bits_of_device(self, device_id: str) -> Tuple[int, ...]:
        return self._device_bits[device_id]

    def devices_of_mask(self, mask: int) -> List[str]:
        """Distinct sensors owning the set bits of *mask*, layout order."""
        seen: Dict[str, None] = {}
        bit = 0
        while mask:
            if mask & 1:
                seen.setdefault(self._specs[bit].device_id, None)
            mask >>= 1
            bit += 1
        return list(seen)

    @property
    def has_numeric(self) -> bool:
        return any(len(bits) > 1 for bits in self._device_bits.values())

    def describe(self, mask: int) -> str:
        """Human-readable rendering of a state set, for reports/debugging."""
        parts = []
        for spec in self._specs:
            if mask >> spec.bit & 1:
                suffix = "" if spec.role == BINARY_ROLE else f".{spec.role}"
                parts.append(f"{spec.device_id}{suffix}")
        return "{" + ", ".join(parts) + "}"


class WindowedTrace:
    """The per-window view DICE consumes: one state-set mask per window plus
    the set of actuators activated in that window."""

    def __init__(
        self,
        layout: BitLayout,
        window_seconds: float,
        start: float,
        masks: Sequence[int],
        actuator_activations: Sequence[FrozenSet[str]],
    ) -> None:
        if len(masks) != len(actuator_activations):
            raise ValueError("masks and actuator activations must align")
        self.layout = layout
        self.window_seconds = float(window_seconds)
        self.start = float(start)
        self.masks = list(masks)
        self.actuator_activations = list(actuator_activations)

    def __len__(self) -> int:
        return len(self.masks)

    def window_start(self, index: int) -> float:
        return self.start + index * self.window_seconds

    def __iter__(self) -> Iterator[Tuple[int, FrozenSet[str]]]:
        return iter(zip(self.masks, self.actuator_activations))


class StateSetEncoder:
    """Turns traces into :class:`WindowedTrace`.

    ``fit`` learns each numeric sensor's ``valueThre`` (its mean value over
    the precomputation data, §3.2.1); ``encode`` applies Eqs. 3.1-3.4 per
    window.
    """

    def __init__(self, registry: DeviceRegistry, window_seconds: float = 60.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.registry = registry
        self.layout = BitLayout(registry)
        self.window_seconds = float(window_seconds)
        self._value_thresholds: Optional[np.ndarray] = None  # per device index

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._value_thresholds is not None

    def fit(self, trace: Trace) -> "StateSetEncoder":
        """Learn per-numeric-sensor ``valueThre`` from fault-free data."""
        if trace.registry is not self.registry:
            raise ValueError("trace registry differs from encoder registry")
        n = len(self.registry)
        sums = np.zeros(n, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        np.add.at(sums, trace.device_indices, trace.values)
        np.add.at(counts, trace.device_indices, 1)
        thresholds = np.zeros(n, dtype=np.float64)
        nonzero = counts > 0
        thresholds[nonzero] = sums[nonzero] / counts[nonzero]
        self._value_thresholds = thresholds
        return self

    def value_threshold(self, device_id: str) -> float:
        """The learned ``valueThre`` for one sensor."""
        self._require_fitted()
        return float(self._value_thresholds[self.registry.index_of(device_id)])

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("encoder not fitted; call fit() on training data")

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def num_windows(self, trace: Trace) -> int:
        span = trace.duration
        return max(0, int(np.ceil(span / self.window_seconds - 1e-9)))

    def encode(self, trace: Trace) -> WindowedTrace:
        """Encode every window of *trace* (windows are ``[t, t+d)``)."""
        self._require_fitted()
        if trace.registry is not self.registry:
            raise ValueError("trace registry differs from encoder registry")
        n_windows = self.num_windows(trace)
        layout = self.layout
        words = np.zeros((n_windows, layout.num_words), dtype=np.uint64)
        if n_windows and len(trace):
            window_of = np.floor(
                (trace.timestamps - trace.start) / self.window_seconds
            ).astype(np.int64)
            np.clip(window_of, 0, n_windows - 1, out=window_of)
            self._encode_binary(trace, window_of, words)
            self._encode_numeric(trace, window_of, words)
        masks = _words_to_masks(words)
        activations = self._actuator_activations(trace, n_windows)
        return WindowedTrace(
            layout, self.window_seconds, trace.start, masks, activations
        )

    # -- binary sensors -------------------------------------------------- #

    def _encode_binary(
        self, trace: Trace, window_of: np.ndarray, words: np.ndarray
    ) -> None:
        for device in self.registry.binary_sensors():
            dev_idx = self.registry.index_of(device.device_id)
            mask = (trace.device_indices == dev_idx) & (trace.values > 0)
            if not mask.any():
                continue
            bit = self.layout.bits_of_device(device.device_id)[0]
            _set_bit(words, window_of[mask], bit)

    # -- numeric sensors -------------------------------------------------- #

    def _encode_numeric(
        self, trace: Trace, window_of: np.ndarray, words: np.ndarray
    ) -> None:
        numeric = self.registry.numeric_sensors()
        if not numeric:
            return
        numeric_indices = np.array(
            [self.registry.index_of(d.device_id) for d in numeric], dtype=np.int64
        )
        is_numeric = np.zeros(len(self.registry), dtype=bool)
        is_numeric[numeric_indices] = True
        sel = is_numeric[trace.device_indices]
        if not sel.any():
            return
        dev = trace.device_indices[sel].astype(np.int64)
        win = window_of[sel]
        val = trace.values[sel]

        # Stable sort by (device, window); within a segment events keep the
        # trace's time order, so first/last per segment are genuine
        # window-start and window-end readings (Eq. 3.3).
        order = np.lexsort((win, dev))
        dev, win, val = dev[order], win[order], val[order]
        boundary = np.empty(len(dev), dtype=bool)
        boundary[0] = True
        boundary[1:] = (dev[1:] != dev[:-1]) | (win[1:] != win[:-1])
        seg_start = np.nonzero(boundary)[0]
        seg_dev = dev[seg_start]
        seg_win = win[seg_start]
        seg_end = np.append(seg_start[1:], len(dev)) - 1

        count = (seg_end - seg_start + 1).astype(np.float64)
        s1 = np.add.reduceat(val, seg_start)
        s2 = np.add.reduceat(val * val, seg_start)
        s3 = np.add.reduceat(val * val * val, seg_start)
        first = val[seg_start]
        last = val[seg_end]
        mean = s1 / count

        # Third central moment: E[(x-mu)^3] = (s3 - 3 mu s2 + 2 n mu^3) / n.
        # Its sign equals the sign of the skewness in Eq. 3.2 (sigma > 0).
        # mu^3 is spelled out as multiplies: numpy's vectorised pow can be
        # an ulp off libm's, and after the cancellation above that ulp is
        # enough to flip the bit relative to the streaming windower, which
        # must reproduce this computation exactly with scalar arithmetic.
        m3 = (s3 - 3.0 * mean * s2 + 2.0 * count * (mean * mean * mean)) / count
        variance = s2 / count - mean**2
        # Single-sample windows have no spread: skewness must read False by
        # construction, not by trusting s2/n - mu^2 to cancel to exactly 0.
        skew_bit = (m3 > 1e-12) & (variance > 1e-12) & (count > 1)
        trend_bit = last - first > 0
        thresholds = self._value_thresholds[seg_dev]
        mean_bit = mean > thresholds

        for device in numeric:
            dev_idx = self.registry.index_of(device.device_id)
            here = seg_dev == dev_idx
            if not here.any():
                continue
            wins = seg_win[here]
            skew_b, trend_b, mean_b = self.layout.bits_of_device(device.device_id)
            _set_bit(words, wins[skew_bit[here]], skew_b)
            _set_bit(words, wins[trend_bit[here]], trend_b)
            _set_bit(words, wins[mean_bit[here]], mean_b)

    # -- actuators -------------------------------------------------------- #

    def _actuator_activations(
        self, trace: Trace, n_windows: int
    ) -> List[FrozenSet[str]]:
        activations: List[set] = [set() for _ in range(n_windows)]
        if n_windows:
            for device in self.registry.actuators():
                dev_idx = self.registry.index_of(device.device_id)
                mask = (trace.device_indices == dev_idx) & (trace.values > 0)
                if not mask.any():
                    continue
                wins = np.floor(
                    (trace.timestamps[mask] - trace.start) / self.window_seconds
                ).astype(np.int64)
                np.clip(wins, 0, n_windows - 1, out=wins)
                for w in np.unique(wins):
                    activations[int(w)].add(device.device_id)
        return [frozenset(s) for s in activations]


def _set_bit(words: np.ndarray, window_indices: np.ndarray, bit: int) -> None:
    """OR the given bit into the listed window rows."""
    if len(window_indices) == 0:
        return
    word, pos = divmod(bit, 64)
    np.bitwise_or.at(words[:, word], window_indices, np.uint64(1 << pos))


def _words_to_masks(words: np.ndarray) -> List[int]:
    """Convert packed rows back into Python int bitmasks."""
    n_windows, n_words = words.shape
    masks = [0] * n_windows
    for w in range(n_words):
        shift = 64 * w
        col = words[:, w]
        for i in np.nonzero(col)[0]:
            masks[int(i)] |= int(col[i]) << shift
    return masks
