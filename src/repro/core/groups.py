"""Group registry (§3.2.1, Fig. 3.3b).

Every *unique* sensor state set observed during the precomputation phase
becomes a **group** with a stable integer id.  The registry answers the two
queries the real-time phase needs:

* exact lookup — does an incoming state set match a known group (the
  *main group*)?
* neighbourhood scan — which groups lie within a Hamming-distance bound of
  the incoming set (the *candidate/probable groups*)?

The scan is the dominant real-time cost (Fig. 5.3) and is vectorised via
:class:`~repro.core.bitset.PackedBitsets`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .bitset import PackedBitsets
from .encoding import BitLayout, WindowedTrace


class GroupRegistry:
    """Interned collection of the groups extracted from training data."""

    def __init__(self, layout: BitLayout) -> None:
        self.layout = layout
        self._by_mask: Dict[int, int] = {}
        self._bitsets = PackedBitsets(layout.num_bits)
        self._counts: List[int] = []
        #: Frozen registries refuse mutation: a registry interned into a
        #: :class:`~repro.core.context.SharedContextStore` is referenced by
        #: many homes, so writing to it would corrupt every holder — homes
        #: must fork a private copy first (``DiceDetector.fork_context``).
        self._frozen = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_windows(
        cls, windowed: WindowedTrace
    ) -> Tuple["GroupRegistry", List[int]]:
        """Intern every window of *windowed*; returns the registry and the
        per-window group-id sequence (the input to transition extraction)."""
        registry = cls(windowed.layout)
        sequence = [registry.add(mask) for mask in windowed.masks]
        return registry, sequence

    def add(self, mask: int) -> int:
        """Intern *mask*; returns its group id, counting the observation."""
        if self._frozen:
            raise RuntimeError(
                "cannot add to a frozen (shared) GroupRegistry; fork a "
                "private copy first"
            )
        group_id = self._by_mask.get(mask)
        if group_id is None:
            group_id = self._bitsets.append(mask)
            self._by_mask[mask] = group_id
            self._counts.append(1)
        else:
            self._counts[group_id] += 1
        return group_id

    def freeze(self) -> None:
        """Make the registry immutable (interned shared contexts)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def copy(self) -> "GroupRegistry":
        """Unfrozen independent copy — the copy-on-write fork target.

        The copy reproduces group ids, masks and observation counts
        exactly, so a forked home's future ``add`` calls intern the same
        ids the unshared run would have."""
        twin = GroupRegistry(self.layout)
        twin._by_mask = dict(self._by_mask)
        twin._bitsets = self._bitsets.copy()
        twin._counts = list(self._counts)
        return twin

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def version(self) -> int:
        """Monotone token that changes whenever a new group is interned.

        Correlation results depend only on the *set* of group masks, so
        caches keyed on a fitted registry stay valid exactly while this
        value is unchanged (observation counts may still grow).
        """
        return len(self._bitsets)

    def __contains__(self, mask: int) -> bool:
        return mask in self._by_mask

    def lookup(self, mask: int) -> Optional[int]:
        """Group id of an exact match (the main group), if any."""
        return self._by_mask.get(mask)

    def mask_of(self, group_id: int) -> int:
        return self._bitsets.masks[group_id]

    def count_of(self, group_id: int) -> int:
        """How many training windows mapped to this group."""
        return self._counts[group_id]

    @property
    def masks(self) -> List[int]:
        return self._bitsets.masks

    def candidates(self, mask: int, max_distance: int) -> List[Tuple[int, int]]:
        """Groups within *max_distance* of *mask* as ``(group_id, distance)``
        pairs, nearest first (§3.3.1)."""
        ids, dists = self._bitsets.within(mask, max_distance)
        return [(int(g), int(d)) for g, d in zip(ids, dists)]

    def distances_many(
        self, masks: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Hamming distances from every probe mask to every group: ``(W, G)``.

        One XOR + popcount matrix pass — the batch form of the per-window
        neighbourhood scan."""
        return self._bitsets.distances_many(masks)

    def masked_distances(self, mask: int, visible: Optional[int]) -> np.ndarray:
        """Distances from *mask* to every group over *visible* bits only."""
        return self._bitsets.masked_distances(mask, visible)

    def kernel_call_counts(self) -> Dict[str, int]:
        """How often each ``distances_many`` kernel ran (``gemm``/``xor``)."""
        return dict(self._bitsets.kernel_calls)

    @property
    def gemm_min_rows(self) -> int:
        """Batch height at which ``distances_many`` switches to GEMM."""
        return self._bitsets.gemm_min_rows

    @gemm_min_rows.setter
    def gemm_min_rows(self, value: int) -> None:
        self._bitsets.gemm_min_rows = int(value)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def activated_sensor_counts(self) -> np.ndarray:
        """Number of distinct activated sensors per group."""
        return np.array(
            [len(self.layout.devices_of_mask(m)) for m in self._bitsets.masks],
            dtype=np.int64,
        )

    def correlation_degree(self) -> float:
        """Average activated sensors per unique group (§5.4, Table 5.2).

        The paper's indicator of how strongly sensors co-react: higher means
        richer groups, which the evaluation links to better accuracy and
        faster detection.
        """
        if not self._counts:
            return 0.0
        return float(self.activated_sensor_counts().mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupRegistry({len(self)} groups over {self.layout.num_bits} bits, "
            f"degree={self.correlation_degree():.1f})"
        )
