"""Faulty-device identification (§3.4, Fig. 3.7).

When a violation is detected, the problematic state set is compared against
the *probable groups* — the plausible fault-free states.  Every differing
bit names a probable faulty sensor (for a numeric sensor, any of its three
bits differing blames the sensor).  Probable groups with zero transition
probability from the previous group are pruned first.

For actuator-side violations (G2A/A2G), the currently / previously
activated actuators are the probable faulty devices.

A single window rarely pins the fault down, so an
:class:`IdentificationSession` keeps intersecting the probable-faulty sets
of successive windows — a genuinely faulty device keeps reappearing — until
the intersection shrinks to at most ``numThre`` devices (1 in the
single-fault configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from .checks import (
    CorrelationChecker,
    CorrelationResult,
    TransitionCase,
    TransitionViolation,
)
from .config import DiceConfig
from .groups import GroupRegistry
from .transitions import TransitionModel
from .weights import DeviceWeights


@dataclass(frozen=True)
class ProbableFaultSet:
    """Probable faulty devices inferred from one violating window."""

    devices: FrozenSet[str]
    #: Which groups the state set was compared against.
    reference_groups: Tuple[int, ...] = ()


class Identifier:
    """Stateless per-window identification logic."""

    def __init__(
        self,
        groups: GroupRegistry,
        transitions: TransitionModel,
        correlation_checker: CorrelationChecker,
        config: DiceConfig,
    ) -> None:
        self.groups = groups
        self.transitions = transitions
        self.correlation_checker = correlation_checker
        self.config = config

    # ------------------------------------------------------------------ #
    # Correlation-violation identification
    # ------------------------------------------------------------------ #

    def from_correlation_violation(
        self, result: CorrelationResult, prev_group: Optional[int]
    ) -> ProbableFaultSet:
        """Differing-bit analysis against the probable groups (§3.4).

        Groups unreachable from the previous group (zero G2G probability)
        are pruned, unless pruning would leave nothing to compare against.
        """
        probable = list(result.probable_groups)
        if not probable:
            # No group within the standard bound: widen the search so the
            # state set is compared against its nearest known contexts.
            probable = list(
                self.correlation_checker.nearest(
                    result.mask, self.groups.layout.num_bits
                )
            )
        if not probable:
            return ProbableFaultSet(frozenset())
        pruned = self._prune_unreachable(probable, prev_group)
        # "Comparing the problematic context with the *most probable*
        # context": among the surviving candidates, only the nearest groups
        # (minimum Hamming distance) are used as references.
        best = min(d for _, d in pruned)
        references = tuple(g for g, d in pruned if d == best)
        devices: Set[str] = set()
        for group_id in references:
            diff = result.mask ^ self.groups.mask_of(group_id)
            devices.update(self.groups.layout.devices_of_mask(diff))
        return ProbableFaultSet(frozenset(devices), references)

    def _prune_unreachable(
        self,
        probable: List[Tuple[int, int]],
        prev_group: Optional[int],
    ) -> List[Tuple[int, int]]:
        if prev_group is None:
            return probable
        reachable = [
            (g, d)
            for g, d in probable
            if self.transitions.g2g.probability(prev_group, g) > 0.0
        ]
        return reachable or probable

    # ------------------------------------------------------------------ #
    # Transition-violation identification
    # ------------------------------------------------------------------ #

    def from_transition_violations(
        self,
        violations: Sequence[TransitionViolation],
        mask: int,
        prev_group: Optional[int],
    ) -> ProbableFaultSet:
        """§3.4: case 1 reuses the correlation identification against the
        legal successors of the previous group; cases 2/3 blame the
        activated actuators."""
        devices: Set[str] = set()
        references: List[int] = []
        for violation in violations:
            if violation.case is TransitionCase.G2G:
                successors = (
                    self.transitions.g2g.successors(prev_group)
                    if prev_group is not None
                    else {}
                )
                if not successors:
                    continue
                # Compare against the most probable legal successors — the
                # ones closest to what was actually observed.
                diffs = {
                    group_id: mask ^ self.groups.mask_of(group_id)
                    for group_id in successors
                }
                best = min(bin(d).count("1") for d in diffs.values())
                for group_id, diff in diffs.items():
                    if bin(diff).count("1") == best:
                        references.append(group_id)
                        devices.update(self.groups.layout.devices_of_mask(diff))
            elif violation.actuator is not None:
                devices.add(violation.actuator)
        return ProbableFaultSet(frozenset(devices), tuple(references))


@dataclass
class IdentificationOutcome:
    """Final verdict of an identification session."""

    devices: FrozenSet[str]
    windows_used: int
    converged: bool
    #: True when a criticality/failure weight fired the alarm early (Ch. VI).
    weighted_early: bool = False


class IdentificationSession:
    """Intersects probable-faulty sets across windows until ≤ ``numThre``.

    The session starts from the violation that triggered detection.  Each
    later window contributes its own probable-faulty set; windows where the
    fault did not manifest (empty set) are skipped rather than intersected,
    so a transient fault (e.g. a single outlier) cannot erase the evidence.
    After ``max_identification_windows`` the best current intersection is
    reported un-converged.
    """

    def __init__(
        self,
        config: DiceConfig,
        initial: ProbableFaultSet,
        weights: Optional[DeviceWeights] = None,
    ) -> None:
        self.config = config
        self.weights = weights
        self.intersection: FrozenSet[str] = initial.devices
        self.windows_used = 1
        self.history: List[FrozenSet[str]] = [initial.devices]
        self._outcome: Optional[IdentificationOutcome] = None
        self._check_done()

    @property
    def outcome(self) -> Optional[IdentificationOutcome]:
        return self._outcome

    @property
    def is_done(self) -> bool:
        return self._outcome is not None

    def update(self, probable: ProbableFaultSet) -> Optional[IdentificationOutcome]:
        """Feed the next window's probable-faulty set; returns the outcome
        once the session concludes."""
        if self.is_done:
            return self._outcome
        self.windows_used += 1
        if probable.devices:
            self.history.append(probable.devices)
            narrowed = self.intersection & probable.devices
            # An empty intersection means the new evidence contradicts the
            # old (e.g. two unrelated transients); restart from the newer.
            self.intersection = narrowed or probable.devices
        self._check_done()
        return self._outcome

    # -- checkpoint support ---------------------------------------------- #

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the session (gateway checkpointing).

        Only open sessions are worth snapshotting — a done session has
        already produced its alert — so the outcome is not serialized.
        """
        return {
            "intersection": sorted(self.intersection),
            "windows_used": self.windows_used,
            "history": [sorted(devices) for devices in self.history],
        }

    @classmethod
    def from_state_dict(
        cls,
        config: DiceConfig,
        state: dict,
        weights: Optional[DeviceWeights] = None,
    ) -> "IdentificationSession":
        """Rebuild a session captured by :meth:`state_dict`."""
        session = cls.__new__(cls)
        session.config = config
        session.weights = weights
        session.intersection = frozenset(state["intersection"])
        session.windows_used = int(state["windows_used"])
        session.history = [frozenset(devices) for devices in state["history"]]
        session._outcome = None
        return session

    def _check_done(self) -> None:
        if self._outcome is not None:
            return
        devices = self.intersection
        if self.weights is not None:
            critical = self.weights.critical_subset(devices)
            if critical:
                self._outcome = IdentificationOutcome(
                    frozenset(critical),
                    self.windows_used,
                    converged=True,
                    weighted_early=len(devices) > self.config.num_thre,
                )
                return
        if devices and len(devices) <= self.config.num_thre:
            self._outcome = IdentificationOutcome(
                devices, self.windows_used, converged=True
            )
        elif self.windows_used >= self.config.max_identification_windows:
            self._outcome = IdentificationOutcome(
                devices, self.windows_used, converged=False
            )
