"""Transition extraction (§3.2.2, Fig. 3.4).

DICE learns three Markov-chain transition matrices over the training
windows:

* **G2G** — group at window *i-1* → group at window *i*;
* **G2A** — group at window *i-1* → actuator activated in window *i*;
* **A2G** — actuator activated in window *i-1* → group at window *i*.

Actuator-to-actuator transitions are deliberately not modelled: actuators
influence sensor readings, so the three matrices above subsume A2A (the
paper skips it to save computation).  Matrices are sparse dict-of-dicts;
a *zero* probability for an observed row is a transition violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Generic, Hashable, List, Sequence, TypeVar

Row = TypeVar("Row", bound=Hashable)
Col = TypeVar("Col", bound=Hashable)


class TransitionMatrix(Generic[Row, Col]):
    """Sparse transition-count matrix with row-normalised probabilities."""

    def __init__(self) -> None:
        self._counts: Dict[Row, Dict[Col, int]] = {}
        self._row_totals: Dict[Row, int] = {}

    def observe(self, row: Row, col: Col, weight: int = 1) -> None:
        if weight < 1:
            raise ValueError("weight must be positive")
        cols = self._counts.setdefault(row, {})
        cols[col] = cols.get(col, 0) + weight
        self._row_totals[row] = self._row_totals.get(row, 0) + weight

    def copy(self) -> "TransitionMatrix[Row, Col]":
        """Independent copy (rows/cols are immutable keys; counts are ints)."""
        twin: "TransitionMatrix[Row, Col]" = TransitionMatrix()
        twin._counts = {row: dict(cols) for row, cols in self._counts.items()}
        twin._row_totals = dict(self._row_totals)
        return twin

    def count(self, row: Row, col: Col) -> int:
        return self._counts.get(row, {}).get(col, 0)

    def row_total(self, row: Row) -> int:
        return self._row_totals.get(row, 0)

    def probability(self, row: Row, col: Col) -> float:
        """P(col | row); 0.0 when the pair was never observed.

        A row that was itself never observed also yields 0.0 — callers that
        must distinguish "unknown row" from "known row, unseen column"
        should check :meth:`row_total` first (the transition check does).
        """
        total = self._row_totals.get(row, 0)
        if total == 0:
            return 0.0
        return self._counts[row].get(col, 0) / total

    def successors(self, row: Row) -> Dict[Col, float]:
        """All observed next-states of *row* with their probabilities."""
        total = self._row_totals.get(row, 0)
        if total == 0:
            return {}
        return {col: c / total for col, c in self._counts[row].items()}

    @property
    def rows(self) -> List[Row]:
        return list(self._counts)

    @property
    def num_observations(self) -> int:
        return sum(self._row_totals.values())

    def __len__(self) -> int:
        """Number of distinct (row, col) pairs with support."""
        return sum(len(cols) for cols in self._counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransitionMatrix({len(self._counts)} rows, {len(self)} entries, "
            f"{self.num_observations} observations)"
        )


@dataclass
class TransitionModel:
    """The three matrices of §3.2.2 plus bookkeeping for violation checks."""

    g2g: TransitionMatrix = field(default_factory=TransitionMatrix)
    g2a: TransitionMatrix = field(default_factory=TransitionMatrix)
    a2g: TransitionMatrix = field(default_factory=TransitionMatrix)

    @classmethod
    def extract(
        cls,
        group_sequence: Sequence[int],
        actuator_activations: Sequence[FrozenSet[str]],
    ) -> "TransitionModel":
        """Learn the matrices from one training pass.

        ``group_sequence[i]`` is the group id of window *i*;
        ``actuator_activations[i]`` names the actuators activated in
        window *i*.
        """
        if len(group_sequence) != len(actuator_activations):
            raise ValueError("group sequence and activations must align")
        model = cls()
        for i in range(1, len(group_sequence)):
            prev_g = group_sequence[i - 1]
            cur_g = group_sequence[i]
            model.g2g.observe(prev_g, cur_g)
            for act in actuator_activations[i]:
                model.g2a.observe(prev_g, act)
            for act in actuator_activations[i - 1]:
                model.a2g.observe(act, cur_g)
        return model

    def copy(self) -> "TransitionModel":
        """Independent copy of all three matrices (copy-on-write forks)."""
        return TransitionModel(self.g2g.copy(), self.g2a.copy(), self.a2g.copy())

    def edge_stats(self, matrix: str, row, col) -> dict:
        """Probability terms of one edge, for alert provenance.

        *matrix* names one of ``g2g``/``g2a``/``a2g``.  The returned dict
        is JSON-serializable and deterministic: integer counts plus the
        row-normalised probability — exactly the numbers the transition
        check gated on when it flagged (or passed) the edge.
        """
        if matrix not in ("g2g", "g2a", "a2g"):
            raise ValueError(f"unknown transition matrix {matrix!r}")
        m: TransitionMatrix = getattr(self, matrix)
        return {
            "count": m.count(row, col),
            "row_total": m.row_total(row),
            "probability": m.probability(row, col),
        }

    def merge(self, other: "TransitionModel") -> None:
        """Fold another model's observations into this one (used when
        precomputation data arrives in several chunks)."""
        for src, dst in (
            (other.g2g, self.g2g),
            (other.g2a, self.g2a),
            (other.a2g, self.a2g),
        ):
            for row in src.rows:
                for col, count in src._counts[row].items():
                    dst.observe(row, col, count)
