"""Device weighting extension (Ch. VI, "Weight of devices").

The thesis discusses — without fully evaluating — assigning devices a
*criticality weight* (how urgent an early alarm is, e.g. gas and flame
sensors) and a *failure weight* (how likely the device is to fail, e.g.
lightweight battery devices).  During identification, a sufficiently
weighted device in the probable-faulty set fires the alarm early, even
before the set shrinks to ``numThre`` — trading false positives for early
warning on safety-critical devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

#: Weight at which a device bypasses the numThre convergence rule.
DEFAULT_ALARM_THRESHOLD = 1.0


@dataclass
class DeviceWeights:
    """Per-device criticality and failure-likelihood weights.

    The effective weight of a device is ``criticality + failure``; devices
    reaching ``alarm_threshold`` are alarmed as soon as they enter an
    identification session's probable set.
    """

    criticality: Dict[str, float] = field(default_factory=dict)
    failure: Dict[str, float] = field(default_factory=dict)
    alarm_threshold: float = DEFAULT_ALARM_THRESHOLD

    def set_criticality(self, device_id: str, weight: float) -> None:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self.criticality[device_id] = weight

    def set_failure(self, device_id: str, weight: float) -> None:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self.failure[device_id] = weight

    def weight_of(self, device_id: str) -> float:
        return self.criticality.get(device_id, 0.0) + self.failure.get(device_id, 0.0)

    def critical_subset(self, devices: Iterable[str]) -> Set[str]:
        """Devices whose weight reaches the alarm threshold."""
        return {d for d in devices if self.weight_of(d) >= self.alarm_threshold}

    @classmethod
    def for_safety_sensors(
        cls, device_ids: Iterable[str], weight: float = 1.0
    ) -> "DeviceWeights":
        """Convenience: mark the given devices (typically gas/flame) critical."""
        weights = cls()
        for device_id in device_ids:
            weights.set_criticality(device_id, weight)
        return weights
