"""The ten evaluation datasets of Table 4.1, generated on demand."""

from .builder import FILL, FILL_MINUTES, HomeBuilder, plan_routine, trig
from .io import read_registry, read_trace, write_registry, write_trace
from .registry import (
    ALL_NAMES,
    DATASETS,
    TESTBED_NAMES,
    THIRD_PARTY_NAMES,
    DatasetInfo,
    LoadedDataset,
    build_spec,
    dataset_info,
    load_dataset,
)

__all__ = [
    "FILL",
    "FILL_MINUTES",
    "HomeBuilder",
    "plan_routine",
    "trig",
    "read_registry",
    "read_trace",
    "write_registry",
    "write_trace",
    "ALL_NAMES",
    "DATASETS",
    "TESTBED_NAMES",
    "THIRD_PARTY_NAMES",
    "DatasetInfo",
    "LoadedDataset",
    "build_spec",
    "dataset_info",
    "load_dataset",
]
