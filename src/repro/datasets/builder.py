"""Fluent builder for :class:`~repro.smarthome.simulator.HomeSpec`.

The ten dataset specs (ISLA houses, WSU CASAS homes, the POSTECH testbed)
share the same construction vocabulary: declare devices, declare activities
with their device footprints, declare per-resident routines and automation
rules.  ``HomeBuilder`` keeps those declarations terse and validates them
eagerly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..model import DeviceRegistry, SensorType, actuator, binary_sensor, numeric_sensor
from ..smarthome import (
    ActivityCatalog,
    ActivitySpec,
    AutomationRule,
    BinaryTrigger,
    DailyRoutine,
    DaylightModel,
    FloorPlan,
    HomeSpec,
    NumericEffect,
    RoutineEntry,
)


class HomeBuilder:
    """Accumulates a home description and builds the final ``HomeSpec``."""

    def __init__(self, name: str, floorplan: FloorPlan) -> None:
        self.name = name
        self.floorplan = floorplan
        self.registry = DeviceRegistry()
        self.catalog = ActivityCatalog()
        self.routines: List[DailyRoutine] = []
        self.automations: List[AutomationRule] = []
        self.daylight: Optional[DaylightModel] = DaylightModel()
        self.ambient_light_sensor_ids: List[str] = []

    # ------------------------------------------------------------------ #
    # Devices
    # ------------------------------------------------------------------ #

    def binary(self, device_id: str, sensor_type: SensorType, room: str) -> str:
        self.registry.add(binary_sensor(device_id, sensor_type, room))
        return device_id

    def numeric(
        self,
        device_id: str,
        sensor_type: SensorType,
        room: str,
        ambient: bool = False,
    ) -> str:
        self.registry.add(numeric_sensor(device_id, sensor_type, room))
        if ambient:
            if sensor_type is not SensorType.LIGHT:
                raise ValueError("only light sensors can be daylight-facing")
            self.ambient_light_sensor_ids.append(device_id)
        return device_id

    def actuator(self, device_id: str, sensor_type: SensorType, room: str) -> str:
        self.registry.add(actuator(device_id, sensor_type, room))
        return device_id

    def motion_grid(self, prefix: str, room: str, count: int) -> List[str]:
        """Several motion sensors covering one room (CASAS-style grids)."""
        return [
            self.binary(f"{prefix}_{i + 1:02d}", SensorType.MOTION, room)
            for i in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Activities
    # ------------------------------------------------------------------ #

    def activity(
        self,
        name: str,
        room: str,
        duration_minutes: Tuple[float, float],
        triggers: Sequence[BinaryTrigger] = (),
        effects: Sequence[Tuple[str, float]] = (),
        away: bool = False,
        still: bool = False,
        canonical: str = "",
    ) -> str:
        """Declare an activity; ``effects`` are ``(device_id, delta)`` pairs."""
        for trigger in triggers:
            if trigger.device_id not in self.registry:
                raise ValueError(
                    f"activity {name!r} triggers unknown device "
                    f"{trigger.device_id!r}"
                )
        numeric_effects = []
        for device_id, delta in effects:
            if device_id not in self.registry:
                raise ValueError(
                    f"activity {name!r} affects unknown device {device_id!r}"
                )
            numeric_effects.append(NumericEffect(device_id, delta))
        self.catalog.add(
            ActivitySpec(
                name=name,
                room=room,
                duration_minutes=duration_minutes,
                binary_triggers=tuple(triggers),
                numeric_effects=tuple(numeric_effects),
                away=away,
                still=still,
                canonical=canonical,
            )
        )
        return name

    # ------------------------------------------------------------------ #
    # Routines & rules
    # ------------------------------------------------------------------ #

    def routine(self, entries: Iterable[RoutineEntry]) -> None:
        self.routines.append(DailyRoutine(list(entries)))

    def rule(self, rule: AutomationRule) -> None:
        self.automations.append(rule)

    # ------------------------------------------------------------------ #

    def build(self, **spec_kwargs) -> HomeSpec:
        return HomeSpec(
            name=self.name,
            registry=self.registry,
            floorplan=self.floorplan,
            catalog=self.catalog,
            routines=self.routines,
            automations=self.automations,
            daylight=self.daylight,
            ambient_light_sensor_ids=tuple(self.ambient_light_sensor_ids),
            **spec_kwargs,
        )


def trig(
    device_id: str,
    pattern: str = "continuous",
    period: float = 25.0,
    probability: float = 1.0,
) -> BinaryTrigger:
    """Shorthand BinaryTrigger constructor used by the dataset specs."""
    return BinaryTrigger(device_id, pattern, period, probability)


#: Activities with a duration upper bound at or above this are *fill*
#: activities: they always run into the next routine entry and get clipped
#: there, so their boundary patterns recur daily and are learnable.
FILL_MINUTES = 240.0

#: A convenient fill duration: long enough to always reach the next entry.
FILL = (600.0, 720.0)


def plan_routine(
    catalog,
    plan: Sequence[Tuple],
    margin_minutes: float = 3.0,
) -> List[RoutineEntry]:
    """Turn ``(activity, nominal_minute, jitter[, skip])`` tuples into a
    collision-free routine.

    Two timing regimes keep the context space learnable:

    * a *point* activity (short, bounded duration) must not be able to
      collide with its successor even at jitter extremes — its successor's
      nominal start is pushed later if needed;
    * a *fill* activity (duration ≥ :data:`FILL_MINUTES`) always reaches its
      successor and is clipped there, so the hand-over happens — and is
      observed — every single day.

    Rare once-a-month collisions are the enemy: they produce sensor
    combinations that training data cannot cover, which read as false
    positives to any context-based detector.
    """
    entries: List[RoutineEntry] = []
    # Entries a new activity might directly follow (everything since the
    # last unskippable entry — a skipped activity hands over to the one
    # before it).
    open_preds: List[Tuple[float, float, float, bool]] = []
    for item in plan:
        activity, nominal, jitter = item[0], float(item[1]), float(item[2])
        skip = float(item[3]) if len(item) > 3 else 0.0
        spec = catalog[activity]
        for p_nominal, p_hi, p_jitter, p_fill in open_preds:
            if p_fill:
                earliest = p_nominal + margin_minutes
            else:
                earliest = (
                    p_nominal + p_hi + 2.0 * (p_jitter + jitter) + margin_minutes
                )
            nominal = max(nominal, earliest)
        if nominal >= 24 * 60:
            raise ValueError(
                f"routine overflows the day at {activity!r} "
                f"(pushed to minute {nominal:.0f})"
            )
        entries.append(RoutineEntry(activity, nominal, jitter, skip))
        record = (
            nominal,
            spec.duration_minutes[1],
            jitter,
            spec.duration_minutes[1] >= FILL_MINUTES,
        )
        if skip == 0.0:
            open_preds = [record]
        else:
            open_preds.append(record)
    return entries
