"""WSU CASAS homes — synthetic recreations of **twor** and **hh102**.

*twor* is the two-resident apartment (Table 4.1: 68 binary + 3 numeric
sensors, 9 annotated activities, 1104 h): dense motion-sensor grids per
room give it the highest correlation degree of the third-party datasets.

*hh102* is the single-resident "smart home in a box" (33 binary + 79
numeric sensors, 30 activities, 1488 h): its numeric sensors are all
light/temperature/battery gauges; battery gauges are near-constant, which
is why a large sensor census does not automatically mean a large
correlation degree (§5.4 discusses exactly this).
"""

from __future__ import annotations

from ..model import SensorType
from ..smarthome import FloorPlan, HomeSpec
from .builder import FILL, HomeBuilder, plan_routine, trig

DOOR = SensorType.DOOR
ITEM = SensorType.ITEM
MOTION = SensorType.MOTION


def _twor_floorplan() -> FloorPlan:
    rooms = [
        "hall",
        "kitchen",
        "dining",
        "living_room",
        "bedroom1",
        "bedroom2",
        "bathroom1",
        "bathroom2",
        "office",
    ]
    doorways = [("hall", r) for r in rooms if r != "hall"]
    return FloorPlan(rooms, doorways)


def build_twor() -> HomeSpec:
    """twor: two residents, 68 binary + 3 numeric sensors, 9 activities."""
    b = HomeBuilder("twor", _twor_floorplan())

    # Motion grids (53 sensors).
    b.motion_grid("m_kitchen", "kitchen", 8)
    b.motion_grid("m_living", "living_room", 10)
    b.motion_grid("m_dining", "dining", 4)
    b.motion_grid("m_bedroom1", "bedroom1", 7)
    b.motion_grid("m_bedroom2", "bedroom2", 7)
    b.motion_grid("m_bathroom1", "bathroom1", 3)
    b.motion_grid("m_bathroom2", "bathroom2", 3)
    b.motion_grid("m_office", "office", 6)
    b.motion_grid("m_hall", "hall", 5)

    # Doors (12).
    front = b.binary("d_front", DOOR, "hall")
    b.binary("d_back", DOOR, "kitchen")
    bed1_door = b.binary("d_bedroom1", DOOR, "bedroom1")
    bed2_door = b.binary("d_bedroom2", DOOR, "bedroom2")
    bath1_door = b.binary("d_bathroom1", DOOR, "bathroom1")
    bath2_door = b.binary("d_bathroom2", DOOR, "bathroom2")
    office_door = b.binary("d_office", DOOR, "office")
    b.binary("d_closet1", DOOR, "bedroom1")
    b.binary("d_closet2", DOOR, "bedroom2")
    fridge = b.binary("d_fridge", DOOR, "kitchen")
    freezer = b.binary("d_freezer", DOOR, "kitchen")
    cabinet = b.binary("d_cabinet", DOOR, "kitchen")

    # Items (3).
    item_medicine = b.binary("i_medicine", ITEM, "bathroom1")
    item_laundry = b.binary("i_laundry", ITEM, "bathroom1")
    item_supplies = b.binary("i_supplies", ITEM, "kitchen")

    # Numeric (3): burner-adjacent temperature plus two work-area lights.
    temp_kitchen = b.numeric("t_kitchen", SensorType.TEMPERATURE, "kitchen")
    light_living = b.numeric("l_living", SensorType.LIGHT, "living_room")
    light_office = b.numeric("l_office", SensorType.LIGHT, "office")

    # The 9 annotated twor activities.
    b.activity(
        "sleeping_r1", "bedroom1", FILL,
        triggers=[trig(bed1_door, "start")],
        still=True,
        canonical="sleeping",
    )
    b.activity(
        "sleeping_r2", "bedroom2", FILL,
        triggers=[trig(bed2_door, "start")],
        still=True,
        canonical="sleeping",
    )
    b.activity(
        "bed_to_toilet_r1", "bathroom1", (3, 6),
        triggers=[trig(bath1_door, "start"), trig(bath1_door, "end")],
        canonical="bed_to_toilet",
    )
    b.activity(
        "bed_to_toilet_r2", "bathroom2", (3, 6),
        triggers=[trig(bath2_door, "start"), trig(bath2_door, "end")],
        canonical="bed_to_toilet",
    )
    b.activity(
        "meal_preparation", "kitchen", (20, 26),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(freezer, "continuous", period=20.0),
            trig(cabinet, "continuous", period=20.0),
        ],
        effects=[(temp_kitchen, 5.0)],
    )
    b.activity("eating", "dining", (15, 22))
    b.activity(
        "personal_hygiene_r1", "bathroom1", (8, 12),
        triggers=[
            trig(bath1_door, "start"),
            trig(item_medicine, "continuous", period=20.0),
        ],
        canonical="personal_hygiene",
    )
    b.activity(
        "personal_hygiene_r2", "bathroom2", (8, 12),
        triggers=[trig(bath2_door, "start")],
        canonical="personal_hygiene",
    )
    b.activity(
        "working", "office", FILL,
        triggers=[trig(office_door, "start")],
    )
    b.activity(
        "watching_tv", "living_room", FILL,
    )
    b.activity(
        "housekeeping", "kitchen", (20, 26),
        triggers=[
            trig(item_laundry, "continuous", period=20.0),
            trig(item_supplies, "continuous", period=20.0),
        ],
    )
    b.activity(
        "leaving_home", "hall", FILL,
        triggers=[trig(front, "start"), trig(front, "end")],
        away=True,
    )

    # Resident 1: works from the home office.
    b.routine(
        plan_routine(
            b.catalog,
            [
                ("bed_to_toilet_r1", 3 * 60 + 25, 6, 0.5),
                ("sleeping_r1", 3 * 60 + 50, 5),
                ("personal_hygiene_r1", 7 * 60 + 30, 3),
                ("meal_preparation", 8 * 60, 3),
                ("eating", 8 * 60 + 35, 3),
                ("working", 9 * 60 + 15, 4),
                ("meal_preparation", 12 * 60 + 30, 4),
                ("eating", 13 * 60 + 5, 4),
                ("working", 13 * 60 + 45, 4),
                ("meal_preparation", 18 * 60, 4),
                ("eating", 18 * 60 + 40, 3),
                ("watching_tv", 19 * 60 + 25, 4),
                ("housekeeping", 22 * 60, 3, 0.45),
                ("personal_hygiene_r1", 22 * 60 + 45, 3),
                ("sleeping_r1", 23 * 60 + 10, 3),
            ],
        )
    )
    # Resident 2: leaves for campus during the day.
    b.routine(
        plan_routine(
            b.catalog,
            [
                ("bed_to_toilet_r2", 4 * 60, 6, 0.5),
                ("sleeping_r2", 4 * 60 + 25, 5),
                ("personal_hygiene_r2", 8 * 60 + 40, 3),
                ("leaving_home", 9 * 60 + 25, 4),
                ("watching_tv", 19 * 60, 4),
                ("housekeeping", 21 * 60 + 15, 3, 0.45),
                ("personal_hygiene_r2", 23 * 60 + 20, 3),
                ("sleeping_r2", 23 * 60 + 45, 3),
            ],
        )
    )

    spec = b.build(
        manual_lamp_light_sensor_ids=(light_living, light_office),
    )
    return spec


def _hh_floorplan() -> FloorPlan:
    rooms = [
        "hall",
        "kitchen",
        "dining",
        "living_room",
        "bedroom",
        "bathroom",
        "office",
    ]
    doorways = [("hall", r) for r in rooms if r != "hall"]
    return FloorPlan(rooms, doorways)


def build_hh102() -> HomeSpec:
    """hh102: one resident, 33 binary + 79 numeric sensors, 30 activities."""
    b = HomeBuilder("hh102", _hh_floorplan())

    # Motion (18).
    b.motion_grid("m_kitchen", "kitchen", 4)
    b.motion_grid("m_living", "living_room", 4)
    b.motion_grid("m_bedroom", "bedroom", 3)
    b.motion_grid("m_bathroom", "bathroom", 2)
    b.motion_grid("m_office", "office", 3)
    b.motion_grid("m_hall", "hall", 2)

    # Doors (8).
    front = b.binary("d_front", DOOR, "hall")
    fridge = b.binary("d_fridge", DOOR, "kitchen")
    freezer = b.binary("d_freezer", DOOR, "kitchen")
    cabinet = b.binary("d_cabinet", DOOR, "kitchen")
    bed_door = b.binary("d_bedroom", DOOR, "bedroom")
    bath_door = b.binary("d_bathroom", DOOR, "bathroom")
    closet = b.binary("d_closet", DOOR, "bedroom")
    office_door = b.binary("d_office", DOOR, "office")

    # Items (7).
    medicine = b.binary("i_medicine", ITEM, "kitchen")
    laundry = b.binary("i_laundry", ITEM, "bathroom")
    watering_can = b.binary("i_watering_can", ITEM, "living_room")
    coffee_jar = b.binary("i_coffee_jar", ITEM, "kitchen")
    snack_jar = b.binary("i_snack_jar", ITEM, "kitchen")
    phone_dock = b.binary("i_phone_dock", ITEM, "living_room")
    book_shelf = b.binary("i_book_shelf", ITEM, "living_room")

    # Numeric census: 26 light + 27 temperature + 26 battery = 79.
    light_rooms = (
        ["kitchen"] * 4
        + ["living_room"] * 5
        + ["bedroom"] * 4
        + ["bathroom"] * 3
        + ["office"] * 4
        + ["hall"] * 3
        + ["dining"] * 3
    )
    lights = [
        b.numeric(f"ls_{i + 1:03d}", SensorType.LIGHT, room)
        for i, room in enumerate(light_rooms)
    ]
    temp_rooms = (
        ["kitchen"] * 5
        + ["bathroom"] * 4
        + ["bedroom"] * 4
        + ["living_room"] * 5
        + ["office"] * 4
        + ["hall"] * 5
    )
    temps = [
        b.numeric(f"t_{i + 1:03d}", SensorType.TEMPERATURE, room)
        for i, room in enumerate(temp_rooms)
    ]
    battery_rooms = (light_rooms[:13] + temp_rooms[:13])[:26]
    for i, room in enumerate(battery_rooms):
        b.numeric(f"bat_{i + 1:03d}", SensorType.BATTERY, room)

    kitchen_temps = [t for t, room in zip(temps, temp_rooms) if room == "kitchen"]
    bathroom_temps = [t for t, room in zip(temps, temp_rooms) if room == "bathroom"]

    cook_effects = [(t, 4.0) for t in kitchen_temps]
    shower_effects = [(t, 3.0) for t in bathroom_temps]

    # 30 activities.
    b.activity(
        "sleep", "bedroom", FILL, triggers=[trig(bed_door, "start")], still=True
    )
    b.activity(
        "bed_to_toilet", "bathroom", (3, 6),
        triggers=[trig(bath_door, "start"), trig(bath_door, "end")],
    )
    b.activity(
        "morning_hygiene", "bathroom", (8, 12), triggers=[trig(bath_door, "start")]
    )
    b.activity(
        "shower", "bathroom", (12, 18),
        triggers=[trig(bath_door, "start"), trig(bath_door, "end")],
        effects=shower_effects,
    )
    b.activity("dress", "bedroom", (5, 9), triggers=[trig(closet, "start")])
    b.activity(
        "breakfast_prep", "kitchen", (10, 14),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cabinet, "continuous", period=20.0),
        ],
        effects=cook_effects,
    )
    b.activity("eat_breakfast", "dining", (10, 15))
    b.activity(
        "wash_breakfast_dishes", "kitchen", (5, 9),
        triggers=[trig(cabinet, "continuous", period=20.0)],
    )
    b.activity(
        "morning_medicine", "kitchen", (1, 3),
        triggers=[trig(medicine, "start")],
    )
    b.activity(
        "make_coffee", "kitchen", (4, 7),
        triggers=[trig(coffee_jar, "continuous", period=20.0)],
    )
    b.activity(
        "work_at_computer", "office", FILL, triggers=[trig(office_door, "start")]
    )
    b.activity(
        "coffee_break", "kitchen", (4, 7),
        triggers=[trig(coffee_jar, "start")],
    )
    b.activity(
        "lunch_prep", "kitchen", (12, 16),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(freezer, "continuous", period=20.0),
        ],
        effects=cook_effects,
    )
    b.activity("eat_lunch", "dining", (12, 18))
    b.activity(
        "wash_lunch_dishes", "kitchen", (5, 9),
        triggers=[trig(cabinet, "continuous", period=20.0)],
    )
    b.activity(
        "leave_home", "hall", FILL,
        triggers=[trig(front, "start"), trig(front, "end")],
        away=True,
    )
    b.activity("afternoon_nap", "bedroom", FILL, still=True)
    b.activity("snack", "kitchen", (3, 6), triggers=[trig(snack_jar, "start")])
    b.activity(
        "read", "living_room", FILL, triggers=[trig(book_shelf, "start")]
    )
    b.activity(
        "phone_call", "living_room", (6, 12),
        triggers=[trig(phone_dock, "start"), trig(phone_dock, "end")],
    )
    b.activity(
        "dinner_prep", "kitchen", (25, 31),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(freezer, "continuous", period=20.0),
            trig(cabinet, "continuous", period=20.0),
        ],
        effects=cook_effects,
    )
    b.activity("eat_dinner", "dining", (15, 22))
    b.activity(
        "wash_dinner_dishes", "kitchen", (8, 12),
        triggers=[trig(cabinet, "continuous", period=20.0)],
    )
    b.activity(
        "evening_medicine", "kitchen", (1, 3), triggers=[trig(medicine, "start")]
    )
    b.activity("watch_tv", "living_room", FILL)
    b.activity(
        "laundry", "bathroom", (8, 12),
        triggers=[trig(laundry, "continuous", period=20.0)],
    )
    b.activity("enter_home", "hall", (2, 4))
    b.activity(
        "water_plants", "living_room", (4, 7),
        triggers=[trig(watering_can, "start"), trig(watering_can, "end")],
    )
    b.activity(
        "evening_hygiene", "bathroom", (6, 10), triggers=[trig(bath_door, "start")]
    )
    b.activity("exercise", "living_room", (18, 24))

    b.routine(
        plan_routine(
            b.catalog,
            [
                ("bed_to_toilet", 3 * 60 + 20, 6, 0.5),
                ("sleep", 3 * 60 + 45, 5),
                ("morning_hygiene", 7 * 60, 3),
                ("shower", 7 * 60 + 20, 3, 0.25),
                ("dress", 7 * 60 + 55, 3),
                ("make_coffee", 8 * 60 + 12, 3),
                ("breakfast_prep", 8 * 60 + 25, 3),
                ("eat_breakfast", 8 * 60 + 48, 3),
                ("morning_medicine", 9 * 60 + 10, 2),
                ("wash_breakfast_dishes", 9 * 60 + 20, 3, 0.4),
                ("work_at_computer", 9 * 60 + 40, 4),
                ("coffee_break", 10 * 60 + 45, 4, 0.45),
                ("work_at_computer", 11 * 60 + 5, 4),
                ("lunch_prep", 12 * 60 + 25, 3),
                ("eat_lunch", 12 * 60 + 50, 3),
                ("wash_lunch_dishes", 13 * 60 + 15, 3, 0.45),
                ("leave_home", 13 * 60 + 40, 4, 0.35),
                ("enter_home", 15 * 60 + 20, 4),
                ("afternoon_nap", 15 * 60 + 30, 5, 0.45),
                ("snack", 16 * 60 + 30, 3, 0.45),
                ("read", 16 * 60 + 50, 4),
                ("exercise", 17 * 60 + 20, 3, 0.45),
                ("phone_call", 17 * 60 + 50, 3, 0.45),
                ("dinner_prep", 18 * 60 + 40, 3),
                ("eat_dinner", 19 * 60 + 25, 3),
                ("wash_dinner_dishes", 19 * 60 + 55, 3, 0.35),
                ("evening_medicine", 20 * 60 + 18, 2),
                ("water_plants", 20 * 60 + 32, 3, 0.45),
                ("watch_tv", 20 * 60 + 50, 4),
                ("laundry", 22 * 60 + 10, 3, 0.45),
                ("evening_hygiene", 23 * 60 + 10, 3),
                ("sleep", 23 * 60 + 35, 3),
            ],
        )
    )

    manual_lamps = tuple(lights)
    return b.build(manual_lamp_light_sensor_ids=manual_lamps)
