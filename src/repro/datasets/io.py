"""Trace serialization: CSV interchange.

The format matches what real deployments log — one event per line:

    timestamp,device_id,value
    60.0,kitchen_motion,1.0

A companion ``*.devices.csv`` carries the registry (id, kind, type, room)
so a trace file round-trips losslessly.
"""

from __future__ import annotations

import csv
import os
from typing import Optional

import numpy as np

from ..model import Device, DeviceKind, DeviceRegistry, SensorType, Trace

EVENT_HEADER = ("timestamp", "device_id", "value")
DEVICE_HEADER = ("device_id", "kind", "sensor_type", "room")


def _devices_path(path: str) -> str:
    root, ext = os.path.splitext(path)
    return f"{root}.devices{ext or '.csv'}"


def write_registry(registry: DeviceRegistry, path: str) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(DEVICE_HEADER)
        for device in registry:
            writer.writerow(
                [device.device_id, device.kind.value, device.sensor_type.value, device.room]
            )


def read_registry(path: str) -> DeviceRegistry:
    registry = DeviceRegistry()
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if tuple(header or ()) != DEVICE_HEADER:
            raise ValueError(f"unexpected device header in {path}: {header}")
        for row in reader:
            device_id, kind, sensor_type, room = row
            registry.add(
                Device(device_id, DeviceKind(kind), SensorType(sensor_type), room)
            )
    return registry


def write_trace(trace: Trace, path: str) -> None:
    """Write events to *path* and the registry to ``*.devices.csv``."""
    write_registry(trace.registry, _devices_path(path))
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(EVENT_HEADER)
        writer.writerow(["# start", trace.start, ""])
        writer.writerow(["# end", trace.end, ""])
        ids = trace.registry.device_ids
        for t, d, v in zip(trace.timestamps, trace.device_indices, trace.values):
            writer.writerow([repr(float(t)), ids[d], repr(float(v))])


def read_trace(path: str, registry: Optional[DeviceRegistry] = None) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    if registry is None:
        registry = read_registry(_devices_path(path))
    timestamps, indices, values = [], [], []
    start = 0.0
    end: Optional[float] = None
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if tuple(header or ()) != EVENT_HEADER:
            raise ValueError(f"unexpected event header in {path}: {header}")
        for row in reader:
            if row and row[0].startswith("#"):
                if row[0] == "# start":
                    start = float(row[1])
                elif row[0] == "# end":
                    end = float(row[1])
                continue
            t, device_id, v = row
            timestamps.append(float(t))
            indices.append(registry.index_of(device_id))
            values.append(float(v))
    return Trace(
        registry,
        np.array(timestamps, dtype=np.float64),
        np.array(indices, dtype=np.int32),
        np.array(values, dtype=np.float64),
        start=start,
        end=end,
    )
