"""ISLA (van Kasteren) houses A, B, C — synthetic recreations.

The real datasets are reed-switch/PIR/pressure-mat homes recorded by the
Intelligent Systems Lab Amsterdam.  The recreations preserve the Table 4.1
census — houseA: 14 binary sensors / 16 activities / 576 h; houseB: 27 /
25 / 648 h; houseC: 23 / 27 / 480 h — and the structural property the
paper leans on: houseA's sensors mostly fire alone (the lowest correlation
degree of all datasets), while houseB and houseC co-fire more.

Routines follow the point/fill timing discipline of
:func:`~repro.datasets.builder.plan_routine`: short activities are spaced
so they cannot collide, long ones always run into their successor.
"""

from __future__ import annotations

from ..model import SensorType
from ..smarthome import HomeSpec, single_floor_apartment
from .builder import FILL, HomeBuilder, plan_routine, trig

DOOR = SensorType.DOOR
APPLIANCE = SensorType.APPLIANCE
FLUSH = SensorType.FLUSH
PRESSURE = SensorType.PRESSURE
MOTION = SensorType.MOTION


def build_house_a() -> HomeSpec:
    """houseA: 14 reed/appliance/flush sensors, one resident, 16 activities."""
    b = HomeBuilder("houseA", single_floor_apartment(extra_rooms=["toilet"]))

    microwave = b.binary("microwave", APPLIANCE, "kitchen")
    toilet_door = b.binary("hall_toilet_door", DOOR, "toilet")
    bath_door = b.binary("hall_bathroom_door", DOOR, "bathroom")
    cups = b.binary("cups_cupboard", DOOR, "kitchen")
    fridge = b.binary("fridge", DOOR, "kitchen")
    plates = b.binary("plates_cupboard", DOOR, "kitchen")
    frontdoor = b.binary("frontdoor", DOOR, "hall")
    dishwasher = b.binary("dishwasher", APPLIANCE, "kitchen")
    flush = b.binary("toilet_flush", FLUSH, "toilet")
    freezer = b.binary("freezer", DOOR, "kitchen")
    pans = b.binary("pans_cupboard", DOOR, "kitchen")
    washer = b.binary("washingmachine", APPLIANCE, "bathroom")
    groceries = b.binary("groceries_cupboard", DOOR, "kitchen")
    bed_door = b.binary("hall_bedroom_door", DOOR, "bedroom")

    b.activity(
        "leave_house", "hall", FILL,
        triggers=[trig(frontdoor, "start"), trig(frontdoor, "end")],
        away=True,
    )
    b.activity(
        "use_toilet", "toilet", (3, 6),
        triggers=[
            trig(toilet_door, "start"),
            trig(toilet_door, "end"),
            trig(flush, "end"),
        ],
    )
    b.activity(
        "take_shower", "bathroom", (12, 20),
        triggers=[trig(bath_door, "start"), trig(bath_door, "end")],
    )
    b.activity("brush_teeth", "bathroom", (3, 5), triggers=[trig(bath_door, "start")])
    b.activity(
        "go_to_bed", "bedroom", FILL,
        triggers=[trig(bed_door, "start")],
        still=True,
    )
    b.activity(
        "prepare_breakfast", "kitchen", (10, 14),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cups, "continuous", period=20.0),
            trig(groceries, "continuous", period=20.0),
        ],
    )
    b.activity(
        "prepare_dinner", "kitchen", (25, 31),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(pans, "continuous", period=20.0),
            trig(freezer, "continuous", period=20.0),
            trig(plates, "end"),
        ],
    )
    b.activity(
        "get_drink", "kitchen", (2, 4),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cups, "continuous", period=20.0),
        ],
    )
    b.activity("get_snack", "kitchen", (2, 5), triggers=[trig(groceries, "start")])
    b.activity(
        "use_microwave", "kitchen", (3, 7),
        triggers=[trig(microwave, "continuous", period=20.0)],
    )
    b.activity(
        "wash_dishes", "kitchen", (8, 13),
        triggers=[trig(dishwasher, "continuous", period=20.0)],
    )
    b.activity(
        "do_laundry", "bathroom", (5, 9),
        triggers=[trig(washer, "continuous", period=20.0)],
    )
    b.activity(
        "unload_dishwasher", "kitchen", (3, 6),
        triggers=[trig(dishwasher, "start"), trig(plates, "end")],
    )
    b.activity("eat_breakfast", "living_room", FILL)
    b.activity("eat_dinner", "living_room", FILL)
    b.activity("relax_livingroom", "living_room", FILL)

    b.routine(
        plan_routine(
            b.catalog,
            [
                ("use_toilet", 3 * 60 + 10, 6, 0.45),
                ("go_to_bed", 3 * 60 + 35, 5),
                ("use_toilet", 7 * 60, 3),
                ("take_shower", 7 * 60 + 20, 3, 0.25),
                ("brush_teeth", 7 * 60 + 55, 2),
                ("prepare_breakfast", 8 * 60 + 10, 3),
                ("eat_breakfast", 8 * 60 + 35, 3),
                ("unload_dishwasher", 8 * 60 + 50, 3, 0.45),
                ("leave_house", 9 * 60 + 10, 4),
                ("get_drink", 17 * 60 + 20, 5, 0.3),
                ("relax_livingroom", 17 * 60 + 45, 6),
                ("use_microwave", 18 * 60 + 30, 4, 0.45),
                ("prepare_dinner", 18 * 60 + 55, 4),
                ("eat_dinner", 19 * 60 + 40, 4),
                ("wash_dishes", 20 * 60 + 15, 4, 0.45),
                ("do_laundry", 20 * 60 + 45, 4, 0.45),
                ("relax_livingroom", 21 * 60 + 10, 5),
                ("get_snack", 22 * 60, 4, 0.4),
                ("use_toilet", 22 * 60 + 30, 3),
                ("brush_teeth", 22 * 60 + 50, 2),
                ("go_to_bed", 23 * 60 + 10, 4),
            ],
        )
    )
    return b.build()


def build_house_b() -> HomeSpec:
    """houseB: 27 sensors including PIRs and pressure mats, 25 activities."""
    b = HomeBuilder(
        "houseB", single_floor_apartment(extra_rooms=["toilet", "balcony"])
    )

    frontdoor = b.binary("frontdoor", DOOR, "hall")
    balcony = b.binary("balcony_door", DOOR, "balcony")
    toilet_door = b.binary("toilet_door", DOOR, "toilet")
    bath_door = b.binary("bathroom_door", DOOR, "bathroom")
    bed_door = b.binary("bedroom_door", DOOR, "bedroom")
    fridge = b.binary("fridge", DOOR, "kitchen")
    freezer = b.binary("freezer", DOOR, "kitchen")
    microwave = b.binary("microwave", APPLIANCE, "kitchen")
    oven = b.binary("oven", APPLIANCE, "kitchen")
    stove = b.binary("stove_lid", DOOR, "kitchen")
    pans = b.binary("pans_cupboard", DOOR, "kitchen")
    cups = b.binary("cups_cupboard", DOOR, "kitchen")
    plates = b.binary("plates_cupboard", DOOR, "kitchen")
    groceries = b.binary("groceries_cupboard", DOOR, "kitchen")
    cutlery = b.binary("cutlery_drawer", DOOR, "kitchen")
    dishwasher = b.binary("dishwasher", APPLIANCE, "kitchen")
    washer = b.binary("washingmachine", APPLIANCE, "bathroom")
    flush = b.binary("toilet_flush", FLUSH, "toilet")
    bed_mat = b.binary("pressure_bed", PRESSURE, "bedroom")
    couch_mat = b.binary("pressure_couch", PRESSURE, "living_room")
    b.binary("pir_kitchen", MOTION, "kitchen")
    b.binary("pir_living", MOTION, "living_room")
    b.binary("pir_bedroom", MOTION, "bedroom")
    b.binary("pir_bathroom", MOTION, "bathroom")
    b.binary("pir_hall", MOTION, "hall")
    wardrobe = b.binary("wardrobe", DOOR, "bedroom")
    medicine = b.binary("medicine_cabinet", DOOR, "kitchen")

    b.activity(
        "leave_house", "hall", FILL,
        triggers=[trig(frontdoor, "start"), trig(frontdoor, "end")],
        away=True,
    )
    b.activity(
        "use_toilet", "toilet", (3, 6),
        triggers=[
            trig(toilet_door, "start"),
            trig(toilet_door, "end"),
            trig(flush, "end"),
        ],
    )
    b.activity(
        "take_shower", "bathroom", (12, 20),
        triggers=[trig(bath_door, "start"), trig(bath_door, "end")],
    )
    b.activity("brush_teeth", "bathroom", (3, 5), triggers=[trig(bath_door, "start")])
    b.activity(
        "sleep", "bedroom", FILL,
        triggers=[
            trig(bed_door, "start"),
            trig(bed_mat, "continuous", period=20.0),
        ],
        still=True,
    )
    b.activity("get_dressed", "bedroom", (5, 9), triggers=[trig(wardrobe, "start")])
    b.activity(
        "take_medicine", "kitchen", (1, 3), triggers=[trig(medicine, "start")]
    )
    b.activity(
        "prepare_breakfast", "kitchen", (10, 14),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cups, "continuous", period=20.0),
            trig(cutlery, "continuous", period=20.0),
            trig(groceries, "continuous", period=20.0),
        ],
    )
    b.activity("eat_breakfast", "living_room", FILL)
    b.activity(
        "prepare_lunch", "kitchen", (10, 15),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(plates, "continuous", period=20.0),
            trig(cutlery, "continuous", period=20.0),
        ],
    )
    b.activity("eat_lunch", "living_room", FILL)
    b.activity(
        "prepare_dinner", "kitchen", (25, 31),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(stove, "continuous", period=20.0),
            trig(pans, "continuous", period=20.0),
            trig(freezer, "continuous", period=20.0),
            trig(plates, "end"),
        ],
    )
    b.activity("eat_dinner", "living_room", FILL)
    b.activity(
        "use_oven", "kitchen", (20, 26),
        triggers=[trig(oven, "continuous", period=20.0)],
    )
    b.activity(
        "get_drink", "kitchen", (2, 4),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cups, "continuous", period=20.0),
        ],
    )
    b.activity("get_snack", "kitchen", (2, 5), triggers=[trig(groceries, "start")])
    b.activity(
        "use_microwave", "kitchen", (3, 7),
        triggers=[trig(microwave, "continuous", period=20.0)],
    )
    b.activity(
        "wash_dishes", "kitchen", (8, 13),
        triggers=[trig(dishwasher, "continuous", period=20.0)],
    )
    b.activity(
        "unload_dishwasher", "kitchen", (3, 6),
        triggers=[trig(dishwasher, "start"), trig(plates, "end")],
    )
    b.activity(
        "do_laundry", "bathroom", (5, 9),
        triggers=[trig(washer, "continuous", period=20.0)],
    )
    b.activity(
        "watch_tv", "living_room", FILL,
        triggers=[trig(couch_mat, "continuous", period=20.0)],
    )
    b.activity(
        "read_couch", "living_room", FILL,
        triggers=[trig(couch_mat, "continuous", period=20.0)],
    )
    b.activity(
        "balcony_break", "balcony", (5, 12),
        triggers=[trig(balcony, "start"), trig(balcony, "end")],
    )
    b.activity(
        "clean_kitchen", "kitchen", (15, 22),
        triggers=[trig(cutlery, "continuous", period=20.0)],
    )
    b.activity("relax_livingroom", "living_room", FILL)

    b.routine(
        plan_routine(
            b.catalog,
            [
                ("use_toilet", 3 * 60 + 15, 6, 0.45),
                ("sleep", 3 * 60 + 40, 5),
                ("use_toilet", 7 * 60 + 5, 3),
                ("take_shower", 7 * 60 + 25, 3, 0.2),
                ("get_dressed", 8 * 60, 3),
                ("prepare_breakfast", 8 * 60 + 20, 3),
                ("eat_breakfast", 8 * 60 + 45, 3),
                ("take_medicine", 9 * 60, 3),
                ("brush_teeth", 9 * 60 + 12, 2),
                ("leave_house", 9 * 60 + 28, 4),
                ("prepare_lunch", 12 * 60 + 30, 5, 0.7),
                ("eat_lunch", 13 * 60, 5, 0.7),
                ("get_drink", 16 * 60 + 45, 5, 0.3),
                ("balcony_break", 17 * 60 + 10, 5, 0.45),
                ("watch_tv", 17 * 60 + 40, 6),
                ("use_microwave", 18 * 60 + 35, 4, 0.45),
                ("prepare_dinner", 19 * 60, 4),
                ("use_oven", 19 * 60 + 40, 4, 0.45),
                ("eat_dinner", 20 * 60 + 35, 4),
                ("wash_dishes", 21 * 60 + 5, 4, 0.4),
                ("unload_dishwasher", 21 * 60 + 30, 3),
                ("do_laundry", 21 * 60 + 50, 3, 0.45),
                ("clean_kitchen", 22 * 60 + 10, 3, 0.45),
                ("relax_livingroom", 22 * 60 + 28, 3),
                ("read_couch", 22 * 60 + 40, 3, 0.35),
                ("get_snack", 22 * 60 + 55, 3, 0.4),
                ("use_toilet", 23 * 60 + 10, 2),
                ("brush_teeth", 23 * 60 + 22, 2),
                ("sleep", 23 * 60 + 34, 2),
            ],
        )
    )
    return b.build()


def build_house_c() -> HomeSpec:
    """houseC: 23 sensors, denser per-room co-firing, 27 activities."""
    b = HomeBuilder(
        "houseC", single_floor_apartment(extra_rooms=["toilet", "study"])
    )

    frontdoor = b.binary("frontdoor", DOOR, "hall")
    toilet_door = b.binary("toilet_door", DOOR, "toilet")
    bath_door = b.binary("bathroom_door", DOOR, "bathroom")
    bed_door = b.binary("bedroom_door", DOOR, "bedroom")
    study_door = b.binary("study_door", DOOR, "study")
    fridge = b.binary("fridge", DOOR, "kitchen")
    freezer = b.binary("freezer", DOOR, "kitchen")
    microwave = b.binary("microwave", APPLIANCE, "kitchen")
    stove = b.binary("stove_lid", DOOR, "kitchen")
    pans = b.binary("pans_cupboard", DOOR, "kitchen")
    cups = b.binary("cups_cupboard", DOOR, "kitchen")
    cutlery = b.binary("cutlery_drawer", DOOR, "kitchen")
    dishwasher = b.binary("dishwasher", APPLIANCE, "kitchen")
    washer = b.binary("washingmachine", APPLIANCE, "bathroom")
    flush = b.binary("toilet_flush", FLUSH, "toilet")
    bed_mat = b.binary("pressure_bed", PRESSURE, "bedroom")
    desk_mat = b.binary("pressure_desk_chair", PRESSURE, "study")
    couch_mat = b.binary("pressure_couch", PRESSURE, "living_room")
    # Two motion sensors per busy room: houseC's sensors co-fire more,
    # giving it a higher correlation degree than houseA/houseB.
    b.motion_grid("pir_kitchen", "kitchen", 2)
    b.motion_grid("pir_living", "living_room", 2)
    b.binary("pir_bathroom_01", MOTION, "bathroom")

    b.activity(
        "leave_house", "hall", FILL,
        triggers=[trig(frontdoor, "start"), trig(frontdoor, "end")],
        away=True,
    )
    b.activity(
        "use_toilet", "toilet", (3, 6),
        triggers=[
            trig(toilet_door, "start"),
            trig(toilet_door, "end"),
            trig(flush, "end"),
        ],
    )
    b.activity(
        "take_shower", "bathroom", (12, 20),
        triggers=[trig(bath_door, "start"), trig(bath_door, "end")],
    )
    b.activity("brush_teeth", "bathroom", (3, 5), triggers=[trig(bath_door, "start")])
    b.activity("shave", "bathroom", (4, 8))
    b.activity(
        "sleep", "bedroom", FILL,
        triggers=[
            trig(bed_door, "start"),
            trig(bed_mat, "continuous", period=20.0),
        ],
        still=True,
    )
    b.activity(
        "nap", "bedroom", (30, 50),
        triggers=[trig(bed_mat, "continuous", period=20.0)],
        still=True,
    )
    b.activity(
        "prepare_breakfast", "kitchen", (10, 14),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cups, "continuous", period=20.0),
            trig(cutlery, "continuous", period=20.0),
        ],
    )
    b.activity("eat_breakfast", "kitchen", (10, 15))
    b.activity(
        "prepare_lunch", "kitchen", (10, 15),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cutlery, "continuous", period=20.0),
        ],
    )
    b.activity("eat_lunch", "kitchen", (12, 18))
    b.activity(
        "prepare_dinner", "kitchen", (25, 31),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(stove, "continuous", period=20.0),
            trig(pans, "continuous", period=20.0),
            trig(freezer, "continuous", period=20.0),
        ],
    )
    b.activity("eat_dinner", "living_room", FILL)
    b.activity(
        "get_drink", "kitchen", (2, 4),
        triggers=[
            trig(fridge, "continuous", period=20.0),
            trig(cups, "continuous", period=20.0),
        ],
    )
    b.activity(
        "use_microwave", "kitchen", (3, 7),
        triggers=[trig(microwave, "continuous", period=20.0)],
    )
    b.activity(
        "wash_dishes", "kitchen", (8, 13),
        triggers=[trig(dishwasher, "continuous", period=20.0)],
    )
    b.activity(
        "unload_dishwasher", "kitchen", (3, 6),
        triggers=[trig(dishwasher, "start")],
    )
    b.activity(
        "do_laundry", "bathroom", (5, 9),
        triggers=[trig(washer, "continuous", period=20.0)],
    )
    b.activity(
        "work_study", "study", FILL,
        triggers=[
            trig(study_door, "start"),
            trig(desk_mat, "continuous", period=20.0),
        ],
    )
    b.activity("study_break", "study", (5, 9), triggers=[trig(study_door, "end")])
    b.activity(
        "watch_tv", "living_room", FILL,
        triggers=[trig(couch_mat, "continuous", period=20.0)],
    )
    b.activity(
        "read_couch", "living_room", FILL,
        triggers=[trig(couch_mat, "continuous", period=20.0)],
    )
    b.activity("listen_radio", "living_room", FILL)
    b.activity(
        "clean_kitchen", "kitchen", (15, 22),
        triggers=[trig(cutlery, "continuous", period=20.0)],
    )
    b.activity("exercise", "living_room", (20, 28))
    b.activity("phone_call", "living_room", (5, 12))
    b.activity("water_plants", "living_room", (4, 8))

    b.routine(
        plan_routine(
            b.catalog,
            [
                ("use_toilet", 3 * 60 + 20, 6, 0.45),
                ("sleep", 3 * 60 + 45, 5),
                ("use_toilet", 7 * 60 + 30, 3),
                ("take_shower", 7 * 60 + 50, 3, 0.2),
                ("shave", 8 * 60 + 25, 3, 0.45),
                ("prepare_breakfast", 8 * 60 + 45, 3),
                ("eat_breakfast", 9 * 60 + 5, 3),
                ("brush_teeth", 9 * 60 + 30, 2),
                ("work_study", 9 * 60 + 45, 4),
                ("study_break", 10 * 60 + 45, 4, 0.4),
                ("exercise", 11 * 60 + 10, 4, 0.45),
                ("prepare_lunch", 12 * 60 + 20, 4),
                ("eat_lunch", 12 * 60 + 45, 4),
                ("leave_house", 13 * 60 + 30, 5, 0.3),
                ("nap", 15 * 60, 5, 0.45),
                ("work_study", 16 * 60 + 10, 5),
                ("phone_call", 17 * 60 + 15, 4, 0.45),
                ("get_drink", 17 * 60 + 40, 3, 0.3),
                ("water_plants", 18 * 60 + 5, 3),
                ("use_microwave", 18 * 60 + 22, 3, 0.45),
                ("prepare_dinner", 18 * 60 + 45, 3),
                ("eat_dinner", 19 * 60 + 30, 3),
                ("wash_dishes", 20 * 60 + 5, 3, 0.4),
                ("unload_dishwasher", 20 * 60 + 30, 3),
                ("do_laundry", 20 * 60 + 50, 3, 0.45),
                ("clean_kitchen", 21 * 60 + 10, 3, 0.45),
                ("watch_tv", 21 * 60 + 45, 4),
                ("listen_radio", 22 * 60 + 30, 4, 0.45),
                ("read_couch", 22 * 60 + 50, 4, 0.45),
                ("use_toilet", 23 * 60 + 10, 3),
                ("brush_teeth", 23 * 60 + 28, 2),
                ("sleep", 23 * 60 + 42, 3),
            ],
        )
    )
    return b.build()
