"""Dataset registry: the ten Table 4.1 datasets behind one loader.

>>> from repro.datasets import load_dataset
>>> data = load_dataset("houseA", seed=7)
>>> data.trace.duration_hours
576.0

``hours`` can be overridden (e.g. scaled down for quick experiments); the
default is the Table 4.1 duration.  Loading is seeded and fully
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..model import Trace
from ..smarthome import HomeSimulator, HomeSpec
from . import casas, isla, testbed


@dataclass(frozen=True)
class DatasetInfo:
    """One row of Table 4.1."""

    name: str
    hours: float
    binary_sensors: int
    numeric_sensors: int
    actuators: int
    activities: int
    residents: int
    family: str  # "isla", "casas", or "testbed"
    builder: Callable[[], HomeSpec]

    @property
    def total_sensors(self) -> int:
        return self.binary_sensors + self.numeric_sensors


@dataclass
class LoadedDataset:
    """A generated dataset: its spec, trace and registry-level metadata."""

    info: DatasetInfo
    spec: HomeSpec
    trace: Trace
    seed: int

    @property
    def name(self) -> str:
        return self.info.name


def _info(
    name: str,
    hours: float,
    census: tuple,
    activities: int,
    residents: int,
    family: str,
    builder: Callable[[], HomeSpec],
) -> DatasetInfo:
    binary, numeric, actuators = census
    return DatasetInfo(
        name, hours, binary, numeric, actuators, activities, residents, family, builder
    )


#: Table 4.1, one entry per dataset.
DATASETS: Dict[str, DatasetInfo] = {
    info.name: info
    for info in [
        _info("houseA", 576, (14, 0, 0), 16, 1, "isla", isla.build_house_a),
        _info("houseB", 648, (27, 0, 0), 25, 1, "isla", isla.build_house_b),
        _info("houseC", 480, (23, 0, 0), 27, 1, "isla", isla.build_house_c),
        _info("twor", 1104, (68, 3, 0), 9, 2, "casas", casas.build_twor),
        _info("hh102", 1488, (33, 79, 0), 30, 1, "casas", casas.build_hh102),
        _info("D_houseA", 600, (6, 31, 8), 16, 1, "testbed", testbed.build_d_house_a),
        _info("D_houseB", 650, (6, 31, 8), 14, 1, "testbed", testbed.build_d_house_b),
        _info("D_houseC", 500, (6, 31, 8), 18, 1, "testbed", testbed.build_d_house_c),
        _info("D_twor", 1200, (6, 31, 8), 9, 2, "testbed", testbed.build_d_twor),
        _info("D_hh102", 1500, (6, 31, 8), 26, 1, "testbed", testbed.build_d_hh102),
    ]
}

#: The five publicly-available third-party datasets.
THIRD_PARTY_NAMES: List[str] = ["houseA", "houseB", "houseC", "twor", "hh102"]
#: The five POSTECH-testbed datasets.
TESTBED_NAMES: List[str] = ["D_houseA", "D_houseB", "D_houseC", "D_twor", "D_hh102"]
ALL_NAMES: List[str] = THIRD_PARTY_NAMES + TESTBED_NAMES


def dataset_info(name: str) -> DatasetInfo:
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(ALL_NAMES)}"
        ) from None


def build_spec(name: str) -> HomeSpec:
    """The :class:`HomeSpec` for a dataset (devices, routines, rules)."""
    return dataset_info(name).builder()


def load_dataset(
    name: str, seed: int = 0, hours: Optional[float] = None
) -> LoadedDataset:
    """Generate dataset *name* with the given seed.

    ``hours`` overrides the Table 4.1 duration (useful for scaled-down
    experiments; the per-experiment scale used by the benchmark harness is
    recorded in EXPERIMENTS.md).
    """
    info = dataset_info(name)
    spec = info.builder()
    duration = (hours if hours is not None else info.hours) * 3600.0
    trace = HomeSimulator(spec).simulate(duration, seed=seed)
    return LoadedDataset(info, spec, trace, seed)
