"""The POSTECH testbed and its five D_* datasets.

The thesis deployed 37 sensors (6 binary + 31 numeric across nine
modalities) and 8 actuators in a one-bedroom smart home (Fig. 4.1), then
had volunteers replay the activity sequences of the five third-party
datasets; the resulting recordings are **D_houseA/B/C**, **D_twor** and
**D_hh102** (Table 4.1).  This module reproduces that construction: one
shared deployment (devices, automation rules, activity catalog), five
routines whose distinct-activity counts match the table (16/14/18/9/26),
with D_twor run by two residents.

The actuator couplings follow Ch. IV: Hue bulbs on room motion, a WeMo fan
on kitchen temperature, a WeMo humidifier on bedroom humidity, blinds on
daylight, and the Echo during music listening — giving DICE a rich G2A/A2G
structure to learn.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..model import SensorType
from ..smarthome import (
    ActivityActuatorRule,
    DaylightBlindRule,
    EffectSwitchRule,
    HomeSpec,
    NumericEffect,
    OccupancyLightRule,
    postech_floorplan,
)
from ..smarthome import profile_for
from .builder import FILL, HomeBuilder, plan_routine, trig


def _testbed_builder(name: str) -> HomeBuilder:
    """Devices, automations and the activity catalog shared by all D_*."""
    b = HomeBuilder(name, postech_floorplan())

    # --- binary sensors (6) -------------------------------------------- #
    b.binary("motion_kitchen", SensorType.MOTION, "kitchen")
    b.binary("motion_bathroom", SensorType.MOTION, "bathroom")
    b.binary("motion_bedroom", SensorType.MOTION, "bedroom")
    b.binary("motion_living", SensorType.MOTION, "living_room")
    flame = b.binary("flame_kitchen", SensorType.FLAME, "kitchen")
    gas = b.binary("gas_kitchen", SensorType.GAS, "kitchen")

    # --- numeric sensors (31) ------------------------------------------ #
    lights = {
        "kitchen": b.numeric("l_kitchen", SensorType.LIGHT, "kitchen"),
        "bathroom": b.numeric("l_bathroom", SensorType.LIGHT, "bathroom"),
        "bedroom": b.numeric("l_bedroom", SensorType.LIGHT, "bedroom"),
        "living_1": b.numeric("l_living_1", SensorType.LIGHT, "living_room"),
        "living_2": b.numeric("l_living_2", SensorType.LIGHT, "living_room"),
        "entrance": b.numeric("l_entrance", SensorType.LIGHT, "entrance"),
    }
    t_kitchen = b.numeric("t_kitchen", SensorType.TEMPERATURE, "kitchen")
    t_bathroom = b.numeric("t_bathroom", SensorType.TEMPERATURE, "bathroom")
    b.numeric("t_bedroom", SensorType.TEMPERATURE, "bedroom")
    b.numeric("t_living_1", SensorType.TEMPERATURE, "living_room")
    b.numeric("t_living_2", SensorType.TEMPERATURE, "living_room")
    b.numeric("t_entrance", SensorType.TEMPERATURE, "entrance")
    h_bathroom = b.numeric("h_bathroom", SensorType.HUMIDITY, "bathroom")
    h_bedroom = b.numeric("h_bedroom", SensorType.HUMIDITY, "bedroom")
    b.numeric("h_kitchen", SensorType.HUMIDITY, "kitchen")
    b.numeric("h_living_1", SensorType.HUMIDITY, "living_room")
    b.numeric("h_living_2", SensorType.HUMIDITY, "living_room")
    b.numeric("h_entrance", SensorType.HUMIDITY, "entrance")
    s_kitchen = b.numeric("s_kitchen", SensorType.SOUND, "kitchen")
    s_bathroom = b.numeric("s_bathroom", SensorType.SOUND, "bathroom")
    b.numeric("s_bedroom", SensorType.SOUND, "bedroom")
    s_living = b.numeric("s_living", SensorType.SOUND, "living_room")
    b.numeric("u_entrance", SensorType.ULTRASONIC, "entrance")
    b.numeric("u_kitchen", SensorType.ULTRASONIC, "kitchen")
    b.numeric("u_bedroom", SensorType.ULTRASONIC, "bedroom")
    w_bed = b.numeric("w_bed", SensorType.WEIGHT, "bedroom")
    w_couch = b.numeric("w_couch", SensorType.WEIGHT, "living_room")
    b.numeric("beacon_kitchen", SensorType.LOCATION, "kitchen")
    b.numeric("beacon_bathroom", SensorType.LOCATION, "bathroom")
    b.numeric("beacon_bedroom", SensorType.LOCATION, "bedroom")
    b.numeric("beacon_living", SensorType.LOCATION, "living_room")

    # --- actuators (8) -------------------------------------------------- #
    hue_kitchen = b.actuator("hue_kitchen", SensorType.BULB, "kitchen")
    hue_bedroom = b.actuator("hue_bedroom", SensorType.BULB, "bedroom")
    hue_living = b.actuator("hue_living", SensorType.BULB, "living_room")
    fan = b.actuator("wemo_fan", SensorType.SWITCH, "kitchen")
    humidifier = b.actuator("wemo_humidifier", SensorType.SWITCH, "bedroom")
    blind_bedroom = b.actuator("blind_bedroom", SensorType.BLIND, "bedroom")
    blind_living = b.actuator("blind_living", SensorType.BLIND, "living_room")
    speaker = b.actuator("echo_speaker", SensorType.SPEAKER, "living_room")

    # --- automation rules (Ch. IV couplings) ----------------------------- #
    b.rule(
        OccupancyLightRule(
            hue_kitchen, "kitchen", [lights["kitchen"]], night_only=False
        )
    )
    b.rule(
        OccupancyLightRule(
            hue_bedroom, "bedroom", [lights["bedroom"]], night_only=False
        )
    )
    b.rule(
        OccupancyLightRule(
            hue_living,
            "living_room",
            [lights["living_2"]],
            night_only=False,
        )
    )
    b.rule(EffectSwitchRule(fan, t_kitchen))
    b.rule(EffectSwitchRule(humidifier, h_bedroom))
    b.rule(DaylightBlindRule(blind_bedroom))
    b.rule(DaylightBlindRule(blind_living, delay_seconds=240.0))
    b.rule(
        ActivityActuatorRule(
            speaker, "listen_music", feedback=[NumericEffect(s_living, 16.0)]
        )
    )

    # --- activity catalog ------------------------------------------------ #
    cook_triggers = [
        trig(flame, "continuous", period=20.0),
        trig(gas, "continuous", period=20.0),
    ]
    b.activity(
        "sleep", "bedroom", FILL, effects=[(w_bed, 70.0), (h_bedroom, 8.0)],
        still=True,
    )
    b.activity("nap", "bedroom", (30, 50), effects=[(w_bed, 70.0)], still=True)
    b.activity(
        "use_toilet", "bathroom", (3, 6), effects=[(s_bathroom, 8.0)]
    )
    b.activity(
        "take_shower", "bathroom", (12, 18),
        effects=[(h_bathroom, 25.0), (t_bathroom, 3.0), (s_bathroom, 16.0)],
    )
    b.activity("brush_teeth", "bathroom", (3, 5), effects=[(s_bathroom, 10.0)])
    b.activity("groom", "bathroom", (5, 9))
    b.activity(
        "make_coffee", "kitchen", (4, 7), effects=[(s_kitchen, 12.0)]
    )
    b.activity(
        "prepare_breakfast", "kitchen", (10, 14),
        triggers=cook_triggers,
        effects=[(t_kitchen, 4.0), (s_kitchen, 16.0)],
    )
    b.activity("eat_breakfast", "living_room", (10, 15), effects=[(s_living, 8.0)])
    b.activity(
        "prepare_lunch", "kitchen", (12, 16),
        triggers=cook_triggers,
        effects=[(t_kitchen, 4.0), (s_kitchen, 16.0)],
    )
    b.activity("eat_lunch", "living_room", (12, 18), effects=[(s_living, 8.0)])
    b.activity(
        "prepare_dinner", "kitchen", (25, 31),
        triggers=cook_triggers,
        effects=[(t_kitchen, 5.0), (s_kitchen, 16.0)],
    )
    b.activity("eat_dinner", "living_room", (15, 22), effects=[(s_living, 8.0)])
    b.activity("get_drink", "kitchen", (2, 4))
    b.activity("get_snack", "kitchen", (3, 6))
    b.activity(
        "wash_dishes", "kitchen", (8, 13), effects=[(s_kitchen, 14.0)]
    )
    b.activity("clean_kitchen", "kitchen", (15, 21), effects=[(s_kitchen, 10.0)])
    b.activity(
        "do_laundry", "bathroom", (8, 12), effects=[(s_bathroom, 14.0)]
    )
    b.activity(
        "watch_tv", "living_room", FILL,
        effects=[(s_living, 14.0), (w_couch, 70.0)],
    )
    b.activity("listen_music", "living_room", (35, 45), effects=[(w_couch, 70.0)])
    b.activity(
        "read_couch", "living_room", FILL, effects=[(w_couch, 70.0)]
    )
    b.activity("relax_living", "living_room", FILL, effects=[(w_couch, 70.0)])
    b.activity(
        "work_laptop", "living_room", FILL, effects=[(w_couch, 70.0)]
    )
    b.activity("exercise", "living_room", (18, 24), effects=[(s_living, 10.0)])
    b.activity("phone_call", "living_room", (6, 12), effects=[(s_living, 10.0)])
    b.activity("water_plants", "living_room", (4, 7))
    b.activity("take_medicine", "kitchen", (1, 3))
    b.activity("leave_house", "entrance", FILL, away=True)
    b.activity("enter_home", "entrance", (2, 4))
    return b


def _build(name: str, plans: Sequence[Sequence[Tuple]]) -> HomeSpec:
    b = _testbed_builder(name)
    for plan in plans:
        b.routine(plan_routine(b.catalog, plan))
    # Testbed light sensors report while the smart bulbs hold them high,
    # so lit-room groups carry their light bits (raises the correlation
    # degree — the paper reports the testbed's 10.6 as the highest of all
    # datasets).
    overrides = {}
    for device in b.registry.numeric_sensors():
        if device.sensor_type is SensorType.LIGHT:
            overrides[device.device_id] = profile_for(SensorType.LIGHT).with_(
                held_interval=45.0
            )
    return b.build(profile_overrides=overrides)


def build_d_house_a() -> HomeSpec:
    """D_houseA: the houseA activity sequence replayed in the testbed (16)."""
    return _build(
        "D_houseA",
        [
            [
                ("use_toilet", 3 * 60 + 10, 6, 0.45),
                ("sleep", 3 * 60 + 35, 5),
                ("use_toilet", 7 * 60, 3),
                ("take_shower", 7 * 60 + 20, 3, 0.25),
                ("brush_teeth", 7 * 60 + 55, 2),
                ("prepare_breakfast", 8 * 60 + 10, 3),
                ("eat_breakfast", 8 * 60 + 35, 3),
                ("leave_house", 9 * 60 + 10, 4),
                ("enter_home", 17 * 60 + 10, 5),
                ("get_drink", 17 * 60 + 20, 4, 0.3),
                ("relax_living", 17 * 60 + 45, 5),
                ("prepare_dinner", 18 * 60 + 55, 4),
                ("eat_dinner", 19 * 60 + 40, 4),
                ("wash_dishes", 20 * 60 + 15, 4, 0.45),
                ("do_laundry", 20 * 60 + 45, 4, 0.45),
                ("watch_tv", 21 * 60 + 10, 5),
                ("get_snack", 22 * 60, 4, 0.4),
                ("use_toilet", 22 * 60 + 30, 3),
                ("brush_teeth", 22 * 60 + 50, 2),
                ("sleep", 23 * 60 + 10, 4),
            ]
        ],
    )


def build_d_house_b() -> HomeSpec:
    """D_houseB: the houseB sequence in the testbed (14 reproducible)."""
    return _build(
        "D_houseB",
        [
            [
                ("use_toilet", 3 * 60 + 15, 6, 0.45),
                ("sleep", 3 * 60 + 40, 5),
                ("use_toilet", 7 * 60 + 5, 3),
                ("take_shower", 7 * 60 + 25, 3, 0.2),
                ("brush_teeth", 8 * 60, 2),
                ("prepare_breakfast", 8 * 60 + 15, 3),
                ("eat_breakfast", 8 * 60 + 40, 3),
                ("leave_house", 9 * 60 + 20, 4),
                ("enter_home", 16 * 60 + 45, 5),
                ("get_drink", 16 * 60 + 55, 4, 0.3),
                ("watch_tv", 17 * 60 + 20, 5),
                ("prepare_dinner", 19 * 60, 4),
                ("eat_dinner", 19 * 60 + 45, 4),
                ("wash_dishes", 20 * 60 + 20, 4, 0.4),
                ("listen_music", 20 * 60 + 50, 4, 0.45),
                ("watch_tv", 21 * 60 + 45, 4),
                ("use_toilet", 23 * 60, 3),
                ("brush_teeth", 23 * 60 + 18, 2),
                ("sleep", 23 * 60 + 32, 2),
            ]
        ],
    )


def build_d_house_c() -> HomeSpec:
    """D_houseC: the houseC sequence in the testbed (18)."""
    return _build(
        "D_houseC",
        [
            [
                ("use_toilet", 3 * 60 + 20, 6, 0.45),
                ("sleep", 3 * 60 + 45, 5),
                ("use_toilet", 7 * 60 + 30, 3),
                ("take_shower", 7 * 60 + 50, 3, 0.2),
                ("groom", 8 * 60 + 25, 3, 0.45),
                ("prepare_breakfast", 8 * 60 + 45, 3),
                ("eat_breakfast", 9 * 60 + 10, 3),
                ("brush_teeth", 9 * 60 + 35, 2),
                ("work_laptop", 9 * 60 + 50, 4),
                ("prepare_lunch", 12 * 60 + 20, 4),
                ("eat_lunch", 12 * 60 + 45, 4),
                ("leave_house", 13 * 60 + 35, 5, 0.3),
                ("work_laptop", 16 * 60 + 10, 5),
                ("get_drink", 17 * 60 + 42, 3, 0.3),
                ("prepare_dinner", 18 * 60 + 45, 3),
                ("eat_dinner", 19 * 60 + 30, 3),
                ("wash_dishes", 20 * 60 + 5, 3, 0.4),
                ("clean_kitchen", 20 * 60 + 35, 3, 0.45),
                ("watch_tv", 21 * 60 + 15, 4),
                ("listen_music", 22 * 60 + 15, 3, 0.45),
                ("use_toilet", 23 * 60 + 12, 3),
                ("brush_teeth", 23 * 60 + 30, 2),
                ("sleep", 23 * 60 + 44, 2),
            ]
        ],
    )


def build_d_twor() -> HomeSpec:
    """D_twor: the twor sequence in the testbed, two residents (9)."""
    resident_1 = [
        ("use_toilet", 3 * 60 + 25, 6, 0.45),
        ("sleep", 3 * 60 + 50, 5),
        ("take_shower", 7 * 60 + 30, 3),
        ("prepare_dinner", 8 * 60 + 5, 3),
        ("eat_dinner", 8 * 60 + 45, 3),
        ("work_laptop", 9 * 60 + 25, 4),
        ("prepare_dinner", 18 * 60, 4),
        ("eat_dinner", 18 * 60 + 45, 3),
        ("watch_tv", 19 * 60 + 30, 4),
        ("clean_kitchen", 22 * 60, 3, 0.45),
        ("use_toilet", 22 * 60 + 45, 3),
        ("sleep", 23 * 60 + 10, 3),
    ]
    resident_2 = [
        ("use_toilet", 4 * 60 + 5, 6, 0.45),
        ("sleep", 4 * 60 + 30, 5),
        ("take_shower", 8 * 60 + 40, 3),
        ("leave_house", 9 * 60 + 30, 4),
        ("watch_tv", 19 * 60, 4),
        ("clean_kitchen", 21 * 60 + 15, 3, 0.45),
        ("use_toilet", 23 * 60 + 25, 3),
        ("sleep", 23 * 60 + 50, 2),
    ]
    return _build("D_twor", [resident_1, resident_2])


def build_d_hh102() -> HomeSpec:
    """D_hh102: the hh102 sequence in the testbed (26 reproducible)."""
    return _build(
        "D_hh102",
        [
            [
                ("use_toilet", 3 * 60 + 20, 6, 0.45),
                ("sleep", 3 * 60 + 45, 5),
                ("use_toilet", 7 * 60, 3),
                ("take_shower", 7 * 60 + 20, 3, 0.25),
                ("groom", 7 * 60 + 55, 3),
                ("make_coffee", 8 * 60 + 15, 3),
                ("prepare_breakfast", 8 * 60 + 28, 3),
                ("eat_breakfast", 8 * 60 + 52, 3),
                ("take_medicine", 9 * 60 + 15, 2),
                ("wash_dishes", 9 * 60 + 25, 3, 0.4),
                ("work_laptop", 9 * 60 + 45, 4),
                ("prepare_lunch", 12 * 60 + 25, 3),
                ("eat_lunch", 12 * 60 + 50, 3),
                ("leave_house", 13 * 60 + 40, 4, 0.35),
                ("enter_home", 15 * 60 + 20, 4),
                ("nap", 15 * 60 + 30, 5, 0.45),
                ("get_snack", 16 * 60 + 30, 3, 0.45),
                ("read_couch", 16 * 60 + 50, 4),
                ("exercise", 17 * 60 + 20, 3, 0.45),
                ("phone_call", 17 * 60 + 50, 3, 0.45),
                ("prepare_dinner", 18 * 60 + 40, 3),
                ("eat_dinner", 19 * 60 + 25, 3),
                ("wash_dishes", 19 * 60 + 58, 3, 0.35),
                ("take_medicine", 20 * 60 + 20, 2),
                ("clean_kitchen", 20 * 60 + 32, 3, 0.45),
                ("water_plants", 21 * 60 + 5, 3, 0.45),
                ("watch_tv", 21 * 60 + 25, 4),
                ("do_laundry", 22 * 60 + 10, 3, 0.45),
                ("brush_teeth", 23 * 60 + 10, 3),
                ("sleep", 23 * 60 + 30, 3),
            ]
        ],
    )
