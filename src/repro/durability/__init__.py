"""Durability layer: write-ahead journal, at-least-once alert outbox,
and crash recovery for the hardened gateway and the fleet.

The contract, pinned by the chaos harness (:mod:`repro.faults.crash`):
for any crash point — including one that tears the final journal record
mid-write — ``checkpoint + journal-tail replay`` reproduces the exact
alert stream of an uninterrupted run, and every alert is delivered to its
sink at least once (with dead-letters recorded after retry exhaustion).
"""

from .journal import (
    FSYNC_POLICIES,
    JOURNAL_APPENDS_TOTAL,
    JOURNAL_REPLAYED_TOTAL,
    JOURNAL_ROTATIONS_TOTAL,
    JOURNAL_TORN_TOTAL,
    JOURNAL_TRUNCATED_TOTAL,
    MAX_RECORD_BYTES,
    EventJournal,
    JournalError,
    encode_record,
    frame_payload,
    iter_segment,
    list_segments,
    read_segment,
    replay_records,
    segment_name,
)
from .outbox import (
    OUTBOX_DEAD_LETTER_TOTAL,
    OUTBOX_DEDUPED_TOTAL,
    OUTBOX_DELIVERED_TOTAL,
    OUTBOX_OFFERED_TOTAL,
    OUTBOX_RETRIES_TOTAL,
    AlertOutbox,
    AlertSink,
    CallbackSink,
    FileSink,
    FlakySink,
    alert_record,
)
from .provenance import (
    PROVENANCE_DEDUPED_TOTAL,
    PROVENANCE_RECORDS_TOTAL,
    PROVENANCE_WAL,
    ProvenanceLog,
)
from .runtime import (
    RECOVERY_SECONDS_HISTOGRAM,
    DurableOnlineDice,
    encode_event_frame,
    event_to_record,
    record_to_event,
)
from .fleet import (
    DURABILITY_SCHEMA,
    DURABILITY_SIDECAR,
    DurableFleetGateway,
)

__all__ = [
    "FSYNC_POLICIES",
    "JOURNAL_APPENDS_TOTAL",
    "JOURNAL_REPLAYED_TOTAL",
    "JOURNAL_ROTATIONS_TOTAL",
    "JOURNAL_TORN_TOTAL",
    "JOURNAL_TRUNCATED_TOTAL",
    "MAX_RECORD_BYTES",
    "EventJournal",
    "JournalError",
    "encode_record",
    "frame_payload",
    "iter_segment",
    "list_segments",
    "read_segment",
    "replay_records",
    "segment_name",
    "OUTBOX_DEAD_LETTER_TOTAL",
    "OUTBOX_DEDUPED_TOTAL",
    "OUTBOX_DELIVERED_TOTAL",
    "OUTBOX_OFFERED_TOTAL",
    "OUTBOX_RETRIES_TOTAL",
    "AlertOutbox",
    "AlertSink",
    "CallbackSink",
    "FileSink",
    "FlakySink",
    "alert_record",
    "PROVENANCE_DEDUPED_TOTAL",
    "PROVENANCE_RECORDS_TOTAL",
    "PROVENANCE_WAL",
    "ProvenanceLog",
    "RECOVERY_SECONDS_HISTOGRAM",
    "DurableOnlineDice",
    "encode_event_frame",
    "event_to_record",
    "record_to_event",
    "DURABILITY_SCHEMA",
    "DURABILITY_SIDECAR",
    "DurableFleetGateway",
]
