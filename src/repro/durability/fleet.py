"""Fleet-wide durability: per-shard/per-home journals + shared outbox.

:class:`DurableFleetGateway` gives the sharded router the same crash
contract the standalone gateway gets from
:class:`~repro.durability.runtime.DurableOnlineDice`:

* each hosted home owns one :class:`~repro.durability.journal.EventJournal`
  under a shared root (``<root>/<home_id>/``) — journals are keyed by
  *home*, not by shard, so resharding on restore replays correctly (the
  home → shard map is a pure hash and carries no journal state);
* every routed event is journaled before dispatch; unrouted events are
  dropped by the router as always and never journaled (they carry no
  state to recover);
* fleet alerts get per-home sequence numbers and flow into one shared
  :class:`~repro.durability.outbox.AlertOutbox`, with home-qualified ids;
* :meth:`save_checkpoint` writes the fleet checkpoint directory plus a
  ``durability.json`` sidecar (per-home journal epochs and alert
  sequences), then rotates and truncates every home journal;
* :meth:`recover` = restore fleet checkpoint + replay every home's
  journal tail, home by home — per-home alert streams are reproduced
  exactly for any shard count (chaos-harness pinned).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..core import DiceDetector
from ..model import Event
from ..streaming.checkpoint import CheckpointError, write_json_atomic
from ..fleet import FleetAlert, FleetGateway, restore_fleet
from .journal import EventJournal, replay_records
from .outbox import AlertOutbox, alert_record
from .provenance import ProvenanceLog
from .runtime import (
    RECOVERY_BUCKETS,
    RECOVERY_SECONDS_HISTOGRAM,
    encode_event_frame,
    record_to_event,
)

PathLike = Union[str, os.PathLike]

DURABILITY_SIDECAR = "durability.json"
#: /2 added ``ingest_seqs`` (per-home journaled-event counts, the ingest
#: service's resume points); /1 sidecars load fine — the counts rebuild
#: from the journal tail alone in that case.
DURABILITY_SCHEMA = "dice-fleet-durability/2"

_log = telemetry.get_logger("repro.durability.fleet")


class DurableFleetGateway:
    """A :class:`FleetGateway` wrapped with per-home journals + outbox."""

    def __init__(
        self,
        gateway: FleetGateway,
        journal_root: PathLike,
        *,
        fsync: str = "never",
        fsync_interval: int = 64,
        outbox: Optional[AlertOutbox] = None,
        alert_seqs: Optional[Dict[str, int]] = None,
        ingest_seqs: Optional[Dict[str, int]] = None,
    ) -> None:
        self.gateway = gateway
        self.journal_root = os.fspath(journal_root)
        self.fsync = fsync
        self.fsync_interval = int(fsync_interval)
        self.outbox = outbox
        self.alert_seqs: Dict[str, int] = dict(alert_seqs or {})
        #: Per-home count of journaled events — advances exactly when a
        #: routed event's frame hits its journal, so it doubles as the
        #: ingest service's exact resume sequence.
        self.ingest_seqs: Dict[str, int] = dict(ingest_seqs or {})
        self.journals: Dict[str, EventJournal] = {}
        self.provenance_logs: Dict[str, ProvenanceLog] = {}
        for home_id in gateway.home_ids:
            self._journal_of(home_id)

    def _journal_of(self, home_id: str) -> EventJournal:
        journal = self.journals.get(home_id)
        if journal is None:
            journal = EventJournal(
                os.path.join(self.journal_root, home_id),
                fsync=self.fsync,
                fsync_interval=self.fsync_interval,
                metrics=self.gateway.runtime_of(home_id).metrics,
            )
            self.journals[home_id] = journal
        return journal

    def _provenance_log_of(self, home_id: str) -> ProvenanceLog:
        log = self.provenance_logs.get(home_id)
        if log is None:
            log = ProvenanceLog(
                os.path.join(self.journal_root, home_id),
                metrics=self.gateway.runtime_of(home_id).metrics,
            )
            self.provenance_logs[home_id] = log
        return log

    # ------------------------------------------------------------------ #

    @property
    def alerts(self) -> List[FleetAlert]:
        return self.gateway.alerts

    @property
    def num_shards(self) -> int:
        return self.gateway.num_shards

    def __len__(self) -> int:
        return len(self.gateway)

    def __contains__(self, home_id: str) -> bool:
        return home_id in self.gateway

    @property
    def home_ids(self) -> List[str]:
        return self.gateway.home_ids

    @property
    def unrouted(self) -> int:
        return self.gateway.unrouted

    def runtime_of(self, home_id: str):
        return self.gateway.runtime_of(home_id)

    def metrics_snapshot(self) -> dict:
        return self.gateway.metrics_snapshot()

    def alerts_of(self, home_id: str):
        return self.gateway.alerts_of(home_id)

    def _publish(self, fresh: List[FleetAlert]) -> List[FleetAlert]:
        homes: List[str] = []
        for fleet_alert in fresh:
            seq = self.alert_seqs.get(fleet_alert.home_id, 0) + 1
            self.alert_seqs[fleet_alert.home_id] = seq
            if self.outbox is not None:
                self.outbox.offer(
                    alert_record(fleet_alert.home_id, seq, fleet_alert.alert)
                )
            if fleet_alert.home_id not in homes:
                homes.append(fleet_alert.home_id)
        # Archive each involved home's sealed evidence records beside its
        # event journal (dedup makes recovery re-publishes idempotent).
        for home_id in homes:
            recorder = self.gateway.runtime_of(home_id).provenance
            if not recorder.enabled:
                continue
            log = self._provenance_log_of(home_id)
            for record in recorder.drain_unjournaled():
                log.append(record)
        return fresh

    def dispatch(self, events: Iterable[Tuple[str, Event]]) -> List[FleetAlert]:
        """Journal each routed event into its home's journal, then route.

        The batch is materialised so the journal write strictly precedes
        the dispatch that consumes it — the write-ahead invariant.
        """
        batch = list(events)
        for home_id, event in batch:
            if home_id in self.gateway:
                self._journal_of(home_id).append_frame(encode_event_frame(event))
                self.ingest_seqs[home_id] = self.ingest_seqs.get(home_id, 0) + 1
        return self._publish(self.gateway.dispatch(batch))

    def finish(self, ends=None) -> List[FleetAlert]:
        return self._publish(self.gateway.finish(ends))

    def finish_home(self, home_id: str, end=None) -> List[FleetAlert]:
        """Close one home's stream (the service's per-connection ``end``)."""
        return self._publish(self.gateway.finish_home(home_id, end))

    def deliver_pending(self) -> dict:
        if self.outbox is None:
            return {"delivered": 0, "dead": 0}
        return self.outbox.deliver_pending()

    def health(self) -> dict:
        report = self.gateway.health()
        report["durability"] = {
            "journal_epochs": {
                home_id: journal.epoch
                for home_id, journal in sorted(self.journals.items())
            },
            "alert_seqs": dict(sorted(self.alert_seqs.items())),
            "ingest_seqs": dict(sorted(self.ingest_seqs.items())),
            "outbox_pending": 0 if self.outbox is None else len(self.outbox.pending),
        }
        return report

    def close(self) -> None:
        for journal in self.journals.values():
            journal.close()

    # ------------------------------------------------------------------ #
    # Checkpoint & recovery
    # ------------------------------------------------------------------ #

    def save_checkpoint(self, directory: PathLike) -> None:
        """Fleet checkpoint + durability sidecar, then rotate/truncate.

        Same crash-safety order as the standalone path: journals synced,
        checkpoint (manifest last) written, sidecar written, and only then
        are superseded segments dropped.
        """
        directory = os.fspath(directory)
        for journal in self.journals.values():
            journal.sync()
        self.gateway.save_checkpoint(directory)
        epochs = {
            home_id: journal.epoch for home_id, journal in self.journals.items()
        }
        write_json_atomic(
            {
                "schema": DURABILITY_SCHEMA,
                "journal_epochs": epochs,
                "alert_seqs": dict(self.alert_seqs),
                "ingest_seqs": dict(self.ingest_seqs),
            },
            os.path.join(directory, DURABILITY_SIDECAR),
        )
        for home_id, journal in self.journals.items():
            superseded = epochs[home_id]
            journal.rotate(superseded + 1)
            journal.truncate_through(superseded)
        _log.info(
            "durable_fleet_checkpoint_saved",
            directory=directory,
            homes=len(self.journals),
        )

    @classmethod
    def recover(
        cls,
        detectors: Dict[str, DiceDetector],
        journal_root: PathLike,
        *,
        checkpoint_dir: Optional[PathLike] = None,
        gateway: Optional[FleetGateway] = None,
        num_shards: Optional[int] = None,
        fsync: str = "never",
        fsync_interval: int = 64,
        outbox: Optional[AlertOutbox] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
        **runtime_kwargs,
    ) -> Tuple["DurableFleetGateway", List[FleetAlert]]:
        """Fleet-wide checkpoint + journal-tail restart.

        When *checkpoint_dir* holds a manifest, the fleet is restored from
        it (optionally resharded via *num_shards* — journals are per-home,
        so the replay is shard-layout independent); otherwise the caller
        must supply a freshly built *gateway* to replay into (the
        crashed-before-first-checkpoint case).

        Returns ``(durable_fleet, replayed_alerts)``.
        """
        t0 = time.perf_counter()
        sidecar: dict = {}
        manifest_path = (
            None
            if checkpoint_dir is None
            else os.path.join(os.fspath(checkpoint_dir), "manifest.json")
        )
        if manifest_path is not None and os.path.exists(manifest_path):
            gateway = restore_fleet(
                detectors,
                checkpoint_dir,
                num_shards=num_shards,
                metrics=metrics,
                **runtime_kwargs,
            )
            sidecar_path = os.path.join(os.fspath(checkpoint_dir), DURABILITY_SIDECAR)
            if os.path.exists(sidecar_path):
                import json

                with open(sidecar_path, "r", encoding="utf-8") as handle:
                    sidecar = json.load(handle)
        elif gateway is None:
            raise CheckpointError(
                "no fleet checkpoint to restore and no fresh gateway supplied"
            )
        epochs = sidecar.get("journal_epochs", {})
        seqs = sidecar.get("alert_seqs", {})
        durable = cls(
            gateway,
            journal_root,
            fsync=fsync,
            fsync_interval=fsync_interval,
            outbox=outbox,
            alert_seqs=seqs,
            ingest_seqs=sidecar.get("ingest_seqs", {}),
        )
        replayed: List[FleetAlert] = []
        total_records = 0
        for home_id in gateway.home_ids:
            runtime = gateway.runtime_of(home_id)
            records, _ = replay_records(
                os.path.join(os.fspath(journal_root), home_id),
                after_epoch=epochs.get(home_id, -1),
                metrics=runtime.metrics,
            )
            total_records += len(records)
            fresh: List[FleetAlert] = []
            replayed_events = 0
            for record in records:
                if record.get("type") != "event":
                    continue
                replayed_events += 1
                for alert in runtime.ingest(record_to_event(record)):
                    fresh.append(FleetAlert(home_id, alert))
            if replayed_events:
                # The journal tail holds events appended after the sidecar
                # was written — the resume sequence advances past them.
                durable.ingest_seqs[home_id] = (
                    durable.ingest_seqs.get(home_id, 0) + replayed_events
                )
            gateway.alerts.extend(fresh)
            durable._publish(fresh)
            replayed.extend(fresh)
            journal = durable._journal_of(home_id)
            if journal.segments():
                journal.rotate(journal.epoch + 1)
        elapsed = time.perf_counter() - t0
        gateway.metrics.histogram(
            RECOVERY_SECONDS_HISTOGRAM,
            "Wall-clock seconds to restore checkpoint and replay the journal tail",
            buckets=RECOVERY_BUCKETS,
        ).observe(elapsed)
        _log.info(
            "fleet_recovered",
            journal_root=os.fspath(journal_root),
            homes=len(gateway),
            replayed=total_records,
            seconds=round(elapsed, 6),
        )
        return durable, replayed
