"""Per-home append-only write-ahead journal (the durability backbone).

Between two checkpoints, everything the gateway has accepted lives only in
process memory — a crash silently loses buffered windows and in-flight
alerts, which is exactly the fault class DICE exists to surface.  The
journal closes that hole: every **accepted** event is appended here
*before* it touches any windowing state, so that

    restore(checkpoint) + replay(journal tail)  ==  uninterrupted run

holds exactly (the chaos harness in :mod:`repro.faults.crash` kills
runtimes at random points and asserts it).

Wire format — one record::

    +----------------+----------------+------------------+
    | length (u32 BE)| CRC32 (u32 BE) | payload (JSON)   |
    +----------------+----------------+------------------+

The payload is compact UTF-8 JSON with sorted keys; floats survive the
round trip losslessly (``json`` uses ``repr``, shortest-round-trip in
Python 3).  The CRC covers the payload bytes, so a torn tail — the
half-written record a power cut leaves behind — is detected and safely
discarded rather than replayed as garbage.

Segments rotate on checkpoint epochs: the writer appends to
``journal-<epoch>.wal``; a checkpoint at epoch *e* supersedes every
record in segments ≤ *e*, so they are truncated and a fresh segment
*e*+1 is opened.  Recovery replays only the segments **after** the
checkpoint's epoch, in epoch order.

Fsync policy is the classic durability/throughput dial:

* ``"never"``   — rely on the OS page cache (default; survives process
  crashes, not power loss);
* ``"interval"`` — ``os.fsync`` every *fsync_interval* appends (bounded
  loss under power failure);
* ``"always"``  — ``os.fsync`` after every append (no loss, slowest).
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from typing import Iterator, List, Optional, Tuple, Union

from .. import telemetry

PathLike = Union[str, os.PathLike]

#: Legal fsync policies, loosest to strictest.
FSYNC_POLICIES = ("never", "interval", "always")

SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".wal"
_SEGMENT_RE = re.compile(r"^journal-(\d{8})\.wal$")

_HEADER = struct.Struct(">II")  # (payload length, CRC32 of payload)

#: A single journal record may not exceed this (sanity bound: a frame
#: whose length field decodes past it is corruption, not a real record).
MAX_RECORD_BYTES = 1 << 20

JOURNAL_APPENDS_TOTAL = "dice_journal_appends_total"
JOURNAL_REPLAYED_TOTAL = "dice_journal_replayed_total"
JOURNAL_TORN_TOTAL = "dice_journal_torn_records_total"
JOURNAL_TRUNCATED_TOTAL = "dice_journal_truncated_segments_total"
JOURNAL_ROTATIONS_TOTAL = "dice_journal_rotations_total"

_log = telemetry.get_logger("repro.durability.journal")


class JournalError(ValueError):
    """The journal is corrupt beyond the recoverable torn-tail case."""


def frame_payload(payload: bytes) -> bytes:
    """Wrap already-serialized payload bytes in the record frame."""
    if len(payload) > MAX_RECORD_BYTES:
        raise JournalError(f"record of {len(payload)} bytes exceeds {MAX_RECORD_BYTES}")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_record(record: dict) -> bytes:
    """Frame one record: length prefix + CRC32 + compact JSON payload."""
    return frame_payload(
        json.dumps(
            record, sort_keys=True, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
    )


def iter_segment(path: PathLike) -> Iterator[Tuple[Optional[dict], bool]]:
    """Yield ``(record, is_torn)`` for one segment file.

    Well-formed records yield ``(dict, False)``.  A torn tail — short
    header, short payload, CRC mismatch, or undecodable JSON at the end of
    the scan — yields a single final ``(None, True)`` and stops; bytes
    after a torn record are never interpreted (a partial write means the
    writer died *here*, so nothing after it can be trusted).
    """
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                yield None, True
                return
            length, crc = _HEADER.unpack(header)
            if length > MAX_RECORD_BYTES:
                yield None, True
                return
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                yield None, True
                return
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                yield None, True
                return
            yield record, False


def read_segment(path: PathLike) -> Tuple[List[dict], bool]:
    """All well-formed records of a segment, plus a torn-tail flag."""
    records: List[dict] = []
    torn = False
    for record, is_torn in iter_segment(path):
        if is_torn:
            torn = True
        else:
            records.append(record)
    return records, torn


def segment_name(epoch: int) -> str:
    return f"{SEGMENT_PREFIX}{epoch:08d}{SEGMENT_SUFFIX}"


def list_segments(directory: PathLike) -> List[Tuple[int, str]]:
    """Sorted ``(epoch, path)`` for every segment under *directory*."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


class EventJournal:
    """Append-only, segmented, CRC-checked journal for one home.

    Parameters
    ----------
    directory:
        The journal directory (created if missing).  One journal per home;
        a fleet keeps one directory per home under a shared root.
    fsync:
        One of :data:`FSYNC_POLICIES`; see the module docstring.
    fsync_interval:
        Appends between ``fsync`` calls under the ``"interval"`` policy.
    metrics:
        Telemetry registry for append/rotate/truncate counters; defaults
        to the disabled registry so library use records nothing.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        fsync: str = "never",
        fsync_interval: int = 64,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if fsync_interval < 1:
            raise ValueError("fsync_interval must be at least 1")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval = int(fsync_interval)
        self.metrics = metrics if metrics is not None else telemetry.NULL_REGISTRY
        self._appends_counter = self.metrics.counter(
            JOURNAL_APPENDS_TOTAL, "Records appended to the event journal"
        )
        self._rotations_counter = self.metrics.counter(
            JOURNAL_ROTATIONS_TOTAL, "Journal segment rotations"
        )
        self._truncated_counter = self.metrics.counter(
            JOURNAL_TRUNCATED_TOTAL, "Journal segments truncated by checkpoints"
        )
        existing = list_segments(self.directory)
        self.epoch = existing[-1][0] if existing else 0
        self._handle = None
        self._since_sync = 0

    # ------------------------------------------------------------------ #

    @property
    def current_segment_path(self) -> str:
        return os.path.join(self.directory, segment_name(self.epoch))

    def segments(self) -> List[Tuple[int, str]]:
        return list_segments(self.directory)

    def _open(self):
        if self._handle is None:
            self._handle = open(self.current_segment_path, "ab")
        return self._handle

    def append(self, record: dict) -> None:
        """Durably (per policy) append one record to the current segment."""
        self.append_frame(encode_record(record))

    def append_frame(self, frame: bytes) -> None:
        """Append an already-framed record (see :func:`frame_payload`).

        The ingest hot path pays an append per event; callers that can
        pre-encode (cached device ids, direct float formatting) skip the
        generic ``json.dumps`` here.
        """
        handle = self._handle
        if handle is None:
            handle = self._open()
        handle.write(frame)
        if self.fsync == "always":
            handle.flush()
            os.fsync(handle.fileno())
        elif self.fsync == "interval":
            self._since_sync += 1
            if self._since_sync >= self.fsync_interval:
                handle.flush()
                os.fsync(handle.fileno())
                self._since_sync = 0
        self._appends_counter.inc()

    def sync(self) -> None:
        """Flush and fsync the current segment regardless of policy."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._since_sync = 0

    def rotate(self, epoch: Optional[int] = None) -> int:
        """Close the current segment and start a new one at *epoch*
        (default: current + 1).  Returns the new epoch."""
        if epoch is None:
            epoch = self.epoch + 1
        if epoch <= self.epoch and self.segments():
            raise ValueError(
                f"cannot rotate backwards: epoch {epoch} <= current {self.epoch}"
            )
        self.close()
        self.epoch = int(epoch)
        # Create the new segment eagerly: the epoch is re-derived from the
        # directory on restart, so it must be recorded on disk even if the
        # process dies before the first post-rotation append — otherwise a
        # rotate + truncate cycle that empties the directory would restart
        # at an epoch the checkpoint has already superseded, and appends
        # made there would be skipped on the next recovery.
        self._open()
        self._rotations_counter.inc()
        _log.debug("journal_rotated", directory=self.directory, epoch=self.epoch)
        return self.epoch

    def truncate_through(self, epoch: int) -> int:
        """Delete every segment with epoch ≤ *epoch* (superseded by a
        checkpoint at that epoch).  Returns the number removed."""
        removed = 0
        for seg_epoch, path in self.segments():
            if seg_epoch <= epoch and path != self.current_segment_path:
                os.remove(path)
                removed += 1
        if removed:
            self._truncated_counter.inc(removed)
            _log.debug(
                "journal_truncated",
                directory=self.directory,
                through_epoch=epoch,
                segments=removed,
            )
        return removed

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
        self._since_sync = 0

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_records(
    directory: PathLike,
    *,
    after_epoch: int = -1,
    metrics: Optional["telemetry.MetricsRegistry"] = None,
) -> Tuple[List[dict], int]:
    """All records in segments with epoch > *after_epoch*, in order.

    Returns ``(records, torn)`` where *torn* counts discarded torn-tail
    records.  A torn tail is legal only in the **final** segment — that is
    where a crash can land mid-write.  A torn record in any earlier
    segment means records after it were already lost when later segments
    were written, so replaying across the gap would silently reorder
    history: that raises :class:`JournalError` instead.
    """
    registry = metrics if metrics is not None else telemetry.NULL_REGISTRY
    replayed_counter = registry.counter(
        JOURNAL_REPLAYED_TOTAL, "Journal records replayed during recovery"
    )
    torn_counter = registry.counter(
        JOURNAL_TORN_TOTAL, "Torn (CRC-failed) journal records discarded"
    )
    segments = [
        (epoch, path)
        for epoch, path in list_segments(directory)
        if epoch > after_epoch
    ]
    records: List[dict] = []
    torn = 0
    for index, (epoch, path) in enumerate(segments):
        segment_records, segment_torn = read_segment(path)
        if segment_torn and index != len(segments) - 1:
            raise JournalError(
                f"segment {path} has a torn record but is not the newest "
                f"segment — the journal is corrupt, not merely crash-cut"
            )
        records.extend(segment_records)
        if segment_torn:
            torn += 1
            _log.warning(
                "journal_torn_tail_discarded", segment=path, epoch=epoch
            )
    if records:
        replayed_counter.inc(len(records))
    if torn:
        torn_counter.inc(torn)
    return records, torn
