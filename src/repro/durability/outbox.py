"""At-least-once alert delivery: journal first, deliver until acked.

An alert that never reaches its sink is a silent failure of the whole
system — the detector did its job and nobody heard.  The outbox gives
alerts the same durability the event journal gives events:

1. every alert is **journaled** (``outbox.wal``, same length+CRC frame as
   the event journal) before any delivery attempt;
2. delivery to a pluggable :class:`AlertSink` retries with exponential
   backoff plus jitter, up to a bounded attempt budget;
3. a delivered alert is **acked** (``acks.wal``) so a restart does not
   re-send it; an exhausted alert goes to the dead-letter file
   (``dead-letter.jsonl``) and is acked as dead so it stops blocking;
4. on restart the outbox re-offers every journaled-but-unacked alert —
   *at-least-once*: a crash between delivery and ack re-delivers, and the
   deterministic alert id lets sinks (and the outbox itself, on
   re-offer) dedup the copies.

Alert ids are pure functions of ``(home, sequence, alert content)``, so a
recovery replay that reproduces the alert stream reproduces the ids —
redelivery after a crash is idempotent end to end.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Union

from .. import telemetry
from ..streaming import Alert
from ..telemetry.provenance import alert_body, trace_id
from .journal import encode_record, read_segment

PathLike = Union[str, os.PathLike]

OUTBOX_WAL = "outbox.wal"
ACKS_WAL = "acks.wal"
DEAD_LETTER = "dead-letter.jsonl"

OUTBOX_OFFERED_TOTAL = "dice_outbox_offered_total"
OUTBOX_DELIVERED_TOTAL = "dice_outbox_delivered_total"
OUTBOX_RETRIES_TOTAL = "dice_outbox_retries_total"
OUTBOX_DEAD_LETTER_TOTAL = "dice_outbox_dead_letter_total"
OUTBOX_DEDUPED_TOTAL = "dice_outbox_deduped_total"

_log = telemetry.get_logger("repro.durability.outbox")


def alert_record(home_id: str, seq: int, alert: Alert) -> dict:
    """The JSON form of one alert, with its deterministic delivery id.

    The id hashes the home, the per-home sequence number, and the full
    alert content — any run that reproduces the alert stream (the
    recovery guarantee) reproduces the ids, which is what makes
    redelivery after a crash idempotent.
    """
    body = alert_body(home_id, seq, alert)
    return {"id": trace_id(body), **body}


class AlertSink:
    """Delivery target interface: raise to signal a failed attempt."""

    def deliver(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class FileSink(AlertSink):
    """Append each delivered alert as one JSON line (the default target)."""

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)

    def deliver(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


class CallbackSink(AlertSink):
    """Deliver by calling a function (webhooks, queues, test probes)."""

    def __init__(self, callback: Callable[[dict], None]) -> None:
        self.callback = callback

    def deliver(self, record: dict) -> None:
        self.callback(record)


class FlakySink(AlertSink):
    """Test/chaos sink: fail the first *failures* attempts per alert id.

    With ``failures`` below the outbox's attempt budget every alert is
    eventually delivered (exercising the retry path); above it, alerts
    dead-letter (exercising exhaustion).
    """

    def __init__(self, inner: AlertSink, failures: int = 1) -> None:
        self.inner = inner
        self.failures = int(failures)
        self.attempts: Dict[str, int] = {}
        self.delivered: List[dict] = []

    def deliver(self, record: dict) -> None:
        seen = self.attempts.get(record["id"], 0)
        self.attempts[record["id"]] = seen + 1
        if seen < self.failures:
            raise ConnectionError(
                f"flaky sink: attempt {seen + 1} for {record['id']}"
            )
        self.inner.deliver(record)
        self.delivered.append(record)


class AlertOutbox:
    """Durable, retrying, deduplicating alert dispatcher for one process.

    Parameters
    ----------
    directory:
        Where the outbox journal, ack log and dead-letter file live.
    sink:
        The delivery target.
    max_attempts:
        Delivery attempts per alert before it dead-letters.
    base_delay / max_delay / jitter:
        Exponential backoff: attempt *n* waits
        ``min(max_delay, base_delay * 2**(n-1)) * (1 + jitter * U[0,1))``.
    sleep:
        Injectable clock (tests pass a recorder; production the default).
    rng:
        Jitter source; ``random.Random`` instance or anything with
        ``random()``.  Takes precedence over *jitter_seed*.
    jitter_seed:
        Seed for the default jitter source, so chaos trials and retry
        tests replay a byte-identical backoff schedule; two outboxes with
        the same seed (and no explicit *rng*) draw the same delays.
        Defaults to 0 — the backoff sequence has always been
        deterministic-by-default.
    """

    def __init__(
        self,
        directory: PathLike,
        sink: AlertSink,
        *,
        max_attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        rng=None,
        jitter_seed: Optional[int] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.sink = sink
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.sleep = sleep
        if rng is None:
            import random

            rng = random.Random(0 if jitter_seed is None else jitter_seed)
        self.rng = rng
        self.metrics = metrics if metrics is not None else telemetry.NULL_REGISTRY
        self._offered_counter = self.metrics.counter(
            OUTBOX_OFFERED_TOTAL, "Alerts offered to the outbox"
        )
        self._delivered_counter = self.metrics.counter(
            OUTBOX_DELIVERED_TOTAL, "Alerts successfully delivered to the sink"
        )
        self._retries_counter = self.metrics.counter(
            OUTBOX_RETRIES_TOTAL, "Failed delivery attempts that were retried"
        )
        self._dead_counter = self.metrics.counter(
            OUTBOX_DEAD_LETTER_TOTAL, "Alerts dead-lettered after retry exhaustion"
        )
        self._deduped_counter = self.metrics.counter(
            OUTBOX_DEDUPED_TOTAL, "Alert offers suppressed as duplicates"
        )
        self._wal_path = os.path.join(self.directory, OUTBOX_WAL)
        self._acks_path = os.path.join(self.directory, ACKS_WAL)
        self._dead_path = os.path.join(self.directory, DEAD_LETTER)
        self._journaled: Dict[str, dict] = {}
        self._acked: Dict[str, str] = {}
        self._load()

    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        """Rebuild journaled/acked sets from disk (restart path).

        Both logs tolerate a torn tail — a crash mid-append loses at most
        the record being written, which for the ack log just means one
        redelivery (at-least-once, by design).
        """
        if os.path.exists(self._wal_path):
            records, _ = read_segment(self._wal_path)
            for record in records:
                self._journaled[record["id"]] = record
        if os.path.exists(self._acks_path):
            acks, _ = read_segment(self._acks_path)
            for ack in acks:
                self._acked[ack["id"]] = ack.get("outcome", "delivered")

    @property
    def pending(self) -> List[dict]:
        """Journaled alerts not yet acked, in journal order."""
        return [
            record
            for record in self._journaled.values()
            if record["id"] not in self._acked
        ]

    def dead_letters(self) -> List[dict]:
        """The dead-letter file's records (empty when it does not exist)."""
        if not os.path.exists(self._dead_path):
            return []
        with open(self._dead_path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def delivered_ids(self) -> List[str]:
        return sorted(
            record_id
            for record_id, outcome in self._acked.items()
            if outcome == "delivered"
        )

    # ------------------------------------------------------------------ #

    def offer(self, record: dict) -> bool:
        """Journal one alert for delivery; returns False for duplicates.

        A record whose id is already journaled (a recovery replay
        re-offering history) is suppressed — the original journal entry
        and its delivery state stand.
        """
        self._offered_counter.inc()
        if record["id"] in self._journaled:
            self._deduped_counter.inc()
            return False
        with open(self._wal_path, "ab") as handle:
            handle.write(encode_record(record))
        self._journaled[record["id"]] = record
        return True

    def _ack(self, record_id: str, outcome: str) -> None:
        with open(self._acks_path, "ab") as handle:
            handle.write(encode_record({"id": record_id, "outcome": outcome}))
        self._acked[record_id] = outcome

    def _backoff(self, attempt: int) -> float:
        delay = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        return delay * (1.0 + self.jitter * self.rng.random())

    def deliver_pending(self) -> Dict[str, int]:
        """Drive every pending alert to delivery or the dead-letter file.

        Returns ``{"delivered": n, "dead": m}``.  At-least-once: an alert
        is acked only *after* the sink accepted it, so a crash inside this
        loop re-sends on the next run rather than losing anything.
        """
        delivered = dead = 0
        for record in self.pending:
            outcome = self._deliver_one(record)
            if outcome == "delivered":
                delivered += 1
            else:
                dead += 1
        return {"delivered": delivered, "dead": dead}

    def _deliver_one(self, record: dict) -> str:
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                self.sink.deliver(record)
            except Exception as exc:  # noqa: BLE001 - sinks may raise anything
                last_error = exc
                if attempt < self.max_attempts:
                    self._retries_counter.inc()
                    self.sleep(self._backoff(attempt))
                continue
            self._ack(record["id"], "delivered")
            self._delivered_counter.inc()
            return "delivered"
        with open(self._dead_path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "record": record,
                        "attempts": self.max_attempts,
                        "error": str(last_error),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        self._ack(record["id"], "dead")
        self._dead_counter.inc()
        _log.warning(
            "alert_dead_lettered",
            id=record["id"],
            kind=record.get("kind"),
            attempts=self.max_attempts,
            error=str(last_error),
        )
        return "dead"
