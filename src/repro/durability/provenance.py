"""Durable provenance archive: evidence records journaled beside alerts.

The in-memory :class:`~repro.telemetry.provenance.ProvenanceRecorder` ring
forgets old records by design; the durable gateway drains it into a
``provenance.wal`` file in the home's journal directory so ``repro
explain`` works long after the alert scrolled out of the ring — and after
a crash.  The file uses the event journal's length+CRC framing, is
append-only, and is **never truncated** by checkpoints: it is the audit
archive, not replay state.

Deduplication is the crash-safety story.  Recovery replays the journal
tail, the runtime regenerates byte-identical evidence records (everything
in them derives from event time and fitted state), and the log skips ids
it already holds — so a record written before the crash is never
duplicated, and one lost in a torn tail is simply re-written from the
replay.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from .. import telemetry
from ..telemetry.provenance import canonical_record_bytes
from .journal import frame_payload, read_segment

PathLike = Union[str, os.PathLike]

PROVENANCE_WAL = "provenance.wal"

PROVENANCE_RECORDS_TOTAL = "dice_provenance_records_total"
PROVENANCE_DEDUPED_TOTAL = "dice_provenance_deduped_total"

_log = telemetry.get_logger("repro.durability.provenance")


class ProvenanceLog:
    """Append-only, deduplicating archive of alert evidence records.

    One per home, living next to the event journal.  ``append`` is
    idempotent over trace ids; a torn tail (crash mid-append) loses at
    most the record being written, which the recovery replay regenerates.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, PROVENANCE_WAL)
        self.metrics = metrics if metrics is not None else telemetry.NULL_REGISTRY
        self._appended_counter = self.metrics.counter(
            PROVENANCE_RECORDS_TOTAL, "Evidence records appended to the provenance log"
        )
        self._deduped_counter = self.metrics.counter(
            PROVENANCE_DEDUPED_TOTAL,
            "Evidence-record appends suppressed as duplicates",
        )
        self._ids: Dict[str, int] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        records, torn = read_segment(self.path)
        for index, record in enumerate(records):
            self._ids[record["id"]] = index
        if torn:
            # Shear the partial frame off: readers stop at the first torn
            # frame, so an append landing after the garbage would be
            # archived in the index yet invisible on disk.  Every frame is
            # ``frame_payload(canonical_record_bytes(...))``, so the valid
            # prefix length is exactly reconstructible from the records.
            valid = sum(
                len(frame_payload(canonical_record_bytes(record)))
                for record in records
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
            _log.warning(
                "provenance_log_torn_tail", path=self.path, kept_records=len(records)
            )

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._ids

    def append(self, record: dict) -> bool:
        """Archive one evidence record; returns False for known ids."""
        if record["id"] in self._ids:
            self._deduped_counter.inc()
            return False
        with open(self.path, "ab") as handle:
            handle.write(frame_payload(canonical_record_bytes(record)))
        self._ids[record["id"]] = len(self._ids)
        self._appended_counter.inc()
        return True

    def append_many(self, records: List[dict]) -> int:
        appended = 0
        for record in records:
            if self.append(record):
                appended += 1
        return appended

    def records(self) -> List[dict]:
        """All archived records, append order (re-read from disk)."""
        if not os.path.exists(self.path):
            return []
        records, _ = read_segment(self.path)
        return records

    def find(self, selector: str) -> Optional[dict]:
        """Newest archived record whose trace id starts with *selector*."""
        match: Optional[dict] = None
        for record in self.records():
            if record["id"].startswith(selector):
                match = record
        return match
