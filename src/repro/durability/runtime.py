"""The durable gateway: journal → runtime → outbox, with crash recovery.

:class:`DurableOnlineDice` wraps a
:class:`~repro.streaming.HardenedOnlineDice` so that

* every raw event from the pipe is appended to the per-home
  :class:`~repro.durability.journal.EventJournal` **before** it touches
  any runtime state (the guard's drop decisions replay identically, so
  drop counters recover too);
* every alert the runtime raises is stamped with a per-home sequence
  number and offered to the :class:`~repro.durability.outbox.AlertOutbox`
  (when one is attached) for at-least-once delivery;
* :meth:`save_checkpoint` extends the streaming layer's versioned
  snapshot with a ``durability`` section (journal epoch, alert sequence),
  rotates the journal to the next epoch, and truncates the superseded
  segments;
* :meth:`recover` rebuilds the runtime from checkpoint + journal tail —
  by construction the recovered process reproduces the alert stream an
  uninterrupted run would have produced (pinned by the chaos harness).
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..core import DiceDetector
from ..model import Event
from ..streaming import (
    Alert,
    HardenedOnlineDice,
    checkpoint_state,
    load_checkpoint,
    restore_runtime,
)
from ..streaming.checkpoint import write_json_atomic
from .journal import EventJournal, frame_payload, replay_records
from .outbox import AlertOutbox, alert_record
from .provenance import ProvenanceLog

PathLike = Union[str, os.PathLike]

RECOVERY_SECONDS_HISTOGRAM = "dice_recovery_seconds"

#: Buckets for the recovery-time histogram: recovery is checkpoint load +
#: journal replay, so it scales with the tail length — 1 ms to ~1 min.
RECOVERY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)

_log = telemetry.get_logger("repro.durability.runtime")


def event_to_record(event: Event) -> dict:
    """The journal form of one event (lossless float round trip)."""
    return {"type": "event", "t": event.timestamp, "d": event.device_id, "v": event.value}


def record_to_event(record: dict) -> Event:
    return Event(record["t"], record["d"], record["v"])


_INF = float("inf")
_device_json_cache: dict = {}


def _json_num(value) -> str:
    """``json.dumps`` rendering of one number, without the dispatch cost.

    ``json`` serializes floats via ``repr`` (shortest round trip) except
    the non-finite values, which it spells ``NaN``/``Infinity``; matching
    that exactly keeps the fast path byte-identical to
    ``encode_record(event_to_record(event))``.
    """
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == _INF:
            return "Infinity"
        if value == -_INF:
            return "-Infinity"
        return repr(value)
    return json.dumps(value)


def encode_event_frame(event: Event) -> bytes:
    """Pre-framed journal bytes for one event.

    Byte-identical to ``encode_record(event_to_record(event))`` but several
    times faster — the ingest hot path pays this per accepted event, and
    the journal's overhead budget is 1.5x of the unjournaled runtime.
    """
    device = _device_json_cache.get(event.device_id)
    if device is None:
        device = json.dumps(event.device_id, ensure_ascii=False)
        _device_json_cache[event.device_id] = device
    payload = (
        f'{{"d":{device},"t":{_json_num(event.timestamp)},'
        f'"type":"event","v":{_json_num(event.value)}}}'
    ).encode("utf-8")
    return frame_payload(payload)


class DurableOnlineDice:
    """A hardened runtime with a write-ahead journal and an alert outbox.

    Parameters
    ----------
    detector:
        The fitted detector (as for :class:`HardenedOnlineDice`).
    journal_dir:
        Per-home journal directory.
    home_id:
        Stamped into alert records/ids so a fleet's sinks can attribute
        and dedup per home.
    outbox:
        Optional :class:`AlertOutbox`; without one, alerts are journaled
        implicitly by the event journal only (replay regenerates them).
    fsync / fsync_interval:
        Journal fsync policy (see :mod:`repro.durability.journal`).
    runtime:
        Internal — a pre-built runtime to adopt (the recovery path).
    """

    def __init__(
        self,
        detector: DiceDetector,
        journal_dir: PathLike,
        *,
        home_id: str = "home",
        start: float = 0.0,
        fsync: str = "never",
        fsync_interval: int = 64,
        outbox: Optional[AlertOutbox] = None,
        runtime: Optional[HardenedOnlineDice] = None,
        alert_seq: int = 0,
        **runtime_kwargs,
    ) -> None:
        adopted = runtime is not None
        if runtime is None:
            runtime = HardenedOnlineDice(detector, start=start, **runtime_kwargs)
        self.runtime = runtime
        self.home_id = home_id
        self.outbox = outbox
        self.alert_seq = int(alert_seq)
        self.metrics = runtime.metrics
        # The recorder must stamp the same home into its trace ids as the
        # outbox stamps into delivery ids — that equality is what lets
        # ``repro explain <id>`` take ids straight off an alerts file.
        if runtime.provenance.enabled:
            runtime.provenance.home_id = home_id
        self.provenance_log = ProvenanceLog(journal_dir, metrics=self.metrics)
        self.journal = EventJournal(
            journal_dir,
            fsync=fsync,
            fsync_interval=fsync_interval,
            metrics=self.metrics,
        )
        if not adopted and self.journal.segments():
            # A fresh runtime over a dirty journal directory: never extend
            # a segment from an earlier life (it may end in a torn record,
            # and its history belongs to a different run) — start a new one.
            _log.warning(
                "journal_dir_not_empty",
                directory=os.fspath(journal_dir),
                epoch=self.journal.epoch,
            )
            self.journal.rotate(self.journal.epoch + 1)

    # ------------------------------------------------------------------ #

    @property
    def alerts(self) -> List[Alert]:
        return self.runtime.alerts

    @property
    def detector(self) -> DiceDetector:
        return self.runtime.detector

    def _publish(self, fresh: List[Alert]) -> List[Alert]:
        """Stamp sequence numbers, hand alerts to the outbox, and archive
        their evidence records (the recorder sealed one per alert, in the
        same emission order — its seq equals ``alert_seq``)."""
        for alert in fresh:
            self.alert_seq += 1
            if self.outbox is not None:
                self.outbox.offer(alert_record(self.home_id, self.alert_seq, alert))
        for record in self.runtime.provenance.drain_unjournaled():
            self.provenance_log.append(record)
        return fresh

    def ingest(self, event: Event) -> List[Alert]:
        """Journal one raw event, then feed it to the hardened runtime."""
        self.journal.append_frame(encode_event_frame(event))
        return self._publish(self.runtime.ingest(event))

    def ingest_many(self, events: Iterable[Event]) -> List[Alert]:
        fresh: List[Alert] = []
        for event in events:
            fresh.extend(self.ingest(event))
        return fresh

    def finish_stream(self, end: Optional[float] = None) -> List[Alert]:
        return self._publish(self.runtime.finish_stream(end))

    def deliver_pending(self) -> dict:
        """Drive the outbox (no-op without one)."""
        if self.outbox is None:
            return {"delivered": 0, "dead": 0}
        return self.outbox.deliver_pending()

    def health(self) -> dict:
        report = self.runtime.health()
        report["durability"] = {
            "journal_epoch": self.journal.epoch,
            "journal_segments": len(self.journal.segments()),
            "alert_seq": self.alert_seq,
            "outbox_pending": 0 if self.outbox is None else len(self.outbox.pending),
            "provenance_records": len(self.provenance_log),
        }
        return report

    def close(self) -> None:
        self.journal.close()

    # ------------------------------------------------------------------ #
    # Checkpoint & recovery
    # ------------------------------------------------------------------ #

    def save_checkpoint(self, path: PathLike) -> None:
        """Snapshot the runtime, then rotate and truncate the journal.

        Order is the crash-safety argument: the journal is synced first
        (every event the snapshot accounts for is on disk), the snapshot
        is written atomically recording the current journal epoch, and
        only then are superseded segments removed — a crash at any point
        leaves either the old checkpoint with its full journal, or the
        new checkpoint with at worst some not-yet-truncated (ignored)
        segments.
        """
        self.journal.sync()
        state = checkpoint_state(self.runtime)
        state["durability"] = {
            "journal_epoch": self.journal.epoch,
            "alert_seq": self.alert_seq,
            "home_id": self.home_id,
        }
        write_json_atomic(state, path)
        superseded = self.journal.epoch
        self.journal.rotate(superseded + 1)
        self.journal.truncate_through(superseded)
        _log.info(
            "durable_checkpoint_saved",
            path=os.fspath(path),
            epoch=superseded,
            alert_seq=self.alert_seq,
        )

    @classmethod
    def recover(
        cls,
        detector: DiceDetector,
        journal_dir: PathLike,
        *,
        checkpoint_path: Optional[PathLike] = None,
        home_id: str = "home",
        start: float = 0.0,
        fsync: str = "never",
        fsync_interval: int = 64,
        outbox: Optional[AlertOutbox] = None,
        **runtime_kwargs,
    ) -> Tuple["DurableOnlineDice", List[Alert]]:
        """Checkpoint + journal-tail restart after a crash.

        Loads the checkpoint when *checkpoint_path* names an existing
        file (otherwise starts a fresh runtime at *start*), replays every
        journal record after the checkpoint's epoch, re-offers the
        replayed alerts to the outbox (idempotent: already-journaled ids
        dedup; unacked ones redeliver — at-least-once), and rotates to a
        fresh segment so post-recovery appends never extend a possibly
        torn file.

        Returns ``(runtime, replayed_alerts)``.
        """
        t0 = time.perf_counter()
        after_epoch = -1
        alert_seq = 0
        runtime: Optional[HardenedOnlineDice] = None
        if checkpoint_path is not None and os.path.exists(os.fspath(checkpoint_path)):
            state = load_checkpoint(checkpoint_path)
            runtime = restore_runtime(detector, state, **runtime_kwargs)
            durability = state.get("durability", {})
            after_epoch = durability.get("journal_epoch", -1)
            alert_seq = durability.get("alert_seq", 0)
            home_id = durability.get("home_id", home_id)
        if runtime is None:
            runtime = HardenedOnlineDice(detector, start=start, **runtime_kwargs)
        records, torn = replay_records(
            journal_dir, after_epoch=after_epoch, metrics=runtime.metrics
        )
        durable = cls(
            detector,
            journal_dir,
            home_id=home_id,
            fsync=fsync,
            fsync_interval=fsync_interval,
            outbox=outbox,
            runtime=runtime,
            alert_seq=alert_seq,
        )
        replayed: List[Alert] = []
        for record in records:
            if record.get("type") != "event":
                continue
            fresh = runtime.ingest(record_to_event(record))
            durable._publish(fresh)
            replayed.extend(fresh)
        # Never append after a (possibly torn) crash-cut segment: recovery
        # always opens a fresh one.
        if durable.journal.segments():
            durable.journal.rotate(durable.journal.epoch + 1)
        elapsed = time.perf_counter() - t0
        runtime.metrics.histogram(
            RECOVERY_SECONDS_HISTOGRAM,
            "Wall-clock seconds to restore checkpoint and replay the journal tail",
            buckets=RECOVERY_BUCKETS,
        ).observe(elapsed)
        _log.info(
            "recovered",
            journal=os.fspath(journal_dir),
            checkpoint=None if checkpoint_path is None else os.fspath(checkpoint_path),
            replayed=len(records),
            torn=torn,
            seconds=round(elapsed, 6),
        )
        return durable, replayed
