"""Evaluation harness: metrics, the Ch. V protocol runner, experiments E1-E12."""

from . import experiments, report
from .metrics import DetectionCounts, IdentificationCounts, TimingStats
from .runner import DatasetResult, EvaluationRunner, SegmentOutcome

__all__ = [
    "experiments",
    "report",
    "DetectionCounts",
    "IdentificationCounts",
    "TimingStats",
    "DatasetResult",
    "EvaluationRunner",
    "SegmentOutcome",
]
