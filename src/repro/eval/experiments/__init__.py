"""The experiment behind every table and figure (see DESIGN.md, E1-E12)."""

from . import (
    ablations,
    accuracy,
    actuator_faults,
    baselines_compare,
    computation,
    correlation_degree,
    detection_ratio,
    multi_fault,
    security,
    timing,
)
from .common import (
    PAIRS,
    PRECOMPUTE_HOURS,
    SEGMENT_HOURS,
    ProtocolSettings,
    clear_cache,
    run_protocol,
)

__all__ = [
    "ablations",
    "accuracy",
    "actuator_faults",
    "baselines_compare",
    "computation",
    "correlation_degree",
    "detection_ratio",
    "multi_fault",
    "security",
    "timing",
    "PAIRS",
    "PRECOMPUTE_HOURS",
    "SEGMENT_HOURS",
    "ProtocolSettings",
    "clear_cache",
    "run_protocol",
]
