"""E10 — Ch. VI "Impact of different parameters" ablations.

Three effects the thesis reports qualitatively:

* halving the precomputation period (300 h → 150 h) costs identification
  *precision* (the context model has holes, so normal behaviour reads as
  violations — ~10 % in the thesis);
* halving the segment length (6 h → 3 h) costs identification *recall*
  (correlation-preserving faults may not hit an illegal transition within
  the shorter observation — ~6 % in the thesis);
* the one-minute window duration is a sweet spot: shorter windows split
  genuinely correlated sensors, longer ones merge uncorrelated ones.

Plus one ablation of our own design choices: the two-step G2G closure
(DESIGN.md) on versus off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from .common import ProtocolSettings, run_protocol


@dataclass(frozen=True)
class AblationPoint:
    """One protocol variant's headline numbers."""

    label: str
    detection_precision: float
    detection_recall: float
    identification_precision: float
    identification_recall: float
    false_positive_rate: float = 0.0


def _point(label: str, name: str, settings: ProtocolSettings) -> AblationPoint:
    _, result = run_protocol(name, settings)
    detection = result.detection_counts()
    identification = result.identification_counts()
    return AblationPoint(
        label,
        detection.precision,
        detection.recall,
        identification.precision,
        identification.recall,
        detection.false_positive_rate,
    )


def precompute_period(
    dataset: str = "houseB",
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[AblationPoint]:
    """300 h vs 150 h of precomputation (scaled by ``hours_scale``)."""
    full = _point(f"precompute={settings.precompute_hours:.0f}h", dataset, settings)
    half = _point(
        f"precompute={settings.precompute_hours / 2:.0f}h",
        dataset,
        replace(settings, precompute_hours=settings.precompute_hours / 2),
    )
    return [full, half]


def segment_length(
    dataset: str = "houseB",
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[AblationPoint]:
    """6 h vs 3 h segments."""
    return [
        _point(f"segment={settings.segment_hours:.0f}h", dataset, settings),
        _point(
            f"segment={settings.segment_hours / 2:.0f}h",
            dataset,
            replace(settings, segment_hours=settings.segment_hours / 2),
        ),
    ]


def window_duration(
    dataset: str = "houseB",
    durations_seconds: Sequence[float] = (30.0, 60.0, 120.0),
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[AblationPoint]:
    """Sweep the sensor-state-set duration around the 1-minute optimum."""
    points = []
    for duration in durations_seconds:
        config = settings.config.with_(window_seconds=duration)
        points.append(
            _point(
                f"window={duration:.0f}s",
                dataset,
                replace(settings, config=config),
            )
        )
    return points


def two_step_closure(
    dataset: str = "houseC",
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[AblationPoint]:
    """Our boundary-aliasing closure on vs off (DESIGN.md design choice)."""
    on = _point("closure=on", dataset, settings)
    off = _point(
        "closure=off",
        dataset,
        replace(settings, config=settings.config.with_(g2g_two_step_closure=False)),
    )
    return [on, off]
