"""E1/E2 — Fig. 5.1: detection & identification accuracy per dataset.

The paper reports an average detection precision of 98.2 % / recall of
97.9 % across the ten datasets, with the testbed (D_*) datasets at the
top and houseA — the lowest-correlation-degree home — at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .common import ProtocolSettings, default_datasets, run_protocol


@dataclass(frozen=True)
class AccuracyRow:
    """One dataset's Fig. 5.1 bars."""

    dataset: str
    detection_precision: float
    detection_recall: float
    identification_precision: float
    identification_recall: float
    correlation_degree: float


def run(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[AccuracyRow]:
    rows: List[AccuracyRow] = []
    for name in default_datasets(datasets):
        _, result = run_protocol(name, settings)
        detection = result.detection_counts()
        identification = result.identification_counts()
        rows.append(
            AccuracyRow(
                dataset=name,
                detection_precision=detection.precision,
                detection_recall=detection.recall,
                identification_precision=identification.precision,
                identification_recall=identification.recall,
                correlation_degree=result.correlation_degree,
            )
        )
    return rows


def averages(rows: Sequence[AccuracyRow]) -> Dict[str, float]:
    """The headline averages the abstract quotes."""
    n = max(1, len(rows))
    return {
        "detection_precision": sum(r.detection_precision for r in rows) / n,
        "detection_recall": sum(r.detection_recall for r in rows) / n,
        "identification_precision": sum(r.identification_precision for r in rows) / n,
        "identification_recall": sum(r.identification_recall for r in rows) / n,
    }
