"""E3 — §5.1.3: actuator-fault accuracy on the testbed datasets.

Only the D_* datasets carry actuator data, so — exactly as in the thesis —
the experiment injects faults into actuators there and measures how well
the G2A/A2G machinery identifies them (the paper reports 92.5 % precision
and 94.9 % recall on average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...datasets import TESTBED_NAMES
from .common import ProtocolSettings, run_protocol


@dataclass(frozen=True)
class ActuatorRow:
    dataset: str
    detection_precision: float
    detection_recall: float
    identification_precision: float
    identification_recall: float


def run(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[ActuatorRow]:
    rows: List[ActuatorRow] = []
    for name in datasets or TESTBED_NAMES:
        _, result = run_protocol(name, settings, actuators_only=True)
        detection = result.detection_counts()
        identification = result.identification_counts()
        rows.append(
            ActuatorRow(
                dataset=name,
                detection_precision=detection.precision,
                detection_recall=detection.recall,
                identification_precision=identification.precision,
                identification_recall=identification.recall,
            )
        )
    return rows


def averages(rows: Sequence[ActuatorRow]) -> Dict[str, float]:
    n = max(1, len(rows))
    return {
        "identification_precision": sum(r.identification_precision for r in rows) / n,
        "identification_recall": sum(r.identification_recall for r in rows) / n,
    }
