"""E12 — quantitative version of Table 2.1: DICE versus baseline families.

The paper compares approaches qualitatively (usability / generality /
feasibility / promptness); here the bundled baselines are run through the
exact same segment-pair protocol as DICE, so the table becomes measured
precision/recall/identification numbers.  Expected shape: the ablated
variants lose whole fault classes (correlation-only misses stuck-at,
markov-only is slow and noisy), majority voting only works where redundant
same-type sensors exist, and the AR baseline cannot see fail-stop faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ...baselines import BASELINES, BaselineDetector
from ...core import DiceDetector
from ...datasets import load_dataset
from ...faults import make_segment_pairs
from ..metrics import DetectionCounts, IdentificationCounts
from .common import ProtocolSettings


@dataclass(frozen=True)
class ComparisonRow:
    detector: str
    dataset: str
    detection_precision: float
    detection_recall: float
    identification_recall: float


def run(
    dataset: str = "D_houseA",
    detectors: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[ComparisonRow]:
    data = load_dataset(
        dataset, seed=settings.seed, hours=settings.scaled_hours(dataset)
    )
    rng = np.random.default_rng(settings.seed)
    training, pairs = make_segment_pairs(
        data.trace,
        rng,
        precompute_hours=settings.scaled_precompute(),
        segment_hours=settings.segment_hours,
        count=settings.pairs,
    )

    rows: List[ComparisonRow] = []
    names = list(detectors) if detectors else ["dice"] + sorted(BASELINES)
    for name in names:
        if name == "dice":
            detector = DiceDetector(data.trace.registry, settings.config).fit(
                training
            )
            process = detector.process
        else:
            baseline: BaselineDetector = BASELINES[name](settings.config)
            baseline.fit(training)
            process = baseline.process
        detection = DetectionCounts()
        identification = IdentificationCounts()
        for pair in pairs:
            clean = process(pair.faultless)
            faulty = process(pair.faulty)
            if clean.detected:
                detection.false_positives += 1
            else:
                detection.true_negatives += 1
            if faulty.detected:
                detection.true_positives += 1
            else:
                detection.false_negatives += 1
            identification.actual += 1
            identified = faulty.identified_devices()
            identification.named += len(identified) + len(
                clean.identified_devices()
            )
            if pair.fault.device_id in identified:
                identification.correct += 1
        rows.append(
            ComparisonRow(
                detector=name,
                dataset=dataset,
                detection_precision=detection.precision,
                detection_recall=detection.recall,
                identification_recall=identification.recall,
            )
        )
    return rows
