"""Shared plumbing for the experiment modules (E1-E12).

Every experiment follows the Ch. V protocol; this module provides one
memoised entry point so that, e.g., the accuracy figure and the timing
figure computed in one session reuse the same generated dataset and
detector run.

``hours_scale`` shrinks every duration (dataset hours and the 300-hour
precomputation period) proportionally; the 6-hour segment length is kept —
it is a unit of the protocol, not of the dataset.  EXPERIMENTS.md records
the scale each reported number was produced at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ...core import DEFAULT_CONFIG, DiceConfig
from ...datasets import ALL_NAMES, LoadedDataset, dataset_info, load_dataset
from ...faults import FaultType
from ..runner import DatasetResult, EvaluationRunner

#: Default protocol constants (Ch. V).
PRECOMPUTE_HOURS = 300.0
SEGMENT_HOURS = 6.0
PAIRS = 100

_cache: Dict[Tuple, Tuple[LoadedDataset, DatasetResult]] = {}


@dataclass(frozen=True)
class ProtocolSettings:
    """One experiment run's knobs."""

    hours_scale: float = 1.0
    pairs: int = PAIRS
    seed: int = 0
    precompute_hours: float = PRECOMPUTE_HOURS
    segment_hours: float = SEGMENT_HOURS
    config: DiceConfig = DEFAULT_CONFIG
    #: Worker processes for the segment-pair fan-out (1 = in-process).
    #: Results are deterministic and identical across worker counts.
    workers: int = 1

    def scaled_hours(self, name: str) -> float:
        return dataset_info(name).hours * self.hours_scale

    def scaled_precompute(self) -> float:
        return self.precompute_hours * self.hours_scale

    def runner(self) -> EvaluationRunner:
        return EvaluationRunner(
            config=self.config,
            precompute_hours=self.scaled_precompute(),
            segment_hours=self.segment_hours,
            pairs=self.pairs,
            seed=self.seed,
            workers=self.workers,
        )


def clear_cache() -> None:
    _cache.clear()


def run_protocol(
    name: str,
    settings: ProtocolSettings = ProtocolSettings(),
    fault_types: Optional[Sequence[FaultType]] = None,
    actuators_only: bool = False,
) -> Tuple[LoadedDataset, DatasetResult]:
    """Load (or reuse) dataset *name* and run the protocol on it."""
    key = (name, settings, tuple(fault_types or ()), actuators_only)
    if key in _cache:
        return _cache[key]
    data = load_dataset(name, seed=settings.seed, hours=settings.scaled_hours(name))
    devices = data.trace.registry.actuators() if actuators_only else None
    result = settings.runner().evaluate(
        name, data.trace, fault_types=fault_types, devices=devices
    )
    _cache[key] = (data, result)
    return data, result


def default_datasets(names: Optional[Sequence[str]] = None) -> Sequence[str]:
    return list(names) if names else list(ALL_NAMES)
