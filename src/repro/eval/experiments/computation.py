"""E6 — Fig. 5.3: per-window computation time per real-time stage.

Shape to reproduce: the correlation check dominates (the probable-group
scan is linear in groups × bits, so datasets with many sensors — hh102 and
the numeric-heavy testbed — pay more), the transition check and
identification are near-free, and the total stays well under the paper's
50 ms-per-window real-time budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .common import ProtocolSettings, default_datasets, run_protocol


@dataclass(frozen=True)
class ComputationRow:
    """One dataset's Fig. 5.3 stack (milliseconds per window)."""

    dataset: str
    num_sensors: int
    num_groups: int
    encoding_ms: float
    correlation_check_ms: float
    transition_check_ms: float
    identification_ms: float

    @property
    def total_ms(self) -> float:
        return (
            self.encoding_ms
            + self.correlation_check_ms
            + self.transition_check_ms
            + self.identification_ms
        )


def run(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[ComputationRow]:
    rows: List[ComputationRow] = []
    for name in default_datasets(datasets):
        _, result = run_protocol(name, settings)
        ms = result.computation_ms_per_window()
        rows.append(
            ComputationRow(
                dataset=name,
                num_sensors=result.num_sensors,
                num_groups=result.num_groups,
                encoding_ms=ms["encoding"],
                correlation_check_ms=ms["correlation_check"],
                transition_check_ms=ms["transition_check"],
                identification_ms=ms["identification"],
            )
        )
    return rows
