"""E7 — Table 5.2: correlation degree and sensor count per dataset.

The paper's observations: houseA has the lowest degree (1.4) despite not
having the fewest quirks; degree is *not* proportional to sensor count
(hh102 has 112 sensors but only degree 3.8); and accuracy/latency track
degree, not census.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .common import ProtocolSettings, default_datasets, run_protocol


@dataclass(frozen=True)
class DegreeRow:
    """One Table 5.2 column."""

    dataset: str
    correlation_degree: float
    num_sensors: int
    num_groups: int


def run(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[DegreeRow]:
    rows: List[DegreeRow] = []
    for name in default_datasets(datasets):
        _, result = run_protocol(name, settings)
        rows.append(
            DegreeRow(
                dataset=name,
                correlation_degree=result.correlation_degree,
                num_sensors=result.num_sensors,
                num_groups=result.num_groups,
            )
        )
    return rows
