"""E8 — Fig. 5.4: which check catches which fault class.

Shape to reproduce: fail-stop faults are (nearly) all caught by the
correlation check — a dead sensor tears a hole in the learned groups —
while stuck-at faults, which keep reporting a perfectly plausible value,
mostly slip past correlation and are caught by the transition check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...core import CORRELATION_CHECK, TRANSITION_CHECK
from ...faults import ALL_FAULT_TYPES, FaultType
from .common import ProtocolSettings, default_datasets, run_protocol


@dataclass(frozen=True)
class RatioRow:
    """Fig. 5.4, one bar: per fault type, the share per detecting check."""

    fault_type: FaultType
    correlation_share: float
    transition_share: float
    detections: int


def run(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[RatioRow]:
    """Aggregate the check attribution over the given datasets."""
    tally: Dict[FaultType, Dict[str, int]] = {
        ft: {CORRELATION_CHECK: 0, TRANSITION_CHECK: 0} for ft in ALL_FAULT_TYPES
    }
    for name in default_datasets(datasets):
        _, result = run_protocol(name, settings)
        for outcome in result.outcomes:
            if outcome.detected and outcome.detecting_check in (
                CORRELATION_CHECK,
                TRANSITION_CHECK,
            ):
                tally[outcome.fault.fault_type][outcome.detecting_check] += 1
    rows: List[RatioRow] = []
    for fault_type in ALL_FAULT_TYPES:
        checks = tally[fault_type]
        total = sum(checks.values())
        rows.append(
            RatioRow(
                fault_type=fault_type,
                correlation_share=checks[CORRELATION_CHECK] / total if total else 0.0,
                transition_share=checks[TRANSITION_CHECK] / total if total else 0.0,
                detections=total,
            )
        )
    return rows
