"""E9 — Ch. VI multi-fault experiment.

One to three sensors fault simultaneously within a segment and ``numThre``
is raised to 3.  The thesis reports identification precision/recall of
79.5 % / 63.3 % — markedly below the single-fault numbers, which is the
shape to reproduce: simultaneous faults confuse the differing-bit analysis
because the probable groups are compared against a state set with several
holes at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import DiceDetector
from ...datasets import load_dataset
from ...faults import FaultInjector, split_precompute
from ..metrics import IdentificationCounts
from .common import ProtocolSettings


@dataclass(frozen=True)
class MultiFaultResult:
    dataset: str
    segments: int
    detection_recall: float
    identification_precision: float
    identification_recall: float


def run(
    dataset: str = "D_houseA",
    max_faults: int = 3,
    settings: ProtocolSettings = ProtocolSettings(),
) -> MultiFaultResult:
    config = settings.config.with_(num_faults=max_faults)
    data = load_dataset(
        dataset, seed=settings.seed, hours=settings.scaled_hours(dataset)
    )
    training, evaluation = split_precompute(
        data.trace, settings.scaled_precompute()
    )
    detector = DiceDetector(data.trace.registry, config).fit(training)
    rng = np.random.default_rng(settings.seed)
    injector = FaultInjector(rng)
    seg_len = settings.segment_hours * 3600.0
    span = evaluation.end - evaluation.start

    detected = 0
    segments = 0
    counts = IdentificationCounts()
    attempts = 0
    while segments < settings.pairs and attempts < 20 * settings.pairs:
        attempts += 1
        start = float(evaluation.start + rng.uniform(0.0, span - seg_len))
        segment = data.trace.slice(start, start + seg_len)
        n_faults = int(rng.integers(1, max_faults + 1))
        try:
            faulty, faults = injector.inject_many(segment, n_faults)
        except ValueError:
            continue
        if not faults:
            continue
        segments += 1
        report = detector.process(faulty)
        if report.detected:
            detected += 1
        identified = report.identified_devices()
        truth = {fault.device_id for fault in faults}
        counts.actual += len(truth)
        counts.named += len(identified)
        counts.correct += len(identified & truth)
    return MultiFaultResult(
        dataset=dataset,
        segments=segments,
        detection_recall=detected / segments if segments else 0.0,
        identification_precision=counts.precision,
        identification_recall=counts.recall,
    )
