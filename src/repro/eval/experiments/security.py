"""E11 — Ch. VI security attacks.

The thesis spoofs (1) a kitchen temperature sensor high, turning the fan
automation on ("economic damage"), and (2) a light sensor bright while the
user sleeps, driving the blinds at night ("privacy damage"), and reports
DICE detected both.  This experiment replays those attacks on the
D_houseA testbed recording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...core import DiceDetector
from ...datasets import load_dataset
from ...faults import light_attack, split_precompute, temperature_attack
from .common import ProtocolSettings


@dataclass(frozen=True)
class AttackOutcome:
    kind: str
    victim: str
    detected: bool
    detection_minutes: Optional[float]
    identified: bool


def run(
    dataset: str = "D_houseA",
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[AttackOutcome]:
    data = load_dataset(
        dataset, seed=settings.seed, hours=settings.scaled_hours(dataset)
    )
    training, evaluation = split_precompute(data.trace, settings.scaled_precompute())
    detector = DiceDetector(data.trace.registry, settings.config).fit(training)

    outcomes: List[AttackOutcome] = []
    seg_len = settings.segment_hours * 3600.0
    # Anchor the scenarios to wall-clock time (the evaluation span starts at
    # an arbitrary hour depending on the precomputation length).
    day = 24 * 3600.0
    midnight = float(int(evaluation.start // day + 1) * day)

    # Attack 1: evening temperature spoof — the kitchen is in use, the
    # spoof forces the fan automation on (economic damage).
    segment = data.trace.slice(midnight + 17 * 3600.0, midnight + 17 * 3600.0 + seg_len)
    onset = segment.start + 1.5 * 3600.0
    attacked, attack = temperature_attack(segment, "t_kitchen", onset)
    outcomes.append(_judge(detector, attacked, attack))

    # Attack 2: light spoof while the user sleeps — the blind automation
    # reacts at night (privacy damage).
    segment = data.trace.slice(midnight + 23 * 3600.0, midnight + 23 * 3600.0 + seg_len)
    onset = segment.start + 2 * 3600.0
    attacked, attack = light_attack(segment, "l_bedroom", onset)
    outcomes.append(_judge(detector, attacked, attack))
    return outcomes


def _judge(detector: DiceDetector, attacked, attack) -> AttackOutcome:
    report = detector.process(attacked)
    detection = None
    for record in report.detections:
        if record.time >= attack.onset:
            detection = record
            break
    return AttackOutcome(
        kind=attack.kind,
        victim=attack.victim_device_id,
        detected=detection is not None,
        detection_minutes=(
            (detection.time - attack.onset) / 60.0 if detection else None
        ),
        identified=attack.victim_device_id in report.identified_devices(),
    )
