"""E4/E5 — Fig. 5.2 and Table 5.1: detection & identification delay.

Shapes to reproduce: houseA is the slowest dataset; the testbed datasets
are the fastest; and faults caught by the transition check take roughly
three times longer to surface than faults caught by the correlation check
(Table 5.1) because a stuck state only violates a transition once the home
actually moves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...core import CORRELATION_CHECK, TRANSITION_CHECK
from .common import ProtocolSettings, default_datasets, run_protocol


@dataclass(frozen=True)
class TimingRow:
    """One dataset's Fig. 5.2 bars (minutes)."""

    dataset: str
    detection_minutes: float
    identification_minutes: float
    correlation_degree: float


@dataclass(frozen=True)
class CheckTimingRow:
    """One dataset's Table 5.1 row (minutes)."""

    dataset: str
    correlation_check_minutes: Optional[float]
    transition_check_minutes: Optional[float]

    @property
    def slowdown(self) -> Optional[float]:
        """Transition-check delay relative to correlation-check delay."""
        if not self.correlation_check_minutes or not self.transition_check_minutes:
            return None
        return self.transition_check_minutes / self.correlation_check_minutes


def run(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[TimingRow]:
    rows: List[TimingRow] = []
    for name in default_datasets(datasets):
        _, result = run_protocol(name, settings)
        rows.append(
            TimingRow(
                dataset=name,
                detection_minutes=result.detection_time().mean,
                identification_minutes=result.identification_time().mean,
                correlation_degree=result.correlation_degree,
            )
        )
    return rows


def run_by_check(
    datasets: Optional[Sequence[str]] = None,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[CheckTimingRow]:
    """Table 5.1 (the thesis reports houseA/B/C)."""
    rows: List[CheckTimingRow] = []
    for name in default_datasets(datasets):
        _, result = run_protocol(name, settings)
        by_check = result.detection_time_by_check()
        corr = by_check.get(CORRELATION_CHECK)
        trans = by_check.get(TRANSITION_CHECK)
        rows.append(
            CheckTimingRow(
                dataset=name,
                correlation_check_minutes=corr.mean if corr and len(corr) else None,
                transition_check_minutes=trans.mean if trans and len(trans) else None,
            )
        )
    return rows
