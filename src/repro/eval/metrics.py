"""Evaluation metrics (Ch. V).

Detection metrics are segment-level, exactly as the thesis protocol
defines them: each faultless segment may produce a false positive, each
faulty segment a true positive or false negative.

Identification metrics follow §5.1.2: *precision* is the share of actual
faulty devices among everything the system named; *recall* is the share of
actual faulty devices the system managed to name.  Both are
micro-aggregated over segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np


@dataclass
class DetectionCounts:
    """Segment-level confusion counts."""

    true_positives: int = 0
    false_negatives: int = 0
    false_positives: int = 0
    true_negatives: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0

    @property
    def false_negative_rate(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.false_negatives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def merge(self, other: "DetectionCounts") -> None:
        self.true_positives += other.true_positives
        self.false_negatives += other.false_negatives
        self.false_positives += other.false_positives
        self.true_negatives += other.true_negatives


@dataclass
class IdentificationCounts:
    """Micro-aggregated identification tallies."""

    correct: int = 0  # actual faulty devices that were named
    named: int = 0  # devices named in total (faulty and faultless segments)
    actual: int = 0  # actual faulty devices in total

    @property
    def precision(self) -> float:
        return self.correct / self.named if self.named else 0.0

    @property
    def recall(self) -> float:
        return self.correct / self.actual if self.actual else 0.0

    def merge(self, other: "IdentificationCounts") -> None:
        self.correct += other.correct
        self.named += other.named
        self.actual += other.actual


@dataclass
class TimingStats:
    """Aggregate of per-fault delays (minutes)."""

    samples: List[float] = field(default_factory=list)

    def add(self, minutes: float) -> None:
        self.samples.append(float(minutes))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def median(self) -> float:
        return float(np.median(self.samples)) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples)) if self.samples else 0.0

    def merge(self, other: "TimingStats") -> None:
        self.samples.extend(other.samples)


def mean_or_none(values: Iterable[float]) -> Optional[float]:
    values = list(values)
    return float(np.mean(values)) if values else None


def detection_as_dict(counts: DetectionCounts) -> dict:
    """Per-cell JSON rendering of the confusion counts (scenario report)."""
    return {
        "tp": counts.true_positives,
        "fn": counts.false_negatives,
        "fp": counts.false_positives,
        "tn": counts.true_negatives,
        "precision": counts.precision,
        "recall": counts.recall,
    }


def identification_as_dict(counts: IdentificationCounts) -> dict:
    """Per-cell JSON rendering of the identification tallies."""
    return {
        "correct": counts.correct,
        "named": counts.named,
        "actual": counts.actual,
        "precision": counts.precision,
        "recall": counts.recall,
    }


def alerts_per_hour(
    alert_times: Iterable[float], window_start: float, window_end: float
) -> Optional[float]:
    """Sustained alert rate over ``[window_start, window_end)`` in events
    per hour — the graceful-degradation metric the drift cells compare
    across the refresh A/B.  ``None`` when the window is empty."""
    span = window_end - window_start
    if span <= 0:
        return None
    count = sum(1 for t in alert_times if window_start <= t < window_end)
    return count / (span / 3600.0)
