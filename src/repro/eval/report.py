"""Plain-text rendering of experiment results.

Each formatter prints the same rows/series the paper's corresponding
artifact reports, so a benchmark run reads side-by-side with the thesis.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A minimal fixed-width table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def format_accuracy(rows) -> str:
    """Fig. 5.1 as a table."""
    return format_table(
        ["dataset", "det. precision", "det. recall", "id. precision", "id. recall"],
        [
            [
                r.dataset,
                pct(r.detection_precision),
                pct(r.detection_recall),
                pct(r.identification_precision),
                pct(r.identification_recall),
            ]
            for r in rows
        ],
    )


def format_timing(rows) -> str:
    """Fig. 5.2 as a table (minutes)."""
    return format_table(
        ["dataset", "detection (min)", "identification (min)", "corr. degree"],
        [
            [r.dataset, r.detection_minutes, r.identification_minutes, r.correlation_degree]
            for r in rows
        ],
    )


def format_check_timing(rows) -> str:
    """Table 5.1."""
    return format_table(
        ["dataset", "correlation check (min)", "transition check (min)"],
        [
            [r.dataset, r.correlation_check_minutes, r.transition_check_minutes]
            for r in rows
        ],
    )


def format_computation(rows) -> str:
    """Fig. 5.3 (ms per window)."""
    return format_table(
        [
            "dataset",
            "sensors",
            "groups",
            "encode",
            "corr check",
            "trans check",
            "identify",
            "total (ms)",
        ],
        [
            [
                r.dataset,
                r.num_sensors,
                r.num_groups,
                r.encoding_ms,
                r.correlation_check_ms,
                r.transition_check_ms,
                r.identification_ms,
                r.total_ms,
            ]
            for r in rows
        ],
    )


def format_degree(rows) -> str:
    """Table 5.2."""
    return format_table(
        ["dataset", "correlation degree", "sensors", "groups"],
        [
            [r.dataset, r.correlation_degree, r.num_sensors, r.num_groups]
            for r in rows
        ],
    )


def format_detection_ratio(rows) -> str:
    """Fig. 5.4."""
    return format_table(
        ["fault type", "by correlation", "by transition", "detections"],
        [
            [
                r.fault_type.value,
                pct(r.correlation_share),
                pct(r.transition_share),
                r.detections,
            ]
            for r in rows
        ],
    )
