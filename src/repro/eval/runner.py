"""The Ch. V evaluation protocol, runnable against any detector.

One :class:`EvaluationRunner` pass over a dataset produces everything the
paper's tables and figures need — detection and identification accuracy
(Fig. 5.1), detection/identification time (Fig. 5.2, Table 5.1), per-stage
computation time (Fig. 5.3), correlation degree (Table 5.2) and the
detection-check attribution per fault type (Fig. 5.4) — so each experiment
module simply projects a different view of the same
:class:`DatasetResult`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core import DEFAULT_CONFIG, DiceConfig, DiceDetector, SegmentReport, StageTimings
from ..faults import FaultType, InjectedFault, SegmentPair, make_segment_pairs
from ..model import Device, Trace
from .metrics import DetectionCounts, IdentificationCounts, TimingStats


@dataclass
class SegmentOutcome:
    """Everything measured for one faultless/faulty pair."""

    fault: InjectedFault
    faultless_detected: bool
    detected: bool
    detecting_check: Optional[str] = None
    detection_minutes: Optional[float] = None
    identification_minutes: Optional[float] = None
    identified: FrozenSet[str] = frozenset()
    faultless_identified: FrozenSet[str] = frozenset()

    @property
    def identified_correctly(self) -> bool:
        return self.fault.device_id in self.identified


@dataclass
class DatasetResult:
    """Aggregated protocol results for one dataset."""

    name: str
    num_sensors: int
    correlation_degree: float
    num_groups: int
    outcomes: List[SegmentOutcome] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    fit_seconds: float = 0.0

    # ------------------------------------------------------------------ #

    def detection_counts(self) -> DetectionCounts:
        counts = DetectionCounts()
        for outcome in self.outcomes:
            if outcome.detected:
                counts.true_positives += 1
            else:
                counts.false_negatives += 1
            if outcome.faultless_detected:
                counts.false_positives += 1
            else:
                counts.true_negatives += 1
        return counts

    def identification_counts(self) -> IdentificationCounts:
        counts = IdentificationCounts()
        for outcome in self.outcomes:
            counts.actual += 1
            counts.named += len(outcome.identified) + len(
                outcome.faultless_identified
            )
            if outcome.identified_correctly:
                counts.correct += 1
        return counts

    def detection_time(self) -> TimingStats:
        stats = TimingStats()
        for outcome in self.outcomes:
            if outcome.detection_minutes is not None:
                stats.add(outcome.detection_minutes)
        return stats

    def identification_time(self) -> TimingStats:
        stats = TimingStats()
        for outcome in self.outcomes:
            if outcome.identification_minutes is not None:
                stats.add(outcome.identification_minutes)
        return stats

    def detection_time_by_check(self) -> Dict[str, TimingStats]:
        """Table 5.1: detection delay split by the check that caught it."""
        by_check: Dict[str, TimingStats] = {}
        for outcome in self.outcomes:
            if outcome.detecting_check and outcome.detection_minutes is not None:
                by_check.setdefault(outcome.detecting_check, TimingStats()).add(
                    outcome.detection_minutes
                )
        return by_check

    def detection_ratio_by_fault_type(self) -> Dict[FaultType, Dict[str, float]]:
        """Fig. 5.4: share of detections per check, per fault type."""
        tally: Dict[FaultType, Dict[str, int]] = {}
        for outcome in self.outcomes:
            if not outcome.detected:
                continue
            per_type = tally.setdefault(outcome.fault.fault_type, {})
            per_type[outcome.detecting_check] = (
                per_type.get(outcome.detecting_check, 0) + 1
            )
        ratios: Dict[FaultType, Dict[str, float]] = {}
        for fault_type, checks in tally.items():
            total = sum(checks.values())
            ratios[fault_type] = {
                check: count / total for check, count in checks.items()
            }
        return ratios

    def computation_ms_per_window(self) -> Dict[str, float]:
        """Fig. 5.3: average per-window wall-clock per real-time stage.

        Raises :class:`ValueError` when no window was processed — an
        average over zero windows is undefined, not zero.
        """
        per_window = self.timings.per_window()
        if per_window is None:
            raise ValueError(
                f"{self.name}: no windows processed; "
                "per-window averages are undefined"
            )
        return {stage: seconds * 1000.0 for stage, seconds in per_window.items()}

    def aggregate_fingerprint(self) -> str:
        """SHA-256 over the canonicalised, order-sensitive outcomes.

        Wall-clock timings are excluded, so two runs of the same protocol —
        e.g. ``workers=1`` vs ``workers=4`` — must produce the *same*
        fingerprint; anything else is a parallelism bug."""
        canon = [
            (
                o.fault.device_id,
                o.fault.fault_type.value,
                o.fault.onset,
                o.faultless_detected,
                o.detected,
                o.detecting_check,
                o.detection_minutes,
                o.identification_minutes,
                tuple(sorted(o.identified)),
                tuple(sorted(o.faultless_identified)),
            )
            for o in self.outcomes
        ]
        header = (self.name, self.num_sensors, self.correlation_degree, self.num_groups)
        return hashlib.sha256(repr((header, canon)).encode()).hexdigest()


class EvaluationRunner:
    """Runs the segment-pair protocol for one dataset.

    ``workers > 1`` fans the (independent) segment pairs across a
    ``ProcessPoolExecutor``: each worker unpickles the fitted detector
    together with its chunk of pairs (joint pickling preserves the shared
    device-registry identity the encoder checks) and returns its outcomes;
    the parent reassembles chunks in submission order, so results are
    deterministic and identical to a ``workers=1`` run.
    """

    def __init__(
        self,
        config: DiceConfig = DEFAULT_CONFIG,
        precompute_hours: float = 300.0,
        segment_hours: float = 6.0,
        pairs: int = 100,
        seed: int = 0,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.config = config
        self.precompute_hours = precompute_hours
        self.segment_hours = segment_hours
        self.pairs = pairs
        self.seed = seed
        # Cap at the machine's core count: oversubscribed process pools are
        # strictly slower (a 2-worker pool on 1 CPU pays pickling plus
        # context-switching for zero parallelism), and results are
        # worker-count-invariant anyway.  The effective count is what
        # ``self.workers`` reports.
        self.workers = min(workers, os.cpu_count() or workers)

    # ------------------------------------------------------------------ #

    def prepare(
        self,
        trace: Trace,
        fault_types: Optional[Sequence[FaultType]] = None,
        devices: Optional[Sequence[Device]] = None,
    ):
        """Split the trace and build the segment pairs."""
        rng = np.random.default_rng(self.seed)
        return make_segment_pairs(
            trace,
            rng,
            precompute_hours=self.precompute_hours,
            segment_hours=self.segment_hours,
            count=self.pairs,
            fault_types=fault_types,
            devices=devices,
        )

    def fit_detector(self, trace: Trace, training: Trace) -> DiceDetector:
        return DiceDetector(trace.registry, self.config).fit(training)

    def evaluate(
        self,
        name: str,
        trace: Trace,
        fault_types: Optional[Sequence[FaultType]] = None,
        devices: Optional[Sequence[Device]] = None,
        detector: Optional[DiceDetector] = None,
    ) -> DatasetResult:
        """Run the full protocol; returns the aggregated result."""
        import time as _time

        training, pairs = self.prepare(trace, fault_types, devices)
        t0 = _time.perf_counter()
        if detector is None:
            detector = self.fit_detector(trace, training)
        fit_seconds = _time.perf_counter() - t0
        result = DatasetResult(
            name=name,
            num_sensors=len(trace.registry.sensors()),
            correlation_degree=detector.model.correlation_degree,
            num_groups=len(detector.model.groups),
            fit_seconds=fit_seconds,
        )
        for outcome, timings in self._run_pairs(detector, pairs):
            result.outcomes.append(outcome)
            result.timings.merge(timings)
        # Publish once, at join, in the parent process: per-pair publication
        # is suppressed in ``_evaluate_pair``, so sequential and
        # process-parallel runs land identical totals in the registry.
        result.timings.publish(detector.metrics)
        return result

    def _run_pairs(
        self, detector: DiceDetector, pairs: Sequence[SegmentPair]
    ) -> List[Tuple[SegmentOutcome, StageTimings]]:
        """Evaluate every pair, sequentially or across worker processes."""
        if self.workers <= 1 or len(pairs) <= 1:
            return [_evaluate_pair(detector, pair) for pair in pairs]
        chunks = _contiguous_chunks(list(pairs), self.workers)
        payloads = [
            pickle.dumps((detector, chunk), protocol=pickle.HIGHEST_PROTOCOL)
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            per_chunk = list(pool.map(_evaluate_chunk_payload, payloads))
        return [item for chunk in per_chunk for item in chunk]


def _contiguous_chunks(items: List, n: int) -> List[List]:
    """Split *items* into ≤ *n* contiguous, near-equal, non-empty chunks
    (concatenating them restores the original order)."""
    n = min(n, len(items))
    bounds = np.linspace(0, len(items), n + 1).round().astype(int)
    return [items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def _evaluate_chunk_payload(
    payload: bytes,
) -> List[Tuple[SegmentOutcome, StageTimings]]:
    """Worker entry point: rebuild the fitted detector and its chunk of
    pairs from one joint pickle, evaluate the chunk in order."""
    detector, pairs = pickle.loads(payload)
    return [_evaluate_pair(detector, pair) for pair in pairs]


def _evaluate_pair(
    detector: DiceDetector, pair: SegmentPair
) -> Tuple[SegmentOutcome, StageTimings]:
    """Process one faultless/faulty pair; returns the outcome and the
    pair's accumulated stage timings (merged by the caller)."""
    timings = StageTimings()
    # publish=False: the runner publishes the merged timings at join (in
    # the parent process), so worker counts don't change the registry.
    clean_report = detector.process(pair.faultless, publish=False)
    faulty_report = detector.process(pair.faulty, publish=False)
    timings.merge(clean_report.timings)
    timings.merge(faulty_report.timings)
    manifest = _manifestation_time(pair)
    clean_first = clean_report.first_identification
    outcome = SegmentOutcome(
        fault=pair.fault,
        faultless_detected=clean_report.detected,
        detected=faulty_report.detected,
        faultless_identified=(
            clean_first.devices if clean_first else frozenset()
        ),
    )
    detection = _first_after(faulty_report, pair.fault.onset)
    if detection is not None:
        outcome.detecting_check = detection.check
        outcome.detection_minutes = max(
            0.0, (detection.time - manifest) / 60.0
        )
    # The per-fault verdict is the first identification session that
    # concludes after the fault onset (§3.4: DICE outputs the faulty
    # sensor "and starts detecting faults from the top").
    identification = _first_identification_after(faulty_report, pair.fault.onset)
    if identification is not None:
        outcome.identified = identification.devices
        if pair.fault.device_id in identification.devices:
            outcome.identification_minutes = max(
                0.0, (identification.time - manifest) / 60.0
            )
    return outcome, timings


def _manifestation_time(pair: SegmentPair) -> float:
    """When the fault first becomes observable in the data.

    A fail-stop only manifests at the device's first *suppressed* report
    (its first post-onset event in the faultless copy); the injected
    fault classes (stuck-at, outlier, noise, spike) produce wrong data
    from the onset itself.  Detection latency — the paper's Fig. 5.2 —
    is meaningful relative to this instant: no detector can see a dead
    cupboard switch before the cupboard would have been opened.
    """
    fault = pair.fault
    if fault.fault_type is FaultType.FAIL_STOP:
        times, _ = pair.faultless.events_for(fault.device_id)
        after = times[times >= fault.onset]
        if len(after):
            return float(after[0])
    return fault.onset


def _first_after(report: SegmentReport, onset: float):
    for record in report.detections:
        if record.time >= onset:
            return record
    return report.first_detection


def _first_identification_after(report: SegmentReport, onset: float):
    for record in report.identifications:
        if record.time >= onset:
            return record
    return report.first_identification
