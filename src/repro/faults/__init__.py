"""Fault injection (Ch. IV.2) and security attacks (Ch. VI)."""

from .attacks import Attack, light_attack, spoof_sensor_high, temperature_attack
from .injector import FaultInjector, InjectionPolicy
from .models import (
    ALL_FAULT_TYPES,
    NON_FAIL_STOP_TYPES,
    FaultType,
    InjectedFault,
    apply_fault,
    inject_fail_stop,
    inject_high_noise,
    inject_outlier,
    inject_spike,
    inject_stuck_at,
)
from .pipe import (
    ALL_PIPE_FAULT_TYPES,
    PipeFaultInjector,
    PipeFaultSpec,
    PipeFaultType,
    apply_pipe_fault,
    corrupt_values,
    delay_events,
    drop_events,
    duplicate_events,
    reorder_events,
)
from .segments import SegmentPair, make_segment_pairs, segment_starts, split_precompute

__all__ = [
    "ALL_PIPE_FAULT_TYPES",
    "PipeFaultInjector",
    "PipeFaultSpec",
    "PipeFaultType",
    "apply_pipe_fault",
    "corrupt_values",
    "delay_events",
    "drop_events",
    "duplicate_events",
    "reorder_events",
    "Attack",
    "light_attack",
    "spoof_sensor_high",
    "temperature_attack",
    "FaultInjector",
    "InjectionPolicy",
    "ALL_FAULT_TYPES",
    "NON_FAIL_STOP_TYPES",
    "FaultType",
    "InjectedFault",
    "apply_fault",
    "inject_fail_stop",
    "inject_high_noise",
    "inject_outlier",
    "inject_spike",
    "inject_stuck_at",
    "SegmentPair",
    "make_segment_pairs",
    "segment_starts",
    "split_precompute",
]
