"""Security attacks (Ch. VI, "Expand to security").

The thesis demonstrates DICE against two sensor-spoofing attacks on the
testbed:

* **temperature attack** — the kitchen temperature sensor is spoofed high
  so the automation turns the fan on permanently (economic damage);
* **light attack** — a (bedroom/living-room) light sensor is spoofed high
  while the user sleeps, so the smart blind pulls down/up at night
  (privacy damage).

Both are rendered as value-injection on the victim sensor: spoofed
readings at a steady reporting cadence, starting at the attack onset.
Beyond the paper, :func:`coordinated_attack` spoofs several sensors at
once (an Aegis-style multi-sensor campaign) — the attacker tries to forge
a *consistent* context rather than one anomalous reading.

Streaming composition
---------------------
An attack window does not stop at the trace boundary: when spoofed frames
are injected into a *live* hardened runtime, some of them may carry
timestamps at or behind the reorder buffer's watermark (a replaying
attacker, or frames delayed past the lateness budget).  Those events must
never vanish silently — the ingest path records each one as a structured
``DroppedEvent`` (``too_late`` behind the watermark, ``before_start``
behind the stream start).  :func:`attack_events` exposes the exact list of
injected frames, and :attr:`Attack.injected_events` carries their count,
so a runner can reconcile *injected == windowed + dropped* event for
event; the test suite pins that invariant at the watermark boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..model import Event, Trace
from .models import InjectedFault, FaultType, _add_events, _scale_of


@dataclass(frozen=True)
class Attack:
    """Ground truth for one sensor-spoofing attack."""

    victim_device_id: str
    onset: float
    spoof_value: float
    kind: str  # "temperature", "light", "coordinated", or "generic"
    #: Number of spoofed frames actually injected inside the trace
    #: interval — the accounting anchor for drop reconciliation.
    injected_events: int = 0
    #: Spoofed reporting cadence in seconds.
    report_period: float = 30.0

    def as_fault(self) -> InjectedFault:
        """Attacks look like stuck-at-a-wrong-value faults to a detector."""
        return InjectedFault(self.victim_device_id, FaultType.STUCK_AT, self.onset)


def attack_events(trace: Trace, attack: Attack) -> List[Event]:
    """The spoofed frames an attack injects, as loose events.

    This is the stream-level rendering of the same attack window: a runner
    that feeds a hardened runtime event-by-event merges these into the
    live feed instead of rebuilding the trace, and every frame that falls
    at or behind the runtime's watermark is *ingested anyway* so the drop
    log records it — silent pre-filtering is exactly the hole the ingest
    guard exists to close.
    """
    times = _attack_times(trace, attack.onset, attack.report_period)
    return [
        Event(float(t), attack.victim_device_id, attack.spoof_value)
        for t in times
    ]


def _attack_times(trace: Trace, onset: float, report_period: float) -> np.ndarray:
    """Spoof timestamps clipped to the trace interval.

    The clip is explicit (rather than relying on downstream silent
    filtering) so ``injected_events`` always equals the number of frames
    that really exist in the attacked trace.
    """
    times = np.arange(onset, trace.end, report_period)
    return times[(times >= trace.start) & (times < trace.end)]


def spoof_sensor_high(
    trace: Trace,
    device_id: str,
    onset: float,
    spoof_value: Optional[float] = None,
    report_period: float = 30.0,
    kind: str = "generic",
) -> "tuple[Trace, Attack]":
    """Inject steady spoofed readings well above the sensor's normal range."""
    if device_id not in trace.registry:
        raise KeyError(f"unknown device {device_id!r}")
    if not trace.start <= onset < trace.end:
        raise ValueError("attack onset must fall inside the trace interval")
    if spoof_value is None:
        scale = _scale_of(trace, device_id)
        spoof_value = scale.high + 1.5 * scale.span
    times = _attack_times(trace, onset, report_period)
    attacked = _add_events(
        trace, device_id, times, np.full(len(times), spoof_value)
    )
    return attacked, Attack(
        device_id,
        onset,
        float(spoof_value),
        kind,
        injected_events=len(times),
        report_period=float(report_period),
    )


def temperature_attack(
    trace: Trace, device_id: str, onset: float, degrees: float = 15.0
) -> "tuple[Trace, Attack]":
    """Spoof a temperature sensor *degrees* above its observed maximum,
    driving the connected fan automation on."""
    scale = _scale_of(trace, device_id)
    return spoof_sensor_high(
        trace, device_id, onset, spoof_value=scale.high + degrees, kind="temperature"
    )


def light_attack(
    trace: Trace, device_id: str, onset: float, lux: float = 400.0
) -> "tuple[Trace, Attack]":
    """Spoof a light sensor bright at night, driving the blind automation."""
    return spoof_sensor_high(
        trace, device_id, onset, spoof_value=lux, kind="light"
    )


def coordinated_attack(
    trace: Trace,
    device_ids: Sequence[str],
    onset: float,
    report_period: float = 30.0,
) -> "tuple[Trace, Tuple[Attack, ...]]":
    """Spoof several sensors high at once, starting at the same onset.

    The victims report at slightly staggered cadences (``report_period``
    plus one second per victim) so the spoofed frames interleave instead
    of colliding on identical timestamps — real campaign traffic, and it
    keeps every frame distinct for the reorder buffer's duplicate check.
    """
    if not device_ids:
        raise ValueError("coordinated attack needs at least one victim")
    attacked = trace
    attacks: List[Attack] = []
    for i, device_id in enumerate(sorted(device_ids)):
        attacked, attack = spoof_sensor_high(
            attacked,
            device_id,
            onset,
            report_period=report_period + float(i),
            kind="coordinated",
        )
        attacks.append(attack)
    return attacked, tuple(attacks)
