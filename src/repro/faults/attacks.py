"""Security attacks (Ch. VI, "Expand to security").

The thesis demonstrates DICE against two sensor-spoofing attacks on the
testbed:

* **temperature attack** — the kitchen temperature sensor is spoofed high
  so the automation turns the fan on permanently (economic damage);
* **light attack** — a (bedroom/living-room) light sensor is spoofed high
  while the user sleeps, so the smart blind pulls down/up at night
  (privacy damage).

Both are rendered as value-injection on the victim sensor: spoofed
readings at a steady reporting cadence, starting at the attack onset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..model import Trace
from .models import InjectedFault, FaultType, _add_events, _scale_of


@dataclass(frozen=True)
class Attack:
    """Ground truth for one sensor-spoofing attack."""

    victim_device_id: str
    onset: float
    spoof_value: float
    kind: str  # "temperature" or "light"

    def as_fault(self) -> InjectedFault:
        """Attacks look like stuck-at-a-wrong-value faults to a detector."""
        return InjectedFault(self.victim_device_id, FaultType.STUCK_AT, self.onset)


def spoof_sensor_high(
    trace: Trace,
    device_id: str,
    onset: float,
    spoof_value: Optional[float] = None,
    report_period: float = 30.0,
    kind: str = "generic",
) -> "tuple[Trace, Attack]":
    """Inject steady spoofed readings well above the sensor's normal range."""
    if device_id not in trace.registry:
        raise KeyError(f"unknown device {device_id!r}")
    if not trace.start <= onset < trace.end:
        raise ValueError("attack onset must fall inside the trace interval")
    if spoof_value is None:
        scale = _scale_of(trace, device_id)
        spoof_value = scale.high + 1.5 * scale.span
    times = np.arange(onset, trace.end, report_period)
    attacked = _add_events(
        trace, device_id, times, np.full(len(times), spoof_value)
    )
    return attacked, Attack(device_id, onset, float(spoof_value), kind)


def temperature_attack(
    trace: Trace, device_id: str, onset: float, degrees: float = 15.0
) -> "tuple[Trace, Attack]":
    """Spoof a temperature sensor *degrees* above its observed maximum,
    driving the connected fan automation on."""
    scale = _scale_of(trace, device_id)
    return spoof_sensor_high(
        trace, device_id, onset, spoof_value=scale.high + degrees, kind="temperature"
    )


def light_attack(
    trace: Trace, device_id: str, onset: float, lux: float = 400.0
) -> "tuple[Trace, Attack]":
    """Spoof a light sensor bright at night, driving the blind automation."""
    return spoof_sensor_high(
        trace, device_id, onset, spoof_value=lux, kind="light"
    )
