"""Crash-injection chaos harness for the durability layer.

The durability contract says: kill the gateway anywhere — between events,
right after a checkpoint, or **mid-journal-write** (a torn tail) — and
``checkpoint + journal-tail replay`` reproduces the exact alert stream of
an uninterrupted run, with every alert delivered to the sink at least
once.  This module *tests that by doing it*: seeded synthetic
deployments, randomized kill points, torn-tail simulation via literal
byte truncation of the newest segment, recovery, and alert-stream
comparison — for both the standalone :class:`DurableOnlineDice` and the
sharded :class:`DurableFleetGateway` (including resharding on restore).

Crash model
-----------
A *process* crash loses user-space buffers but not the OS page cache, so
the harness closes file handles (flush-to-OS) before abandoning the
runtime object.  A *power* crash can also tear the last journal record
mid-write; the harness simulates that by chopping bytes off the end of
the newest segment — strictly fewer than the final record's frame, so
the CRC check must detect and discard it.  The write-ahead discipline
makes the torn case recoverable: the journal append precedes processing,
so a record torn on disk corresponds to an event whose effects the
recovered state must not contain — the source re-feeds it, exactly as a
resumed pipe would.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..core import DiceDetector
from ..durability import (
    AlertOutbox,
    DurableFleetGateway,
    DurableOnlineDice,
    FileSink,
    FlakySink,
    ProvenanceLog,
    alert_record,
    encode_record,
    event_to_record,
    list_segments,
)
from ..telemetry.provenance import canonical_record_bytes
from ..fleet import FleetGateway
from ..model import DeviceRegistry, Event, SensorType, Trace, actuator, binary_sensor, numeric_sensor
from ..streaming import Alert, HardenedOnlineDice, SupervisorPolicy
from .models import FaultType, InjectedFault, apply_fault
from .pipe import PipeFaultInjector, PipeFaultSpec, PipeFaultType

_log = telemetry.get_logger("repro.faults.crash")

HOUR = 3600.0

#: Runtime knobs every chaos run (baseline and crashed) shares — parity
#: only means anything when both sides run the same configuration.
LATENESS_SECONDS = 120.0
POLICY = SupervisorPolicy(silence_seconds=400.0, quarantine_seconds=800.0)

ALERTS_TOTAL = "dice_alerts_total"


# --------------------------------------------------------------------- #
# Synthetic chaos deployments
# --------------------------------------------------------------------- #


def _chaos_registry(prefix: str = "") -> DeviceRegistry:
    return DeviceRegistry(
        [
            binary_sensor(f"{prefix}motion_kitchen", SensorType.MOTION, "kitchen"),
            binary_sensor(f"{prefix}motion_bedroom", SensorType.MOTION, "bedroom"),
            numeric_sensor(f"{prefix}temp_kitchen", SensorType.TEMPERATURE, "kitchen"),
            actuator(f"{prefix}hue_kitchen", SensorType.BULB, "kitchen"),
        ]
    )


def _cyclic_trace(
    registry: DeviceRegistry, hours: float, phase_seconds: float
) -> Trace:
    """Alternating kitchen/bedroom phases with a temperature ramp and a
    bulb activation — enough context structure for every DICE stage."""
    times: List[float] = []
    devs: List[int] = []
    vals: List[float] = []
    horizon = hours * HOUR
    t = 0.0
    while t < horizon:
        half = phase_seconds / 2.0
        for s in np.arange(t, t + half, 30.0):
            times.append(float(s)), devs.append(0), vals.append(1.0)
        for s in np.arange(t, t + half, 20.0):
            times.append(float(s)), devs.append(2), vals.append(25.0 + (s - t) / 60.0)
        times.append(t + 70.0), devs.append(3), vals.append(1.0)
        times.append(t + half), devs.append(3), vals.append(0.0)
        for s in np.arange(t + half, t + phase_seconds, 30.0):
            times.append(float(s)), devs.append(1), vals.append(1.0)
        for s in np.arange(t + half, t + phase_seconds, 20.0):
            times.append(float(s))
            devs.append(2)
            vals.append(25.0 + (t + phase_seconds - s) / 60.0)
        t += phase_seconds
    arr_t = np.array(times)
    keep = arr_t < horizon  # the final phase may overshoot the horizon
    return Trace(
        registry,
        arr_t[keep],
        np.array(devs, dtype=np.int32)[keep],
        np.array(vals)[keep],
        start=0.0,
        end=horizon,
    )


@dataclass
class ChaosDeployment:
    """One seeded synthetic home plus the adversarial live arrival stream."""

    home_id: str
    registry: DeviceRegistry
    trace: Trace
    split: float  # training is [start, split); live is [split, end)
    events: List[Event]  # live arrival sequence, pipe faults applied
    fault_device: str
    fault_time: float
    fault_class: FaultType = FaultType.FAIL_STOP
    backend: str = "dice"

    @property
    def end(self) -> float:
        return self.trace.end

    def fit_detector(
        self, metrics: Optional["telemetry.MetricsRegistry"] = None
    ):
        """A fresh fitted detector (fresh metrics, so trial runs never
        share counters or memo state with each other).

        A ``dice`` deployment returns the bare :class:`DiceDetector` —
        byte-compatible with every pre-backend chaos seed — while other
        backends return the fitted :class:`~repro.core.DetectorBackend`.
        """
        if metrics is None:
            metrics = telemetry.MetricsRegistry()
        train = self.trace.slice(self.trace.start, self.split)
        if self.backend == "dice":
            return DiceDetector(self.registry, metrics=metrics).fit(train)
        from ..core import create_backend

        return create_backend(self.backend, self.registry, metrics=metrics).fit(
            train
        )


def build_chaos_deployment(
    seed: int,
    home_id: str = "home-0000",
    *,
    hours: float = 4.5,
    fault_class: FaultType = FaultType.FAIL_STOP,
    backend: str = "dice",
) -> ChaosDeployment:
    """A pure function of ``(seed, home_id, hours, fault_class, backend)``.

    The live segment carries a seeded device fault — fail-stop by default
    (one motion sensor goes silent), or any Ch. IV.2 class via
    *fault_class* — plus reorder/duplicate/corrupt pipe faults, so crash
    points land among detections, open identification sessions,
    quarantines and guarded drops — the states a recovery must reproduce.
    """
    rng = np.random.default_rng(seed)
    phase = float(rng.choice([480.0, 600.0, 720.0]))
    registry = _chaos_registry(prefix=f"{home_id}_")
    trace = _cyclic_trace(registry, hours, phase)
    split = 3.0 * HOUR
    live = list(trace.slice(split, trace.end))
    sensors = [d.device_id for d in registry if not d.is_actuator][:2]
    victim = sensors[int(rng.integers(len(sensors)))]
    fault_time = split + (0.3 + 0.4 * float(rng.random())) * (trace.end - split)
    if fault_class is FaultType.FAIL_STOP:
        # Kept as the original event-list filter so pre-existing seeds
        # reproduce byte-identical deployments.
        live = [
            e
            for e in live
            if not (e.device_id == victim and e.timestamp >= fault_time)
        ]
    else:
        faulty = apply_fault(
            trace,
            InjectedFault(victim, fault_class, fault_time),
            np.random.default_rng(seed + 2),
        )
        live = list(faulty.slice(split, faulty.end))
    injector = PipeFaultInjector(
        np.random.default_rng(seed + 1),
        [
            PipeFaultSpec(PipeFaultType.REORDER, max_delay_seconds=60.0),
            PipeFaultSpec(PipeFaultType.DUPLICATE, rate=0.08, max_delay_seconds=60.0),
            PipeFaultSpec(PipeFaultType.CORRUPT_VALUE, rate=0.02),
        ],
    )
    return ChaosDeployment(
        home_id=home_id,
        registry=registry,
        trace=trace,
        split=split,
        events=injector.apply(live),
        fault_device=victim,
        fault_time=fault_time,
        fault_class=fault_class,
        backend=backend,
    )


# --------------------------------------------------------------------- #
# Canonicalization & counters
# --------------------------------------------------------------------- #


def canonical_alerts(alerts: Sequence[Alert]) -> str:
    """Byte rendering independent of the process hash seed."""
    return repr(
        [
            (a.kind, a.time, a.check, a.cases, tuple(sorted(a.devices)), a.converged)
            for a in alerts
        ]
    )


def canonical_provenance(records: Sequence[dict]) -> Dict[str, bytes]:
    """Trace id → exact journal bytes, the form provenance parity compares.

    Keyed by id (not ordered) because the recovered archive interleaves
    pre-crash appends with replay-regenerated ones; the contract is that
    every record exists exactly once with byte-identical evidence, not
    that append order survives the crash."""
    return {record["id"]: canonical_record_bytes(record) for record in records}


def _counter_total(metrics: "telemetry.MetricsRegistry", name: str) -> float:
    entry = metrics.snapshot()["metrics"].get(name)
    if entry is None:
        return 0.0
    return float(sum(row["value"] for row in entry["series"]))


def _expected_ids(home_id: str, alerts: Sequence[Alert]) -> List[str]:
    return [
        alert_record(home_id, seq, alert)["id"]
        for seq, alert in enumerate(alerts, start=1)
    ]


def tear_final_record(journal_dir: str, last_event: Event, rng) -> int:
    """Chop bytes off the newest segment so its final record fails CRC.

    Removes between 1 and ``frame_size - 1`` bytes — never the whole
    frame, so the file provably ends in a *partial* record that the
    reader must detect and discard.  Returns the number of bytes cut.
    """
    segments = list_segments(journal_dir)
    if not segments:
        return 0
    path = segments[-1][1]
    frame = len(encode_record(event_to_record(last_event)))
    size = os.path.getsize(path)
    if size < frame:
        return 0
    cut = int(rng.integers(1, frame))
    with open(path, "ab") as handle:
        handle.truncate(size - cut)
    return cut


# --------------------------------------------------------------------- #
# Trial results
# --------------------------------------------------------------------- #


@dataclass
class CrashTrialResult:
    """One kill-and-recover cycle, judged against the uninterrupted run."""

    mode: str  # "standalone" or "fleet"
    deploy_seed: int
    kill_index: int
    total_events: int
    checkpointed: bool
    torn: bool
    parity: bool
    counters_monotone: bool
    delivery_ok: bool
    replayed_alerts: int
    delivered: int
    dead_letters: int
    shards_before: int = 1
    shards_after: int = 1
    #: Every provenance record in the recovered archive is byte-identical
    #: to the uninterrupted run's evidence (True when no oracle was given).
    provenance_parity: bool = True

    @property
    def ok(self) -> bool:
        return (
            self.parity
            and self.counters_monotone
            and self.delivery_ok
            and self.provenance_parity
        )


@dataclass
class ChaosReport:
    """Aggregate verdict over a batch of trials."""

    trials: List[CrashTrialResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.trials) and all(t.ok for t in self.trials)

    def summary(self) -> dict:
        return {
            "trials": len(self.trials),
            "ok": self.ok,
            "parity_failures": sum(1 for t in self.trials if not t.parity),
            "counter_failures": sum(
                1 for t in self.trials if not t.counters_monotone
            ),
            "delivery_failures": sum(1 for t in self.trials if not t.delivery_ok),
            "provenance_failures": sum(
                1 for t in self.trials if not t.provenance_parity
            ),
            "torn_trials": sum(1 for t in self.trials if t.torn),
            "checkpointed_trials": sum(1 for t in self.trials if t.checkpointed),
            "delivered": sum(t.delivered for t in self.trials),
            "dead_letters": sum(t.dead_letters for t in self.trials),
        }


# --------------------------------------------------------------------- #
# Standalone trials
# --------------------------------------------------------------------- #


def standalone_oracle(
    deployment: ChaosDeployment,
) -> Tuple[List[Alert], Dict[str, bytes]]:
    """The uninterrupted run's alert stream and evidence archive."""
    runtime = HardenedOnlineDice(
        deployment.fit_detector(metrics=telemetry.NULL_REGISTRY),
        start=deployment.split,
        lateness_seconds=LATENESS_SECONDS,
        policy=POLICY,
    )
    # Match the durable layer's home stamping so trace ids line up.
    runtime.provenance.home_id = deployment.home_id
    alerts = runtime.ingest_many(deployment.events)
    alerts += runtime.finish_stream(deployment.end)
    return alerts, canonical_provenance(runtime.provenance.records())


def baseline_standalone(deployment: ChaosDeployment) -> List[Alert]:
    """The uninterrupted run's alert stream (the oracle)."""
    return standalone_oracle(deployment)[0]


def run_standalone_trial(
    deployment: ChaosDeployment,
    expected: List[Alert],
    workdir: str,
    *,
    kill_index: int,
    checkpoint_index: Optional[int] = None,
    torn: bool = False,
    fsync: str = "never",
    flaky_failures: int = 1,
    max_attempts: int = 4,
    rng=None,
    expected_provenance: Optional[Dict[str, bytes]] = None,
) -> CrashTrialResult:
    """Run, kill at *kill_index*, recover, finish; judge against *expected*.

    With *torn*, the final journal record (event ``kill_index - 1``) is
    byte-truncated after the crash; the source then re-feeds from that
    event, as a resumed pipe would — the recovered stream must still
    match the oracle exactly.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    events = deployment.events
    os.makedirs(workdir, exist_ok=True)
    journal_dir = os.path.join(workdir, "journal")
    ckpt_path = os.path.join(workdir, "gateway.ckpt.json")
    outbox_dir = os.path.join(workdir, "outbox")
    delivered_path = os.path.join(workdir, "delivered.jsonl")

    def make_outbox() -> Tuple[AlertOutbox, FlakySink]:
        sink = FlakySink(FileSink(delivered_path), failures=flaky_failures)
        outbox = AlertOutbox(
            outbox_dir,
            sink,
            max_attempts=max_attempts,
            sleep=lambda _s: None,
            metrics=telemetry.NULL_REGISTRY,
        )
        return outbox, sink

    # --- life before the crash ---------------------------------------- #
    outbox, _ = make_outbox()
    durable = DurableOnlineDice(
        deployment.fit_detector(),
        journal_dir,
        home_id=deployment.home_id,
        start=deployment.split,
        fsync=fsync,
        outbox=outbox,
        lateness_seconds=LATENESS_SECONDS,
        policy=POLICY,
    )
    alerts_at_checkpoint = 0.0
    prefix: List[Alert] = []
    if checkpoint_index is not None and 0 < checkpoint_index < kill_index:
        durable.ingest_many(events[:checkpoint_index])
        durable.save_checkpoint(ckpt_path)
        alerts_at_checkpoint = _counter_total(durable.metrics, ALERTS_TOTAL)
        # Restore does not resurrect alert *history* (those alerts were
        # already delivered); the end-to-end stream is prefix + recovered.
        prefix = list(durable.alerts)
        durable.ingest_many(events[checkpoint_index:kill_index])
    else:
        checkpoint_index = None
        durable.ingest_many(events[:kill_index])
    durable.deliver_pending()  # some alerts reach the sink pre-crash
    durable.close()  # process crash: user buffers flush to the OS, then death

    resume_from = kill_index
    if torn:
        cut = tear_final_record(
            journal_dir, events[kill_index - 1], np.random.default_rng(int(rng.integers(1 << 31)))
        )
        if cut:
            # The torn record's event never durably happened: re-feed it.
            resume_from = kill_index - 1

    # --- the next life ------------------------------------------------- #
    outbox, sink = make_outbox()
    recovered, replayed = DurableOnlineDice.recover(
        deployment.fit_detector(),
        journal_dir,
        checkpoint_path=ckpt_path,
        home_id=deployment.home_id,
        start=deployment.split,
        fsync=fsync,
        outbox=outbox,
        lateness_seconds=LATENESS_SECONDS,
        policy=POLICY,
    )
    alerts_after_replay = _counter_total(recovered.metrics, ALERTS_TOTAL)
    recovered.ingest_many(events[resume_from:])
    recovered.finish_stream(deployment.end)
    recovered.deliver_pending()
    provenance_parity = True
    if expected_provenance is not None:
        archived = canonical_provenance(recovered.provenance_log.records())
        provenance_parity = archived == expected_provenance
    recovered.close()

    parity = canonical_alerts(prefix + recovered.alerts) == canonical_alerts(expected)
    final_total = _counter_total(recovered.metrics, ALERTS_TOTAL)
    counters_monotone = (
        alerts_after_replay >= alerts_at_checkpoint
        and final_total == float(len(expected))
    )
    expected_ids = set(_expected_ids(deployment.home_id, expected))
    acked = set(outbox.delivered_ids())
    dead = outbox.dead_letters()
    dead_ids = {entry["record"]["id"] for entry in dead}
    delivery_ok = parity and expected_ids == (acked | dead_ids)
    if flaky_failures < max_attempts:
        delivery_ok = delivery_ok and not dead_ids
    return CrashTrialResult(
        mode="standalone",
        deploy_seed=-1,  # caller stamps it
        kill_index=kill_index,
        total_events=len(events),
        checkpointed=checkpoint_index is not None,
        torn=torn and resume_from != kill_index,
        parity=parity,
        counters_monotone=counters_monotone,
        delivery_ok=delivery_ok,
        replayed_alerts=len(replayed),
        delivered=len(acked),
        dead_letters=len(dead),
        provenance_parity=provenance_parity,
    )


def run_chaos_standalone(
    base_dir: str,
    *,
    deployments: int = 5,
    kills_per_deployment: int = 5,
    seed: int = 0,
    fsync: str = "never",
    fault_class: FaultType = FaultType.FAIL_STOP,
) -> ChaosReport:
    """The standalone chaos batch: seeded deployments × random kill points."""
    report = ChaosReport()
    rng = np.random.default_rng(seed)
    for d in range(deployments):
        deploy_seed = seed * 1000 + d
        deployment = build_chaos_deployment(deploy_seed, fault_class=fault_class)
        expected, expected_provenance = standalone_oracle(deployment)
        for k in range(kills_per_deployment):
            n = len(deployment.events)
            kill_index = int(rng.integers(2, n))
            checkpoint_index: Optional[int] = None
            if rng.random() < 0.5 and kill_index > 2:
                checkpoint_index = int(rng.integers(1, kill_index))
            torn = bool(rng.random() < 0.34)
            workdir = os.path.join(base_dir, f"standalone-{deploy_seed}-{k}")
            result = run_standalone_trial(
                deployment,
                expected,
                workdir,
                kill_index=kill_index,
                checkpoint_index=checkpoint_index,
                torn=torn,
                fsync=fsync,
                rng=rng,
                expected_provenance=expected_provenance,
            )
            result.deploy_seed = deploy_seed
            report.trials.append(result)
            _log.info(
                "chaos_trial",
                mode="standalone",
                deploy_seed=deploy_seed,
                kill_index=kill_index,
                torn=result.torn,
                checkpointed=result.checkpointed,
                ok=result.ok,
            )
    return report


# --------------------------------------------------------------------- #
# Fleet trials
# --------------------------------------------------------------------- #


def build_chaos_fleet(
    seed: int,
    num_homes: int = 3,
    fault_class: FaultType = FaultType.FAIL_STOP,
) -> Tuple[List[ChaosDeployment], List[Tuple[str, Event]]]:
    """*num_homes* chaos deployments plus their merged arrival stream."""
    deployments = [
        build_chaos_deployment(
            seed * 100 + i, home_id=f"home-{i:04d}", fault_class=fault_class
        )
        for i in range(num_homes)
    ]
    merged: List[Tuple[float, int, str, Event]] = []
    for order, dep in enumerate(deployments):
        for event in dep.events:
            merged.append((event.timestamp, order, dep.home_id, event))
    merged.sort(key=lambda item: (item[0], item[1]))
    return deployments, [(home_id, event) for _, _, home_id, event in merged]


def _fresh_fleet(
    deployments: Sequence[ChaosDeployment],
    detectors: Dict[str, DiceDetector],
    num_shards: int,
) -> FleetGateway:
    gateway = FleetGateway(num_shards, metrics=telemetry.NULL_REGISTRY)
    for dep in deployments:
        gateway.add_runtime(
            dep.home_id,
            HardenedOnlineDice(
                detectors[dep.home_id],
                start=dep.split,
                lateness_seconds=LATENESS_SECONDS,
                policy=POLICY,
            ),
        )
    return gateway


def fleet_oracle(
    deployments: Sequence[ChaosDeployment],
    merged: Sequence[Tuple[str, Event]],
) -> Tuple[Dict[str, List[Alert]], Dict[str, Dict[str, bytes]]]:
    """Per-home oracle alert streams and evidence archives from an
    uninterrupted single-shard run."""
    detectors = {
        dep.home_id: dep.fit_detector(metrics=telemetry.NULL_REGISTRY)
        for dep in deployments
    }
    gateway = _fresh_fleet(deployments, detectors, num_shards=1)
    gateway.dispatch(merged)
    gateway.finish({dep.home_id: dep.end for dep in deployments})
    alerts = {dep.home_id: gateway.alerts_of(dep.home_id) for dep in deployments}
    provenance = {
        dep.home_id: canonical_provenance(
            gateway.runtime_of(dep.home_id).provenance.records()
        )
        for dep in deployments
    }
    return alerts, provenance


def baseline_fleet(
    deployments: Sequence[ChaosDeployment],
    merged: Sequence[Tuple[str, Event]],
) -> Dict[str, List[Alert]]:
    """Per-home oracle streams from an uninterrupted single-shard run."""
    return fleet_oracle(deployments, merged)[0]


def run_fleet_trial(
    deployments: Sequence[ChaosDeployment],
    merged: Sequence[Tuple[str, Event]],
    expected: Dict[str, List[Alert]],
    workdir: str,
    *,
    kill_index: int,
    checkpoint_index: Optional[int] = None,
    torn: bool = False,
    shards_before: int = 2,
    shards_after: int = 2,
    fsync: str = "never",
    flaky_failures: int = 1,
    max_attempts: int = 4,
    rng=None,
    expected_provenance: Optional[Dict[str, Dict[str, bytes]]] = None,
) -> CrashTrialResult:
    """Kill a fleet mid-stream, recover (possibly resharded), compare
    per-home alert streams against the oracle."""
    if rng is None:
        rng = np.random.default_rng(0)
    os.makedirs(workdir, exist_ok=True)
    journal_root = os.path.join(workdir, "journals")
    ckpt_dir = os.path.join(workdir, "fleet-ckpt")
    outbox_dir = os.path.join(workdir, "outbox")
    delivered_path = os.path.join(workdir, "delivered.jsonl")
    ends = {dep.home_id: dep.end for dep in deployments}

    def make_outbox() -> Tuple[AlertOutbox, FlakySink]:
        sink = FlakySink(FileSink(delivered_path), failures=flaky_failures)
        return (
            AlertOutbox(
                outbox_dir,
                sink,
                max_attempts=max_attempts,
                sleep=lambda _s: None,
                metrics=telemetry.NULL_REGISTRY,
            ),
            sink,
        )

    detectors = {dep.home_id: dep.fit_detector() for dep in deployments}
    outbox, _ = make_outbox()
    durable = DurableFleetGateway(
        _fresh_fleet(deployments, detectors, shards_before),
        journal_root,
        fsync=fsync,
        outbox=outbox,
    )
    prefix: Dict[str, List[Alert]] = {dep.home_id: [] for dep in deployments}
    if checkpoint_index is not None and 0 < checkpoint_index < kill_index:
        durable.dispatch(merged[:checkpoint_index])
        durable.save_checkpoint(ckpt_dir)
        prefix = {
            dep.home_id: list(durable.alerts_of(dep.home_id)) for dep in deployments
        }
        durable.dispatch(merged[checkpoint_index:kill_index])
    else:
        checkpoint_index = None
        durable.dispatch(merged[:kill_index])
    durable.deliver_pending()
    durable.close()

    resume_from = kill_index
    if torn:
        torn_home, torn_event = merged[kill_index - 1]
        cut = tear_final_record(
            os.path.join(journal_root, torn_home),
            torn_event,
            np.random.default_rng(int(rng.integers(1 << 31))),
        )
        if cut:
            resume_from = kill_index - 1

    detectors = {dep.home_id: dep.fit_detector() for dep in deployments}
    outbox, _ = make_outbox()
    recovered, replayed = DurableFleetGateway.recover(
        detectors,
        journal_root,
        checkpoint_dir=ckpt_dir if checkpoint_index is not None else None,
        gateway=(
            None
            if checkpoint_index is not None
            else _fresh_fleet(deployments, detectors, shards_after)
        ),
        num_shards=shards_after,
        fsync=fsync,
        outbox=outbox,
        lateness_seconds=LATENESS_SECONDS,
        policy=POLICY,
    )
    recovered.dispatch(merged[resume_from:])
    recovered.finish(ends)
    recovered.deliver_pending()
    provenance_parity = True
    if expected_provenance is not None:
        # Read the per-home archives fresh from disk: a home whose records
        # all predate the crash may never have lazily opened a log handle
        # in the recovered gateway.
        provenance_parity = all(
            canonical_provenance(
                ProvenanceLog(os.path.join(journal_root, home_id)).records()
            )
            == expected_provenance[home_id]
            for home_id in expected_provenance
        )
    recovered.close()

    parity = all(
        canonical_alerts(prefix[home_id] + recovered.alerts_of(home_id))
        == canonical_alerts(expected[home_id])
        for home_id in expected
    )
    counters_monotone = all(
        _counter_total(
            recovered.gateway.runtime_of(home_id).metrics, ALERTS_TOTAL
        )
        == float(len(expected[home_id]))
        for home_id in expected
    )
    expected_ids = set()
    for home_id, alerts in expected.items():
        expected_ids.update(_expected_ids(home_id, alerts))
    acked = set(outbox.delivered_ids())
    dead = outbox.dead_letters()
    dead_ids = {entry["record"]["id"] for entry in dead}
    delivery_ok = parity and expected_ids == (acked | dead_ids)
    if flaky_failures < max_attempts:
        delivery_ok = delivery_ok and not dead_ids
    return CrashTrialResult(
        mode="fleet",
        deploy_seed=-1,
        kill_index=kill_index,
        total_events=len(merged),
        checkpointed=checkpoint_index is not None,
        torn=torn and resume_from != kill_index,
        parity=parity,
        counters_monotone=counters_monotone,
        delivery_ok=delivery_ok,
        replayed_alerts=len(replayed),
        delivered=len(acked),
        dead_letters=len(dead),
        shards_before=shards_before,
        shards_after=shards_after,
        provenance_parity=provenance_parity,
    )


def run_chaos_fleet(
    base_dir: str,
    *,
    fleets: int = 2,
    kills_per_fleet: int = 4,
    num_homes: int = 3,
    seed: int = 0,
    fsync: str = "never",
    shard_choices: Sequence[int] = (1, 2, 4),
    fault_class: FaultType = FaultType.FAIL_STOP,
) -> ChaosReport:
    """The fleet chaos batch, resharding on roughly half the restores."""
    report = ChaosReport()
    rng = np.random.default_rng(seed + 7)
    for f in range(fleets):
        fleet_seed = seed * 1000 + f
        deployments, merged = build_chaos_fleet(
            fleet_seed, num_homes=num_homes, fault_class=fault_class
        )
        expected, expected_provenance = fleet_oracle(deployments, merged)
        for k in range(kills_per_fleet):
            kill_index = int(rng.integers(2, len(merged)))
            checkpoint_index: Optional[int] = None
            if rng.random() < 0.5 and kill_index > 2:
                checkpoint_index = int(rng.integers(1, kill_index))
            torn = bool(rng.random() < 0.34)
            shards_before = int(rng.choice(shard_choices))
            shards_after = int(rng.choice(shard_choices))
            workdir = os.path.join(base_dir, f"fleet-{fleet_seed}-{k}")
            result = run_fleet_trial(
                deployments,
                merged,
                expected,
                workdir,
                kill_index=kill_index,
                checkpoint_index=checkpoint_index,
                torn=torn,
                shards_before=shards_before,
                shards_after=shards_after,
                fsync=fsync,
                rng=rng,
                expected_provenance=expected_provenance,
            )
            result.deploy_seed = fleet_seed
            report.trials.append(result)
            _log.info(
                "chaos_trial",
                mode="fleet",
                fleet_seed=fleet_seed,
                kill_index=kill_index,
                shards=f"{shards_before}->{shards_after}",
                torn=result.torn,
                checkpointed=result.checkpointed,
                ok=result.ok,
            )
    return report
