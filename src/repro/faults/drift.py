"""Concept-drift generators (beyond the paper).

DICE's precomputation assumes the home's context is stationary: the group
registry and transition matrices learned during training stay valid for
the whole live phase.  Real homes drift — residents change routines with
the seasons, and a dead sensor gets replaced by a unit with different
timing and calibration.  Unlike the Ch. IV.2 faults, drift is *not* a
device failure: the post-onset behaviour is perfectly healthy, just
different, so a detector without any adaptation path alerts forever.

Two renderings, both pure transformations of a trace:

* **seasonal shift** — a subset of the home's sensors moves its activity
  by a fixed offset (dinner an hour later, blinds on a winter schedule).
  Co-activation windows now mix phases that never co-occurred in
  training, so the learned groups stop matching — sustained correlation
  violations until the context is refreshed.
* **device replacement** — one device is swapped mid-stream: the
  replacement reports on a lagged schedule and (numeric) with a
  calibration bias.  A single-device, permanent version of the same
  stationarity break.

Both are stationary *after* the onset: the drifted behaviour repeats, so
an online context refresh (``repro.streaming.refresh``) can re-learn it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..model import Trace


class DriftType(enum.Enum):
    SEASONAL_SHIFT = "seasonal_shift"
    DEVICE_REPLACEMENT = "device_replacement"


#: Every drift rendering, in reporting order.
ALL_DRIFT_TYPES = (DriftType.SEASONAL_SHIFT, DriftType.DEVICE_REPLACEMENT)


@dataclass(frozen=True)
class InjectedDrift:
    """Ground truth describing one concept-drift episode."""

    drift_type: DriftType
    onset: float  # absolute seconds within the (drifted) trace
    devices: Tuple[str, ...]  # the devices whose behaviour changed
    shift_seconds: float  # timing offset applied to post-onset events


def _shift_devices(
    trace: Trace,
    device_ids: Tuple[str, ...],
    onset: float,
    shift_seconds: float,
    value_bias: float = 0.0,
) -> Trace:
    """Move the post-onset events of *device_ids* by *shift_seconds*.

    Events shifted past the end of the trace are discarded (the recording
    simply ends); events are never shifted before the onset, so the drift
    cannot leak into the training prefix.
    """
    indices = {trace.registry.index_of(d) for d in device_ids}
    drifting = np.isin(trace.device_indices, list(indices)) & (
        trace.timestamps >= onset
    )
    times = trace.timestamps.copy()
    times[drifting] += shift_seconds
    values = trace.values
    if value_bias:
        values = values.copy()
        values[drifting] += value_bias
    keep = (times >= trace.start) & (times < trace.end)
    return trace.replace_arrays(
        times[keep], trace.device_indices[keep], values[keep]
    )


def inject_seasonal_shift(
    trace: Trace,
    onset: float,
    rng: np.random.Generator,
    shift_seconds: float = 300.0,
    fraction: float = 0.5,
) -> "tuple[Trace, InjectedDrift]":
    """Shift a seeded subset of the home's sensors by *shift_seconds*.

    Roughly *fraction* of the (non-actuator) devices move together — a
    coherent routine change, not independent jitter — so windows after the
    onset mix shifted and unshifted activity into state sets the training
    phase never produced.
    """
    if not trace.start <= onset < trace.end:
        raise ValueError("drift onset must fall inside the trace interval")
    sensors = sorted(
        d.device_id for d in trace.registry if not d.is_actuator
    )
    if not sensors:
        raise ValueError("trace has no sensors to drift")
    count = max(1, int(round(fraction * len(sensors))))
    chosen = tuple(
        sorted(
            str(d)
            for d in rng.choice(sensors, size=min(count, len(sensors)), replace=False)
        )
    )
    drifted = _shift_devices(trace, chosen, onset, shift_seconds)
    return drifted, InjectedDrift(
        DriftType.SEASONAL_SHIFT, onset, chosen, float(shift_seconds)
    )


def inject_device_replacement(
    trace: Trace,
    device_id: str,
    onset: float,
    rng: np.random.Generator,
    lag_seconds: float = 240.0,
    calibration_bias: float = 2.0,
) -> "tuple[Trace, InjectedDrift]":
    """Swap *device_id* for a replacement unit at *onset*.

    The replacement follows the same household activity but reports
    *lag_seconds* later (different debounce/reporting firmware) and, for
    numeric sensors, with a constant calibration offset.  ``rng`` jitters
    the lag by up to ±20% so two replacements never behave identically.
    """
    if device_id not in trace.registry:
        raise KeyError(f"unknown device {device_id!r}")
    if not trace.start <= onset < trace.end:
        raise ValueError("drift onset must fall inside the trace interval")
    device = trace.registry[device_id]
    lag = float(lag_seconds) * float(1.0 + 0.4 * (rng.random() - 0.5))
    bias = 0.0 if device.is_binary or device.is_actuator else float(calibration_bias)
    drifted = _shift_devices(trace, (device_id,), onset, lag, value_bias=bias)
    return drifted, InjectedDrift(
        DriftType.DEVICE_REPLACEMENT, onset, (device_id,), lag
    )


def apply_drift(
    trace: Trace,
    drift_type: DriftType,
    onset: float,
    rng: np.random.Generator,
) -> "tuple[Trace, InjectedDrift]":
    """Dispatch on the drift type with seeded device selection."""
    if drift_type is DriftType.SEASONAL_SHIFT:
        return inject_seasonal_shift(trace, onset, rng)
    if drift_type is DriftType.DEVICE_REPLACEMENT:
        sensors = sorted(
            d.device_id for d in trace.registry if not d.is_actuator
        )
        if not sensors:
            raise ValueError("trace has no sensors to replace")
        victim = sensors[int(rng.integers(len(sensors)))]
        return inject_device_replacement(trace, victim, onset, rng)
    raise ValueError(f"unhandled drift type {drift_type}")
