"""Fault selection and injection into evaluation segments.

The thesis chose "the sensor type, fault type, and the insertion time ...
randomly".  One refinement keeps the choice meaningful: the target device
must actually carry data in the segment after the onset, otherwise the
fault (most obviously a fail-stop of a cupboard switch in a segment where
the cupboard is never opened) has no observable footprint at all and no
detector — including an oracle — could see it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..model import Device, Trace
from .models import ALL_FAULT_TYPES, FaultType, InjectedFault, apply_fault


@dataclass(frozen=True)
class InjectionPolicy:
    """Knobs for random fault placement."""

    #: Fault onset is drawn uniformly from this fraction range of the segment.
    onset_fraction: Tuple[float, float] = (0.15, 0.6)
    #: The device must have at least this many events after the onset
    #: (before injection) for the fault to be observable.
    min_events_after_onset: int = 1
    #: How many (device, onset) draws to attempt before giving up.
    max_attempts: int = 200

    def __post_init__(self) -> None:
        lo, hi = self.onset_fraction
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("onset_fraction must satisfy 0 <= lo < hi <= 1")
        if self.min_events_after_onset < 0:
            raise ValueError("min_events_after_onset must be non-negative")


class FaultInjector:
    """Randomised fault placement over one device pool."""

    def __init__(
        self,
        rng: np.random.Generator,
        fault_types: Sequence[FaultType] = ALL_FAULT_TYPES,
        policy: InjectionPolicy = InjectionPolicy(),
    ) -> None:
        if not fault_types:
            raise ValueError("need at least one fault type")
        self.rng = rng
        self.fault_types = tuple(fault_types)
        self.policy = policy

    # ------------------------------------------------------------------ #

    def _candidate_devices(
        self, segment: Trace, devices: Optional[Sequence[Device]]
    ) -> List[Device]:
        pool = list(devices) if devices is not None else segment.registry.sensors()
        counts = segment.event_counts()
        return [
            d
            for d in pool
            if counts[segment.registry.index_of(d.device_id)]
            >= max(1, self.policy.min_events_after_onset)
        ]

    def choose(
        self,
        segment: Trace,
        devices: Optional[Sequence[Device]] = None,
        fault_type: Optional[FaultType] = None,
    ) -> InjectedFault:
        """Draw a (device, fault type, onset) triple for *segment*."""
        candidates = self._candidate_devices(segment, devices)
        if not candidates:
            raise ValueError("no device has events in this segment")
        chosen_type = fault_type or self.fault_types[
            int(self.rng.integers(len(self.fault_types)))
        ]
        lo, hi = self.policy.onset_fraction
        span = segment.end - segment.start
        for _ in range(self.policy.max_attempts):
            device = candidates[int(self.rng.integers(len(candidates)))]
            onset = segment.start + span * self.rng.uniform(lo, hi)
            times, _ = segment.events_for(device.device_id)
            after = int((times >= onset).sum())
            if after >= self.policy.min_events_after_onset:
                return InjectedFault(device.device_id, chosen_type, onset)
        # Fall back to the device's first event time as the onset anchor.
        device = candidates[int(self.rng.integers(len(candidates)))]
        times, _ = segment.events_for(device.device_id)
        onset = max(segment.start, float(times[0]) - 1.0)
        return InjectedFault(device.device_id, chosen_type, onset)

    def inject(
        self,
        segment: Trace,
        fault: Optional[InjectedFault] = None,
        devices: Optional[Sequence[Device]] = None,
        fault_type: Optional[FaultType] = None,
    ) -> Tuple[Trace, InjectedFault]:
        """Inject a (chosen or given) fault; returns the faulty trace."""
        if fault is None:
            fault = self.choose(segment, devices, fault_type)
        return apply_fault(segment, fault, self.rng), fault

    def inject_many(
        self,
        segment: Trace,
        count: int,
        devices: Optional[Sequence[Device]] = None,
    ) -> Tuple[Trace, List[InjectedFault]]:
        """Simultaneous multi-fault injection (Ch. VI): *count* distinct
        devices fault at independent onsets within one segment."""
        if count < 1:
            raise ValueError("count must be at least 1")
        faults: List[InjectedFault] = []
        faulty = segment
        used: set = set()
        for _ in range(count):
            pool = [
                d
                for d in self._candidate_devices(segment, devices)
                if d.device_id not in used
            ]
            if not pool:
                break
            fault = self.choose(segment, pool)
            used.add(fault.device_id)
            faulty = apply_fault(faulty, fault, self.rng)
            faults.append(fault)
        return faulty, faults
