"""Fault models (Ch. IV.2).

Following Ni et al.'s fault taxonomy, the thesis injects one fail-stop class
and the four most frequently observed non-fail-stop classes:

* **fail-stop** — the device dies; no data after the onset;
* **outlier** — isolated anomalous readings;
* **stuck-at** — the output freezes at one value, unaffected by the input;
* **high-noise** — noise/variance beyond the expected degree;
* **spike** — a burst of data points far above the expected value.

Each model is a pure transformation of a device's event stream within a
trace; binary and numeric devices get the class-appropriate rendering
(e.g. "high noise" on a reed switch is flicker, on a thermometer it is
variance).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..model import Trace


class FaultType(enum.Enum):
    FAIL_STOP = "fail_stop"
    OUTLIER = "outlier"
    STUCK_AT = "stuck_at"
    HIGH_NOISE = "high_noise"
    SPIKE = "spike"

    @property
    def is_fail_stop(self) -> bool:
        return self is FaultType.FAIL_STOP


#: The non-fail-stop classes of Ni et al. the evaluation cycles through.
NON_FAIL_STOP_TYPES = (
    FaultType.OUTLIER,
    FaultType.STUCK_AT,
    FaultType.HIGH_NOISE,
    FaultType.SPIKE,
)

ALL_FAULT_TYPES = (FaultType.FAIL_STOP,) + NON_FAIL_STOP_TYPES


@dataclass(frozen=True)
class InjectedFault:
    """Ground truth describing one injected fault."""

    device_id: str
    fault_type: FaultType
    onset: float  # absolute seconds within the (faulty) trace


@dataclass
class _DeviceScale:
    """Value statistics used to size numeric fault magnitudes."""

    low: float
    high: float

    @property
    def span(self) -> float:
        return max(self.high - self.low, 1.0)


def _scale_of(trace: Trace, device_id: str) -> _DeviceScale:
    _, values = trace.events_for(device_id)
    if len(values) == 0:
        return _DeviceScale(0.0, 1.0)
    return _DeviceScale(float(values.min()), float(values.max()))


def _last_value_before(trace: Trace, device_id: str, onset: float) -> Optional[float]:
    times, values = trace.events_for(device_id)
    before = values[times < onset]
    return float(before[-1]) if len(before) else None


def _drop_after(trace: Trace, device_id: str, onset: float) -> Trace:
    keep = ~(trace.device_mask(device_id) & (trace.timestamps >= onset))
    return trace.replace_arrays(
        trace.timestamps[keep], trace.device_indices[keep], trace.values[keep]
    )


def _add_events(
    trace: Trace, device_id: str, times: np.ndarray, values: np.ndarray
) -> Trace:
    keep = (times >= trace.start) & (times < trace.end)
    times, values = times[keep], values[keep]
    idx = np.full(len(times), trace.registry.index_of(device_id), dtype=np.int32)
    return trace.with_extra_events(times, idx, values)


# --------------------------------------------------------------------- #
# Fault renderings
# --------------------------------------------------------------------- #


def inject_fail_stop(trace: Trace, device_id: str, onset: float) -> Trace:
    """The device stops producing data at *onset*."""
    return _drop_after(trace, device_id, onset)


def inject_stuck_at(
    trace: Trace,
    device_id: str,
    onset: float,
    rng: np.random.Generator,
    report_period: float = 30.0,
) -> Trace:
    """The device keeps reporting one frozen value from *onset* on.

    Numeric devices freeze at their last pre-onset reading (the classic
    stuck-at footprint); binary devices stick *active*.  Crucially the
    frozen value is typically an entirely plausible one, which is why the
    paper finds stuck-at faults slip past the correlation check and need
    the transition check (Fig. 5.4).
    """
    device = trace.registry[device_id]
    if device.is_binary:
        # A stuck-active binary device keeps firing around the clock.
        out = _drop_after(trace, device_id, onset)
        times = np.arange(onset, trace.end, report_period)
        return _add_events(out, device_id, times, np.ones(len(times)))
    # A stuck numeric sensor reports on its usual schedule — the reporting
    # *pattern* is driven by the (healthy) transducer electronics — but the
    # value is frozen at a constant from its normal operating range (Ni et
    # al.: "a series of output values unaffected by the input").  Because
    # the frozen value is plausible, the correlation structure often
    # survives and the transition check has to catch it (Fig. 5.4).
    _, observed = trace.events_for(device_id)
    if len(observed):
        stuck_value = float(observed[int(rng.integers(len(observed)))])
    else:
        stuck_value = _scale_of(trace, device_id).low
    mask = trace.device_mask(device_id) & (trace.timestamps >= onset)
    values = trace.values.copy()
    values[mask] = stuck_value
    return trace.replace_arrays(trace.timestamps, trace.device_indices, values)


def inject_outlier(
    trace: Trace,
    device_id: str,
    onset: float,
    rng: np.random.Generator,
    occurrences: Optional[int] = None,
) -> Trace:
    """Isolated anomalous readings after *onset*; normal data continues.

    Each occurrence is a short burst rather than a lone sample: a glitching
    reed switch clicks a few times in a row, a glitching gauge repeats the
    wild reading — and a single reading in one minute-long window would
    leave the trend/skew bits of Eqs. 3.2-3.3 undefined anyway.
    """
    device = trace.registry[device_id]
    n = int(occurrences) if occurrences else int(rng.integers(2, 4))
    span = trace.end - onset
    anchors = onset + np.sort(rng.uniform(0.0, max(span, 1.0), size=n))
    times_parts = []
    for anchor in anchors:
        burst = anchor + 20.0 * np.arange(int(rng.integers(3, 7)))
        times_parts.append(burst)
    times = np.concatenate(times_parts)
    if device.is_binary:
        values = np.ones(len(times))
    else:
        scale = _scale_of(trace, device_id)
        values = scale.high + scale.span * rng.uniform(2.0, 4.0, size=len(times))
    return _add_events(trace, device_id, times, values)


def inject_high_noise(
    trace: Trace,
    device_id: str,
    onset: float,
    rng: np.random.Generator,
    report_period: float = 30.0,
) -> Trace:
    """Noise/variance far beyond the expected degree from *onset* on.

    Existing readings are perturbed and the device additionally chatters at
    ``report_period`` with high-variance values (binary: random flicker).
    """
    device = trace.registry[device_id]
    if device.is_binary:
        slots = np.arange(onset, trace.end, report_period)
        fire = rng.random(len(slots)) < 0.5
        return _add_events(
            trace, device_id, slots[fire], np.ones(int(fire.sum()))
        )
    scale = _scale_of(trace, device_id)
    sigma = 0.8 * scale.span
    mask = trace.device_mask(device_id) & (trace.timestamps >= onset)
    values = trace.values.copy()
    values[mask] += rng.normal(0.0, sigma, size=int(mask.sum()))
    noisy = trace.replace_arrays(trace.timestamps, trace.device_indices, values)
    chatter_t = np.arange(onset, trace.end, report_period)
    chatter_v = scale.low + scale.span / 2.0 + rng.normal(
        0.0, sigma, size=len(chatter_t)
    )
    return _add_events(noisy, device_id, chatter_t, chatter_v)


def inject_spike(
    trace: Trace,
    device_id: str,
    onset: float,
    rng: np.random.Generator,
    burst_seconds: float = 240.0,
    sample_period: float = 10.0,
) -> Trace:
    """A short burst of readings far above the expected value."""
    device = trace.registry[device_id]
    end = min(onset + burst_seconds, trace.end)
    times = np.arange(onset, end, sample_period)
    if len(times) == 0:
        times = np.array([onset])
    if device.is_binary:
        values = np.ones(len(times))
    else:
        scale = _scale_of(trace, device_id)
        # Triangular spike shape: climbs fast, falls back.
        frac = np.linspace(0.0, 1.0, len(times))
        shape = 1.0 - np.abs(2.0 * frac - 1.0)
        values = scale.high + scale.span * (1.0 + 2.0 * shape)
    return _add_events(trace, device_id, times, values)


def apply_fault(
    trace: Trace,
    fault: InjectedFault,
    rng: np.random.Generator,
) -> Trace:
    """Dispatch on the fault type; returns the perturbed trace."""
    if fault.device_id not in trace.registry:
        raise KeyError(f"unknown device {fault.device_id!r}")
    if not trace.start <= fault.onset < trace.end:
        raise ValueError("fault onset must fall inside the trace interval")
    if fault.fault_type is FaultType.FAIL_STOP:
        return inject_fail_stop(trace, fault.device_id, fault.onset)
    if fault.fault_type is FaultType.STUCK_AT:
        return inject_stuck_at(trace, fault.device_id, fault.onset, rng)
    if fault.fault_type is FaultType.OUTLIER:
        return inject_outlier(trace, fault.device_id, fault.onset, rng)
    if fault.fault_type is FaultType.HIGH_NOISE:
        return inject_high_noise(trace, fault.device_id, fault.onset, rng)
    if fault.fault_type is FaultType.SPIKE:
        return inject_spike(trace, fault.device_id, fault.onset, rng)
    raise ValueError(f"unhandled fault type {fault.fault_type}")
