"""Network fault injection and the service chaos harness.

Where :mod:`repro.faults.pipe` perturbs the *event* stream (reorder,
duplicate, corrupt values) and :mod:`repro.faults.crash` kills the
*process*, this module attacks the layer the ingest service adds: the
**byte stream between client and server**.  :class:`NetFaultInjector`
plugs into :class:`~repro.service.ServiceClient`'s send path and injects
the transport failures a real deployment sees:

* **torn writes / disconnect mid-frame** — a frame's prefix is written,
  then the connection dies; the server must discard the partial frame;
* **clean disconnects** between frames;
* **garbage bytes** — line noise that must kill the connection at the
  CRC/length check, never the server;
* **slowloris** — a frame dribbled out in tiny chunks (the server's
  frame-completion deadline bounds how long it will humour this);
* **duplicate sends** — the at-least-once failure mode a retrying client
  actually produces: after a reconnect it resumes *below* the server's
  applied count and re-sends a suffix the server has already journaled
  (the server skips exactly those frames).

The harness half extends the crash-chaos contract across the network:
:func:`run_service_trial` streams seeded chaos deployments through a real
loopback :class:`~repro.service.IngestServer`, kills it at a randomized
applied-count point (optionally checkpointing first and tearing the
journal tail, the mid-append death), restarts it from recovery on the
same port, lets the retrying clients heal, and judges the outcome with
the crash harness's own instruments: per-home canonical alert parity
against the uninterrupted in-process oracle, monotone alert counters,
at-least-once outbox delivery, and — new here — **exact ingest
accounting** (every event journaled exactly once: the recovered
``ingest_seqs`` must equal each home's stream length, with zero sheds).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..durability import AlertOutbox, DurableFleetGateway, FileSink, FlakySink
from ..service import IngestServer, ServiceClient, ServiceConfig, ServiceThread
from ..streaming import Alert
from ..streaming.guard import OVERLOAD
from ..streaming.runtime import ALERTS_TOTAL
from .crash import (
    LATENESS_SECONDS,
    POLICY,
    ChaosDeployment,
    ChaosReport,
    CrashTrialResult,
    _counter_total,
    _expected_ids,
    _fresh_fleet,
    build_chaos_fleet,
    canonical_alerts,
    fleet_oracle,
    tear_final_record,
)

__all__ = [
    "NetFaultSpec",
    "NetFaultInjector",
    "SimulatedDisconnect",
    "run_service_trial",
    "run_chaos_service",
]

_log = telemetry.get_logger("repro.faults.net")


class SimulatedDisconnect(ConnectionError):
    """The injector cut the connection (possibly mid-frame)."""


@dataclass
class NetFaultSpec:
    """Per-frame fault probabilities for one injector.

    Rates apply independently per outgoing *event* frame; the handshake
    frames stay clean so every connection at least reaches the resume
    negotiation (handshake corruption is covered by the decoder fuzz
    tests, which need no live server).
    """

    torn_write_rate: float = 0.01  # partial frame, then disconnect
    disconnect_rate: float = 0.005  # clean cut between frames
    garbage_rate: float = 0.002  # line noise injected before the frame
    slowloris_rate: float = 0.005  # frame dribbled in tiny chunks
    duplicate_rate: float = 0.3  # chance a reconnect rewinds its resume
    duplicate_depth: int = 6  # max frames re-sent below ``applied``
    slow_chunk_bytes: int = 5
    slow_delay_s: float = 0.001


@dataclass
class _FaultCounts:
    torn_writes: int = 0
    disconnects: int = 0
    garbage: int = 0
    slowloris: int = 0
    duplicates: int = 0  # frames deliberately re-sent below applied


class NetFaultInjector:
    """Seeded byte-level fault source for one client's send path."""

    def __init__(self, rng, spec: Optional[NetFaultSpec] = None) -> None:
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng
        self.spec = spec if spec is not None else NetFaultSpec()
        self.counts = _FaultCounts()

    # -- ServiceClient hooks ------------------------------------------- #

    def on_connect(self) -> None:
        """A new connection opened; nothing to reset (rates are per-frame)."""

    def resume_from(self, applied: int) -> int:
        """Possibly rewind the resume point: the duplicate-sends fault."""
        spec = self.spec
        if applied > 0 and self.rng.random() < spec.duplicate_rate:
            rewind = min(applied, 1 + int(self.rng.integers(spec.duplicate_depth)))
            self.counts.duplicates += rewind
            return applied - rewind
        return applied

    def send(self, sock, data: bytes, kind: str) -> None:
        """Deliver one frame's bytes, possibly perturbed."""
        spec = self.spec
        if kind != "event":
            sock.sendall(data)
            return
        roll = float(self.rng.random())
        edge = spec.torn_write_rate
        if roll < edge and len(data) > 1:
            cut = 1 + int(self.rng.integers(len(data) - 1))
            sock.sendall(data[:cut])
            self.counts.torn_writes += 1
            raise SimulatedDisconnect(f"torn write after {cut} bytes")
        edge += spec.disconnect_rate
        if roll < edge:
            self.counts.disconnects += 1
            raise SimulatedDisconnect("disconnect between frames")
        edge += spec.garbage_rate
        if roll < edge:
            noise = self.rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()
            self.counts.garbage += 1
            sock.sendall(noise)
            # The server will kill this connection at the CRC check; keep
            # writing until it does — the client recovers via its retry loop.
            sock.sendall(data)
            return
        edge += spec.slowloris_rate
        if roll < edge:
            self.counts.slowloris += 1
            step = max(1, spec.slow_chunk_bytes)
            for offset in range(0, len(data), step):
                sock.sendall(data[offset : offset + step])
                time.sleep(spec.slow_delay_s)
            return
        sock.sendall(data)


# --------------------------------------------------------------------- #
# The service chaos harness
# --------------------------------------------------------------------- #


@dataclass
class _ClientOutcome:
    home_id: str
    error: Optional[BaseException] = None
    applied: int = 0
    connects: int = 0
    retries: int = 0
    resent: int = 0


def _service_gateway(
    deployments: Sequence[ChaosDeployment],
    detectors: Dict[str, object],
    num_shards: int,
    journal_root: str,
    outbox: AlertOutbox,
) -> DurableFleetGateway:
    return DurableFleetGateway(
        _fresh_fleet(deployments, detectors, num_shards),
        journal_root,
        outbox=outbox,
    )


def run_service_trial(
    deployments: Sequence[ChaosDeployment],
    expected: Dict[str, List[Alert]],
    workdir: str,
    *,
    kill_at: int,
    checkpoint_at: Optional[int] = None,
    torn: bool = False,
    faults: bool = True,
    shards_before: int = 2,
    shards_after: int = 2,
    flaky_failures: int = 1,
    max_attempts: int = 4,
    rng=None,
    queue_capacity: int = 8192,
) -> CrashTrialResult:
    """One network kill-and-recover cycle against a live loopback server.

    Phase 1 streams every home concurrently through retrying clients
    (barrier-synced, streams left open).  When the fleet-wide applied
    count crosses *kill_at* the server dies abruptly — after an optional
    mid-run checkpoint at *checkpoint_at*, and with an optional torn
    journal tail (*torn*, the mid-append death; the client re-sends the
    torn event because the recovered ``applied`` count excludes it).  A
    recovered server takes over the same port; once every client reports
    its full stream applied, phase 2 closes each home's stream and the
    verdict compares prefix + recovered alerts per home against the
    uninterrupted oracle, plus outbox delivery and exact ingest
    accounting.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    os.makedirs(workdir, exist_ok=True)
    journal_root = os.path.join(workdir, "journals")
    ckpt_dir = os.path.join(workdir, "fleet-ckpt")
    outbox_dir = os.path.join(workdir, "outbox")
    delivered_path = os.path.join(workdir, "delivered.jsonl")
    total_events = sum(len(dep.events) for dep in deployments)
    kill_at = max(1, min(int(kill_at), total_events))
    trial_seed = int(rng.integers(1 << 31))

    def make_outbox() -> AlertOutbox:
        sink = FlakySink(FileSink(delivered_path), failures=flaky_failures)
        return AlertOutbox(
            outbox_dir,
            sink,
            max_attempts=max_attempts,
            sleep=lambda _s: None,
            jitter_seed=trial_seed,
            metrics=telemetry.NULL_REGISTRY,
        )

    # Fit both generations up front so the restart gap stays short.
    detectors_before = {dep.home_id: dep.fit_detector() for dep in deployments}
    detectors_after = {dep.home_id: dep.fit_detector() for dep in deployments}

    config = ServiceConfig(
        queue_capacity=queue_capacity,
        read_timeout_s=5.0,
        frame_timeout_s=5.0,
        ack_every=16,
    )
    durable = _service_gateway(
        deployments, detectors_before, shards_before, journal_root, make_outbox()
    )
    handle = ServiceThread(IngestServer(durable, config)).start()
    port = handle.port

    outcomes = [_ClientOutcome(dep.home_id) for dep in deployments]

    # The checkpoint must land between two known applied counts or the
    # consumer can race past it (even to the end of every stream) before
    # the checkpoint callback runs on the loop, truncating away the very
    # tail a ``torn`` trial wants to damage.  So when a checkpoint is
    # requested the clients send in two waves: wave 1 is each home's
    # proportional prefix of *checkpoint_at* events, confirmed applied
    # before the checkpoint is taken with nothing in flight; wave 2
    # resumes by sequence and the kill lands mid-wave, guaranteeing
    # post-checkpoint journal bytes exist to tear.
    want_checkpoint = checkpoint_at is not None and 0 < checkpoint_at < kill_at
    wave1_counts = {
        dep.home_id: (
            (len(dep.events) * int(checkpoint_at)) // total_events
            if want_checkpoint
            else 0
        )
        for dep in deployments
    }
    wave1_done = [threading.Event() for _ in deployments]
    wave2_gate = threading.Event()

    def client_main(index: int, dep: ChaosDeployment) -> None:
        outcome = outcomes[index]
        injector = None
        if faults:
            injector = NetFaultInjector(
                np.random.default_rng(trial_seed * 7919 + index)
            )
        client = ServiceClient(
            "127.0.0.1",
            port,
            max_attempts=400,
            base_delay=0.002,
            max_delay=0.05,
            jitter_seed=trial_seed + index,
            io_timeout=5.0,
            fault_injector=injector,
        )
        try:
            if want_checkpoint:
                head = dep.events[: wave1_counts[dep.home_id]]
                if head:
                    client.send_stream(dep.home_id, head, finish=False)
                wave1_done[index].set()
                wave2_gate.wait()
            report = client.send_stream(dep.home_id, dep.events, finish=False)
            outcome.applied = report.applied
            outcome.connects = report.connects
            outcome.retries = report.retries
            outcome.resent = report.resent
        except BaseException as exc:  # judged by the trial, not raised here
            outcome.error = exc
            wave1_done[index].set()

    threads = [
        threading.Thread(target=client_main, args=(i, dep), daemon=True)
        for i, dep in enumerate(deployments)
    ]
    for thread in threads:
        thread.start()

    def fleet_applied() -> int:
        return handle.call(lambda: sum(durable.ingest_seqs.values()))

    prefix: Dict[str, List[Alert]] = {dep.home_id: [] for dep in deployments}
    checkpointed = False
    if want_checkpoint:
        for flag in wave1_done:
            flag.wait()

        def do_checkpoint() -> Dict[str, List[Alert]]:
            durable.save_checkpoint(ckpt_dir)
            return {
                dep.home_id: list(durable.alerts_of(dep.home_id))
                for dep in deployments
            }

        prefix = handle.call(do_checkpoint)
        checkpointed = True
        wave2_gate.set()
    while fleet_applied() < kill_at:
        time.sleep(0.002)
    handle.kill()
    applied_at_kill = dict(durable.ingest_seqs)

    torn_effective = False
    if torn:
        candidates = [
            dep for dep in deployments if applied_at_kill.get(dep.home_id, 0) > 0
        ]
        # A home whose client stalled after the checkpoint leaves an empty
        # newest segment (nothing to tear), so walk the candidates in a
        # seeded order and tear the first journal that actually has a
        # final record to damage.
        order = rng.permutation(len(candidates)) if candidates else []
        for index in order:
            victim = candidates[int(index)]
            last = victim.events[applied_at_kill[victim.home_id] - 1]
            cut = tear_final_record(
                os.path.join(journal_root, victim.home_id),
                last,
                np.random.default_rng(trial_seed ^ 0x5EED),
            )
            if cut > 0:
                torn_effective = True
                break

    # --- the next life: recover onto the same port --------------------- #
    outbox2 = make_outbox()
    recovered, replayed = DurableFleetGateway.recover(
        detectors_after,
        journal_root,
        checkpoint_dir=ckpt_dir if checkpointed else None,
        gateway=(
            None
            if checkpointed
            else _fresh_fleet(deployments, detectors_after, shards_after)
        ),
        num_shards=shards_after,
        outbox=outbox2,
        lateness_seconds=LATENESS_SECONDS,
        policy=POLICY,
    )
    config2 = ServiceConfig(
        port=port,
        queue_capacity=queue_capacity,
        read_timeout_s=5.0,
        frame_timeout_s=5.0,
        ack_every=16,
    )
    handle2 = ServiceThread(IngestServer(recovered, config2)).start()

    for thread in threads:
        thread.join(timeout=120.0)
    client_errors = [o.error for o in outcomes if o.error is not None]

    # Phase 2: close every stream (exactly once, on the surviving server).
    finish_errors: List[BaseException] = []
    if not client_errors:
        for dep in deployments:
            closer = ServiceClient(
                "127.0.0.1",
                port,
                max_attempts=50,
                base_delay=0.002,
                max_delay=0.05,
                jitter_seed=trial_seed ^ 0xF1,
                io_timeout=10.0,
            )
            try:
                closer.send_stream(
                    dep.home_id, dep.events, end=dep.end, finish=True
                )
            except BaseException as exc:
                finish_errors.append(exc)
    handle2.drain()

    # --- judgement ------------------------------------------------------ #
    healthy = not client_errors and not finish_errors
    parity = healthy and all(
        canonical_alerts(prefix[home_id] + recovered.alerts_of(home_id))
        == canonical_alerts(expected[home_id])
        for home_id in expected
    )
    counters_monotone = healthy and all(
        _counter_total(recovered.gateway.runtime_of(home_id).metrics, ALERTS_TOTAL)
        == float(len(expected[home_id]))
        for home_id in expected
    )
    expected_ids = set()
    for home_id, alerts in expected.items():
        expected_ids.update(_expected_ids(home_id, alerts))
    acked = set(outbox2.delivered_ids())
    dead = outbox2.dead_letters()
    dead_ids = {entry["record"]["id"] for entry in dead}
    # Exact ingest accounting: every event journaled exactly once, and no
    # overload sheds at any point (the queue was never allowed to fill, so
    # every shed here would be a resume-arithmetic bug, not backpressure).
    seqs_exact = healthy and all(
        recovered.ingest_seqs.get(dep.home_id, 0) == len(dep.events)
        for dep in deployments
    )
    overload_drops = sum(
        gw.runtime_of(dep.home_id).drops.count(OVERLOAD)
        for gw in (durable.gateway, recovered.gateway)
        for dep in deployments
    )
    delivery_ok = (
        parity
        and seqs_exact
        and overload_drops == 0
        and expected_ids == (acked | dead_ids)
    )
    if flaky_failures < max_attempts:
        delivery_ok = delivery_ok and not dead_ids
    result = CrashTrialResult(
        mode="service",
        deploy_seed=-1,
        kill_index=kill_at,
        total_events=total_events,
        checkpointed=checkpointed,
        torn=torn_effective,
        parity=parity,
        counters_monotone=counters_monotone,
        delivery_ok=delivery_ok,
        replayed_alerts=len(replayed),
        delivered=len(acked),
        dead_letters=len(dead),
        shards_before=shards_before,
        shards_after=shards_after,
    )
    if client_errors or finish_errors:
        _log.error(
            "service_trial_client_failure",
            errors=[repr(e) for e in (client_errors + finish_errors)],
        )
    return result


def run_chaos_service(
    base_dir: str,
    *,
    fleets: int = 2,
    kills_per_fleet: int = 10,
    num_homes: int = 2,
    seed: int = 0,
    shard_choices: Sequence[int] = (1, 2, 4),
    fault_rate: float = 0.7,
) -> ChaosReport:
    """The network chaos batch: seeded fleets × randomized kill points.

    Each trial kills the live server at a random fleet-wide applied count
    (mid-frame as far as the clients are concerned — they are writing
    while it dies), optionally after a checkpoint and with a torn journal
    tail, and with byte-level transport faults active on most trials.
    """
    report = ChaosReport()
    rng = np.random.default_rng(seed + 13)
    for f in range(fleets):
        fleet_seed = seed * 1000 + f
        deployments, merged = build_chaos_fleet(fleet_seed, num_homes=num_homes)
        expected, _ = fleet_oracle(deployments, merged)
        total = sum(len(dep.events) for dep in deployments)
        for k in range(kills_per_fleet):
            kill_at = int(rng.integers(2, total))
            checkpoint_at: Optional[int] = None
            if rng.random() < 0.5 and kill_at > 2:
                checkpoint_at = int(rng.integers(1, kill_at))
            torn = bool(rng.random() < 0.34)
            faults = bool(rng.random() < fault_rate)
            shards_before = int(rng.choice(shard_choices))
            shards_after = int(rng.choice(shard_choices))
            workdir = os.path.join(base_dir, f"service-{fleet_seed}-{k}")
            result = run_service_trial(
                deployments,
                expected,
                workdir,
                kill_at=kill_at,
                checkpoint_at=checkpoint_at,
                torn=torn,
                faults=faults,
                shards_before=shards_before,
                shards_after=shards_after,
                rng=rng,
            )
            result.deploy_seed = fleet_seed
            report.trials.append(result)
            _log.info(
                "chaos_trial",
                mode="service",
                fleet_seed=fleet_seed,
                kill_at=kill_at,
                shards=f"{shards_before}->{shards_after}",
                faults=faults,
                torn=result.torn,
                checkpointed=result.checkpointed,
                ok=result.ok,
            )
    return report
