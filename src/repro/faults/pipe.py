"""Pipe-fault injectors: perturbations of the *delivery channel*.

The paper's fault models (:mod:`repro.faults.models`) perturb what a
device *measures*; these injectors perturb how its telemetry *travels* —
the gateway-side failure modes a hardened runtime must survive: dropped
frames, delayed delivery, re-delivered duplicates, out-of-order arrival,
and payload corruption (NaN/inf values).

They operate on **arrival sequences** — plain lists of
:class:`~repro.model.events.Event` in the order the gateway receives them —
not on :class:`~repro.model.trace.Trace`, which sorts by timestamp and
would erase exactly the disorder being modelled.  Delay/reorder faults
keep every event's *timestamp* (the device's clock is fine; the pipe is
late) and move its *position* in the sequence instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..model import Event


class PipeFaultType(enum.Enum):
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    REORDER = "reorder"
    CORRUPT_VALUE = "corrupt_value"


ALL_PIPE_FAULT_TYPES = tuple(PipeFaultType)

#: Corrupt payloads cycle through the classic non-finite values.
_CORRUPT_VALUES = (float("nan"), float("inf"), float("-inf"))


@dataclass(frozen=True)
class PipeFaultSpec:
    """One channel perturbation: which fault, how often, how severe."""

    fault_type: PipeFaultType
    #: Fraction of events affected (DROP/DELAY/DUPLICATE/CORRUPT_VALUE); the
    #: REORDER fault jitters every event's arrival instead.
    rate: float = 0.05
    #: Maximum extra arrival latency in seconds (DELAY/DUPLICATE/REORDER).
    max_delay_seconds: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be non-negative")


def _arrival_sort(events: Sequence[Event], arrival: np.ndarray) -> List[Event]:
    """Events re-ordered by their arrival keys (stable)."""
    order = np.argsort(arrival, kind="stable")
    return [events[int(i)] for i in order]


def drop_events(
    events: Sequence[Event], rng: np.random.Generator, rate: float
) -> List[Event]:
    """The pipe silently loses a *rate* fraction of frames."""
    keep = rng.random(len(events)) >= rate
    return [e for e, k in zip(events, keep) if k]


def delay_events(
    events: Sequence[Event],
    rng: np.random.Generator,
    rate: float,
    max_delay_seconds: float,
) -> List[Event]:
    """A *rate* fraction of frames arrives up to *max_delay_seconds* late.

    Timestamps are untouched; only the arrival position moves, so a
    reorder buffer with a sufficient lateness budget can undo this fault
    completely.
    """
    n = len(events)
    arrival = np.array([e.timestamp for e in events], dtype=np.float64)
    late = rng.random(n) < rate
    arrival[late] += rng.uniform(0.0, max_delay_seconds, size=int(late.sum()))
    return _arrival_sort(events, arrival)


def duplicate_events(
    events: Sequence[Event],
    rng: np.random.Generator,
    rate: float,
    max_delay_seconds: float,
) -> List[Event]:
    """A *rate* fraction of frames is re-delivered, the copy arriving up to
    *max_delay_seconds* after the original."""
    out: List[Event] = []
    arrival: List[float] = []
    for event in events:
        out.append(event)
        arrival.append(event.timestamp)
        if rng.random() < rate:
            out.append(event)
            arrival.append(
                event.timestamp + float(rng.uniform(0.0, max_delay_seconds))
            )
    return _arrival_sort(out, np.array(arrival, dtype=np.float64))


def reorder_events(
    events: Sequence[Event],
    rng: np.random.Generator,
    max_delay_seconds: float,
) -> List[Event]:
    """Every frame's arrival is jittered by up to *max_delay_seconds* —
    local shuffling, the typical footprint of a congested uplink."""
    arrival = np.array([e.timestamp for e in events], dtype=np.float64)
    arrival += rng.uniform(0.0, max_delay_seconds, size=len(events))
    return _arrival_sort(events, arrival)


def corrupt_values(
    events: Sequence[Event], rng: np.random.Generator, rate: float
) -> List[Event]:
    """A *rate* fraction of payloads arrives as NaN/±inf (bit rot, firmware
    bugs, truncated frames decoded as garbage)."""
    out: List[Event] = []
    for event in events:
        if rng.random() < rate:
            value = _CORRUPT_VALUES[int(rng.integers(len(_CORRUPT_VALUES)))]
            out.append(Event(event.timestamp, event.device_id, value))
        else:
            out.append(event)
    return out


def apply_pipe_fault(
    events: Sequence[Event],
    spec: PipeFaultSpec,
    rng: np.random.Generator,
) -> List[Event]:
    """Dispatch on the pipe-fault type."""
    if spec.fault_type is PipeFaultType.DROP:
        return drop_events(events, rng, spec.rate)
    if spec.fault_type is PipeFaultType.DELAY:
        return delay_events(events, rng, spec.rate, spec.max_delay_seconds)
    if spec.fault_type is PipeFaultType.DUPLICATE:
        return duplicate_events(events, rng, spec.rate, spec.max_delay_seconds)
    if spec.fault_type is PipeFaultType.REORDER:
        return reorder_events(events, rng, spec.max_delay_seconds)
    if spec.fault_type is PipeFaultType.CORRUPT_VALUE:
        return corrupt_values(events, rng, spec.rate)
    raise ValueError(f"unhandled pipe fault type {spec.fault_type}")


class PipeFaultInjector:
    """Composes several channel perturbations over one arrival sequence."""

    def __init__(
        self, rng: np.random.Generator, specs: Sequence[PipeFaultSpec]
    ) -> None:
        if not specs:
            raise ValueError("need at least one pipe-fault spec")
        self.rng = rng
        self.specs = tuple(specs)

    def apply(self, events: Sequence[Event]) -> List[Event]:
        out = list(events)
        for spec in self.specs:
            out = apply_pipe_fault(out, spec, self.rng)
        return out
