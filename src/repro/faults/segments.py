"""Evaluation segmenting (Ch. V).

The thesis protocol: the first 300 hours of each dataset are the
precomputation data; the remaining hours are cut into six-hour segments;
every segment is evaluated twice — once as recorded (the *faultless* copy,
measuring false positives) and once as a duplicate with one injected fault
(the *faulty* copy, measuring detection/identification).  One hundred
pairs per dataset are drawn; when the tail of the dataset holds fewer than
a hundred disjoint six-hour windows, the draw samples segment starts with
replacement (the fault placement still differs pair to pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..model import Device, Trace
from .injector import FaultInjector
from .models import FaultType, InjectedFault


@dataclass(frozen=True)
class SegmentPair:
    """One faultless/faulty evaluation pair."""

    faultless: Trace
    faulty: Trace
    fault: InjectedFault

    @property
    def onset(self) -> float:
        return self.fault.onset


def split_precompute(
    trace: Trace, precompute_hours: float
) -> Tuple[Trace, Trace]:
    """Split a dataset trace into (training, evaluation) parts."""
    cut = trace.start + precompute_hours * 3600.0
    if not trace.start < cut < trace.end:
        raise ValueError("precompute period must fall inside the trace")
    return trace.slice(trace.start, cut), trace.slice(cut, trace.end)


def segment_starts(
    evaluation: Trace,
    segment_hours: float,
    count: int,
    rng: np.random.Generator,
) -> List[float]:
    """Starts of *count* segments within the evaluation span.

    Uses the disjoint six-hour grid first (shuffled); if more segments are
    requested than the grid holds, the remainder is drawn uniformly at
    random (overlapping segments, distinct fault placements).
    """
    seg_len = segment_hours * 3600.0
    span = evaluation.end - evaluation.start
    if span < seg_len:
        raise ValueError("evaluation span shorter than one segment")
    grid = np.arange(evaluation.start, evaluation.end - seg_len + 1e-9, seg_len)
    rng.shuffle(grid)
    starts = list(grid[:count])
    while len(starts) < count:
        starts.append(
            float(evaluation.start + rng.uniform(0.0, span - seg_len))
        )
    return starts[:count]


def make_segment_pairs(
    trace: Trace,
    rng: np.random.Generator,
    precompute_hours: float = 300.0,
    segment_hours: float = 6.0,
    count: int = 100,
    fault_types: Optional[Sequence[FaultType]] = None,
    devices: Optional[Sequence[Device]] = None,
    injector: Optional[FaultInjector] = None,
) -> Tuple[Trace, List[SegmentPair]]:
    """The full Ch. V protocol: returns ``(training, pairs)``.

    ``fault_types`` restricts the injected classes (e.g. actuator
    experiments); ``devices`` restricts the target pool (sensors by
    default).
    """
    training, evaluation = split_precompute(trace, precompute_hours)
    if injector is None:
        injector = (
            FaultInjector(rng, tuple(fault_types)) if fault_types else FaultInjector(rng)
        )
    pairs: List[SegmentPair] = []
    seg_len = segment_hours * 3600.0
    span = evaluation.end - evaluation.start
    starts = segment_starts(evaluation, segment_hours, count, rng)
    attempts = 0
    while len(pairs) < count and attempts < 20 * count:
        attempts += 1
        if starts:
            start = starts.pop()
        else:
            start = float(evaluation.start + rng.uniform(0.0, span - seg_len))
        segment = trace.slice(start, start + seg_len)
        fault_type = None
        if fault_types is not None:
            fault_type = fault_types[int(rng.integers(len(fault_types)))]
        try:
            faulty, fault = injector.inject(
                segment, devices=devices, fault_type=fault_type
            )
        except ValueError:
            # All-quiet segment (away/asleep night): no observable fault is
            # possible there — redraw, as the thesis's random placement on
            # real recordings implicitly does.
            continue
        pairs.append(SegmentPair(segment, faulty, fault))
    if len(pairs) < count:
        raise RuntimeError(
            f"could only build {len(pairs)}/{count} segment pairs; "
            "evaluation span may be too quiet"
        )
    return training, pairs
