"""Sharded multi-home fleet gateway (``repro fleet``).

One process hosting many homes: a hash router
(:func:`~repro.fleet.sharding.shard_of`) in front of shared-nothing
per-home :class:`~repro.streaming.HardenedOnlineDice` instances, with
fleet-wide checkpoint/restore and merged telemetry.  Sharding is an
invisible scaling layer — per-home alert sequences are byte-identical to
standalone runs for any shard count (pinned by ``tests/fleet``).
"""

from .checkpoint import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    load_fleet_manifest,
    restore_fleet,
    save_fleet_checkpoint,
)
from .gateway import (
    FLEET_DISPATCHES_TOTAL,
    FLEET_EVENTS_TOTAL,
    FLEET_HOMES_GAUGE,
    FLEET_UNROUTED_TOTAL,
    FleetAlert,
    FleetGateway,
    FleetShard,
)
from .loadgen import (
    FleetHome,
    build_fleet_homes,
    fit_fleet_detectors,
    home_seed,
    merged_ticks,
    replay_fleet,
)
from .sharding import shard_assignments, shard_of

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "load_fleet_manifest",
    "restore_fleet",
    "save_fleet_checkpoint",
    "FLEET_DISPATCHES_TOTAL",
    "FLEET_EVENTS_TOTAL",
    "FLEET_HOMES_GAUGE",
    "FLEET_UNROUTED_TOTAL",
    "FleetAlert",
    "FleetGateway",
    "FleetShard",
    "FleetHome",
    "build_fleet_homes",
    "fit_fleet_detectors",
    "home_seed",
    "merged_ticks",
    "replay_fleet",
    "shard_assignments",
    "shard_of",
]
