"""Fleet-wide checkpoint/restore: one manifest plus per-home snapshots.

A fleet checkpoint is a *directory*::

    <dir>/manifest.json          the fleet layout (schema dice-fleet-manifest/1)
    <dir>/<home-file>.json       one schema-v2 gateway snapshot per home

Each per-home file is exactly the versioned snapshot
:func:`repro.streaming.checkpoint.checkpoint_state` produces — the fleet
layer adds no per-home state of its own, so a home's snapshot can equally
be restored standalone with :func:`~repro.streaming.restore_runtime`, and
a standalone gateway's snapshot can be adopted into a fleet.

The manifest records the shard count the checkpoint was taken with, but a
restore may override it: the home → shard map is a pure hash of the home
id, so resharding moves homes between shards without touching any
detection state.

As with the single-gateway checkpoint, fitted detector models are *not*
serialized (large, immutable; the fleet's homes are refit or loaded from
their own artefacts) — the caller hands ``restore_fleet`` one fitted
detector per home, and every snapshot's ``model`` fingerprint is verified
against it.

Since manifest schema ``/2``, each home entry also records the
**content hash** of the base trained context the snapshot was taken
against (:func:`~repro.core.context_hash`, captured pre-refresh).  A
restore re-hashes every supplied detector and refuses any home whose
re-fit does not reproduce the recorded bytes — then re-interns the
detectors in the restored gateway's shared-context store, so dedup (and
copy-on-write refresh replay) survives a restart and any reshard.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from .. import telemetry
from ..core import (
    DetectorBackend,
    DiceDetector,
    SharedContextStore,
    as_backend,
)
from ..streaming import (
    CheckpointError,
    load_checkpoint,
    restore_runtime,
    save_checkpoint,
)
from ..streaming.checkpoint import write_json_atomic
from .gateway import FleetGateway

MANIFEST_SCHEMA = "dice-fleet-manifest/3"
#: Restorable manifest schemas; /1 lacks the context hashes, /2 the
#: per-home backend names (absent means ``dice``).
COMPATIBLE_SCHEMAS = frozenset(
    {"dice-fleet-manifest/1", "dice-fleet-manifest/2", MANIFEST_SCHEMA}
)
MANIFEST_NAME = "manifest.json"

_log = telemetry.get_logger("repro.fleet.checkpoint")

PathLike = Union[str, os.PathLike]


def _home_filename(index: int) -> str:
    return f"home-{index:05d}.json"


def save_fleet_checkpoint(gateway: FleetGateway, directory: PathLike) -> None:
    """Write the manifest and every home's snapshot under *directory*.

    Per-home snapshots are written first (each atomically, via the
    streaming layer's write-then-rename), the manifest last — a crash
    mid-save leaves no manifest pointing at missing homes.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    homes: Dict[str, dict] = {}
    for index, home_id in enumerate(gateway.home_ids):
        runtime = gateway.runtime_of(home_id)
        filename = _home_filename(index)
        save_checkpoint(runtime, os.path.join(directory, filename))
        homes[home_id] = {
            "shard": gateway.shard_index_of(home_id),
            "file": filename,
            "backend": runtime.backend.name,
            "model": runtime.backend.fingerprint(),
            # The content hash of the *base* trained context (pre-refresh),
            # captured at runtime construction; restore validates the
            # re-fitted detector against it byte-for-byte.
            "context": getattr(runtime, "base_context_hash", None),
        }
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "version": 1,
        "num_shards": gateway.num_shards,
        "homes": homes,
    }
    # Fleet-level routing counters survive a restart just like the
    # per-home detection counters do (gauges are point-in-time and restart).
    if gateway.metrics.enabled:
        manifest["telemetry"] = gateway.metrics.counters_snapshot()
    write_json_atomic(manifest, os.path.join(directory, MANIFEST_NAME))
    _log.info(
        "fleet_checkpoint_saved",
        directory=directory,
        homes=len(homes),
        shards=gateway.num_shards,
    )


def load_fleet_manifest(directory: PathLike) -> dict:
    """Read and structurally validate a fleet manifest.

    Unreadable or non-JSON manifests raise :class:`CheckpointError` naming
    the path, matching the streaming layer's :func:`load_checkpoint`.
    """
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read fleet manifest {path}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(f"corrupt fleet manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("schema") not in COMPATIBLE_SCHEMAS:
        raise CheckpointError(f"{path} is not a fleet manifest")
    homes = manifest.get("homes")
    if not isinstance(homes, dict):
        raise CheckpointError("fleet manifest has no homes mapping")
    if not isinstance(manifest.get("num_shards"), int) or manifest["num_shards"] < 1:
        raise CheckpointError("fleet manifest num_shards must be a positive int")
    for home_id, entry in homes.items():
        if not isinstance(entry, dict) or not isinstance(entry.get("file"), str):
            raise CheckpointError(f"manifest entry for {home_id!r} is malformed")
        if os.path.basename(entry["file"]) != entry["file"]:
            raise CheckpointError(
                f"manifest entry for {home_id!r} escapes the checkpoint directory"
            )
    return manifest


def restore_fleet(
    detectors: Dict[str, Union[DiceDetector, DetectorBackend]],
    directory: PathLike,
    *,
    num_shards: Optional[int] = None,
    metrics: Optional["telemetry.MetricsRegistry"] = None,
    share_contexts: bool = True,
    batch_tick: bool = True,
    context_store: Optional[SharedContextStore] = None,
    **runtime_kwargs,
) -> FleetGateway:
    """Rebuild a :class:`FleetGateway` from a checkpoint directory.

    *detectors* maps every manifest home to its fitted detector (extra
    detectors are ignored; missing ones are an error).  *num_shards*
    defaults to the manifest's count; ``runtime_kwargs`` configure each
    restored :class:`~repro.streaming.HardenedOnlineDice` (lateness,
    supervisor policy, ...) exactly as on the standalone restore path.

    With *share_contexts* (the default, mirroring :class:`FleetGateway`),
    each validated detector is re-interned **before** its snapshot is
    replayed, so restored homes dedup exactly like freshly added ones and
    a carried refresh history forks its private copy on re-apply — even
    when *num_shards* moved the home to a different shard.
    """
    directory = os.fspath(directory)
    manifest = load_fleet_manifest(directory)
    missing = sorted(set(manifest["homes"]) - set(detectors))
    if missing:
        raise CheckpointError(
            f"no detector supplied for checkpointed homes: {', '.join(missing)}"
        )
    # Validate the whole manifest against the filesystem and the supplied
    # detectors *before* restoring anything: a missing snapshot file or a
    # fingerprint mismatch should name its home up front, not explode
    # halfway through a partially-built gateway.
    refit_hashes: Dict[str, str] = {}
    backends: Dict[str, DetectorBackend] = {}
    for home_id in sorted(manifest["homes"]):
        entry = manifest["homes"][home_id]
        snapshot_path = os.path.join(directory, entry["file"])
        if not os.path.exists(snapshot_path):
            raise CheckpointError(
                f"fleet manifest references a missing snapshot for home "
                f"{home_id!r}: {snapshot_path}"
            )
        backends[home_id] = backend = as_backend(detectors[home_id])
        recorded_backend = entry.get("backend", "dice")
        if recorded_backend != backend.name:
            raise CheckpointError(
                f"snapshot for home {home_id!r} was written by backend "
                f"{recorded_backend!r} but restore targets backend "
                f"{backend.name!r}"
            )
        expected = backend.fingerprint()
        recorded = entry.get("model")
        if recorded is not None and recorded != expected:
            raise CheckpointError(
                f"snapshot for home {home_id!r} was taken against a different "
                f"model: {recorded} != {expected}"
            )
        recorded_hash = entry.get("context")
        if recorded_hash is not None:
            refit_hashes[home_id] = refit = backend.context_hash()
            if refit != recorded_hash:
                raise CheckpointError(
                    f"shared context mismatch for home {home_id!r}: the "
                    f"checkpoint recorded base context {recorded_hash}, but "
                    f"the supplied detector re-fit to {refit}"
                )
    gateway = FleetGateway(
        num_shards=num_shards or manifest["num_shards"],
        metrics=metrics,
        share_contexts=share_contexts,
        batch_tick=batch_tick,
        context_store=context_store,
    )
    for home_id in sorted(manifest["homes"]):
        entry = manifest["homes"][home_id]
        try:
            state = load_checkpoint(os.path.join(directory, entry["file"]))
        except CheckpointError as exc:
            raise CheckpointError(f"home {home_id!r}: {exc}") from exc
        backend = backends[home_id]
        if gateway.share_contexts and backend.dice_detector is not None:
            # Intern before replaying the snapshot: refresh-history re-apply
            # must fork off the shared copy exactly as the original run did.
            gateway.context_store.intern(
                backend.dice_detector, key=refit_hashes.get(home_id)
            )
        runtime = restore_runtime(backend, state, **runtime_kwargs)
        gateway.add_runtime(home_id, runtime)
    fleet_counters = manifest.get("telemetry")
    if fleet_counters is not None and gateway.metrics.enabled:
        gateway.metrics.restore_counters(fleet_counters)
    _log.info(
        "fleet_resumed",
        directory=directory,
        homes=len(manifest["homes"]),
        shards=gateway.num_shards,
    )
    return gateway
