"""The sharded multi-home gateway: one process hosting a fleet of homes.

:class:`FleetGateway` is the router the ROADMAP's fleet-scale deployments
put in front of many per-home :class:`~repro.streaming.HardenedOnlineDice`
instances.  Homes are hashed onto ``N`` worker shards
(:func:`~repro.fleet.sharding.shard_of`); each shard owns its homes'
runtimes and nothing else — shards share no mutable state, so the layout
generalises directly to threads, processes, or machines.

The load-bearing guarantee, pinned by the test suite: **sharding is an
invisible scaling layer**.  For any event stream, a fleet run with any
shard count produces, per home, exactly the alert sequence that home's
runtime would produce standalone.  The router therefore never reorders a
home's events, never routes across homes, and never injects synthetic
time: :meth:`dispatch` only feeds events, and :meth:`finish` closes the
streams the way a standalone ``finish_stream`` would.  (The fleet-level
*interleaving* of different homes' alerts depends on the shard layout and
is deliberately unspecified.)

Telemetry stays shared-nothing too: every home's runtime records into its
own detector's registry, and :meth:`metrics_snapshot` joins them with
:func:`~repro.telemetry.merge_many` — the same worker-join primitive the
parallel evaluation runner uses.

Two capacity layers ride on the invisibility guarantee (both on by
default, both per-home-parity-preserving):

* **Shared contexts** — :meth:`add_home` interns each fitted detector in
  a :class:`~repro.core.SharedContextStore`; homes whose trained state is
  content-identical reference one frozen copy (copy-on-write: the first
  context refresh forks a private one).  :meth:`memory_report` accounts
  for the savings.
* **Batched tick** — :meth:`dispatch` stages every home's events first,
  pre-warms each shared correlation memo once across all homes in the
  batch (one vectorised ``distances_many`` pass instead of per-home
  scalar scans), then drains per home.  Only the fleet-level alert
  interleaving — unspecified anyway — differs from the per-event path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..core import (
    CorrelationChecker,
    DetectorBackend,
    DiceDetector,
    SharedContextStore,
    as_backend,
    trained_context_nbytes,
)
from ..model import Event
from ..streaming import Alert, HardenedOnlineDice
from .sharding import shard_of

#: Fleet-router counters/gauges.
FLEET_EVENTS_TOTAL = "dice_fleet_events_total"
FLEET_UNROUTED_TOTAL = "dice_fleet_unrouted_total"
FLEET_DISPATCHES_TOTAL = "dice_fleet_dispatches_total"
FLEET_HOMES_GAUGE = "dice_fleet_homes"

_log = telemetry.get_logger("repro.fleet.gateway")


def _rss_bytes() -> Optional[int]:
    """Process resident set size (Linux), informational only — allocator
    behaviour makes RSS unfit for CI budgets, unlike the estimator."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


@dataclass(frozen=True)
class FleetAlert:
    """One alert, attributed to the home whose runtime raised it."""

    home_id: str
    alert: Alert


class FleetShard:
    """One worker shard: the per-home runtimes hashed onto it.

    A shard is deliberately dumb — it keeps a dict of runtimes and replays
    batches into them in arrival order.  All routing decisions live in the
    gateway; all detection state lives in the runtimes.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.homes: Dict[str, HardenedOnlineDice] = {}

    def __len__(self) -> int:
        return len(self.homes)

    def dispatch(self, batch: Iterable[Tuple[str, Event]]) -> List[FleetAlert]:
        """Feed already-routed ``(home_id, event)`` pairs in order."""
        fresh: List[FleetAlert] = []
        homes = self.homes
        for home_id, event in batch:
            for alert in homes[home_id].ingest(event):
                fresh.append(FleetAlert(home_id, alert))
        return fresh

    def dispatch_batched(
        self, batch: Iterable[Tuple[str, Event]]
    ) -> List[FleetAlert]:
        """Batched tick: stage every home's events, pre-warm each distinct
        correlation memo once, then drain per home.

        Per-home alert sequences are byte-identical to :meth:`dispatch` —
        staging pins quarantine bits per window and the memo warm-up is a
        pure cache fill.  Only the fleet-level interleaving changes
        (alerts come out grouped by home, not by event arrival), which
        the gateway contract deliberately leaves unspecified.  When homes
        share an interned context they also share the memo, so one
        vectorised ``distances_many`` pass covers the whole batch's novel
        masks across every home on the context.
        """
        homes = self.homes
        staged: Dict[str, List[tuple]] = {}
        order: List[str] = []
        for home_id, event in batch:
            items = staged.get(home_id)
            if items is None:
                items = staged[home_id] = []
                order.append(home_id)
            homes[home_id].stage_event(event, items)
        warm: Dict[int, Tuple[CorrelationChecker, List[int]]] = {}
        for home_id in order:
            runtime = homes[home_id]
            masks = runtime.staged_window_masks(staged[home_id])
            if not masks:
                continue
            checker = runtime.backend.correlation_checker
            if checker is None:  # backend has no correlation memo to warm
                continue
            entry = warm.get(id(checker))
            if entry is None:
                warm[id(checker)] = (checker, masks)
            else:
                entry[1].extend(masks)
        for checker, masks in warm.values():
            checker.warm(masks)
        fresh: List[FleetAlert] = []
        for home_id in order:
            for alert in homes[home_id].drain_staged(staged[home_id]):
                fresh.append(FleetAlert(home_id, alert))
        return fresh

    def advance_to(self, timestamp: float) -> List[FleetAlert]:
        fresh: List[FleetAlert] = []
        for home_id, runtime in self.homes.items():
            for alert in runtime.advance_to(timestamp):
                fresh.append(FleetAlert(home_id, alert))
        return fresh

    def finish(self, ends: Dict[str, Optional[float]]) -> List[FleetAlert]:
        fresh: List[FleetAlert] = []
        for home_id, runtime in self.homes.items():
            for alert in runtime.finish_stream(ends.get(home_id)):
                fresh.append(FleetAlert(home_id, alert))
        return fresh


class FleetGateway:
    """Shard router + per-home runtime registry for one fleet process.

    Parameters
    ----------
    num_shards:
        Worker shard count.  Any positive value is legal for any fleet;
        the home → shard map is a pure hash, so changing the count between
        runs (including across a checkpoint/restore cycle) only moves
        homes between shards.
    metrics:
        Registry for the *router's* counters (events routed, unrouted
        drops, homes per shard).  Defaults to a fresh private registry so
        fleet-level numbers never mix with any single home's; pass
        ``telemetry.NULL_REGISTRY`` to disable.
    share_contexts:
        Intern each :meth:`add_home` detector in the fleet's
        :class:`~repro.core.SharedContextStore`, so content-identical
        trained states are stored once (copy-on-write on divergence).
    batch_tick:
        Use the staged, memo-prewarming :meth:`FleetShard.dispatch_batched`
        per tick instead of per-event ingest.  Per-home alert parity is
        pinned by the test suite; disable only to A/B the paths.
    context_store:
        Share an existing store (e.g. across gateways in one process);
        defaults to a fresh private one.
    """

    def __init__(
        self,
        num_shards: int = 4,
        *,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
        share_contexts: bool = True,
        batch_tick: bool = True,
        context_store: Optional[SharedContextStore] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)
        self.share_contexts = bool(share_contexts)
        self.batch_tick = bool(batch_tick)
        self.context_store = (
            context_store if context_store is not None else SharedContextStore()
        )
        self.shards = [FleetShard(i) for i in range(self.num_shards)]
        self._runtimes: Dict[str, HardenedOnlineDice] = {}
        self.alerts: List[FleetAlert] = []
        self.unrouted = 0
        self.metrics = (
            metrics if metrics is not None else telemetry.MetricsRegistry()
        )
        self._events_counter = self.metrics.counter(
            FLEET_EVENTS_TOTAL,
            "Events routed to a shard, by shard index",
            labelnames=("shard",),
        )
        self._unrouted_counter = self.metrics.counter(
            FLEET_UNROUTED_TOTAL, "Events addressed to homes this fleet does not host"
        )
        self._dispatch_counter = self.metrics.counter(
            FLEET_DISPATCHES_TOTAL, "dispatch() batches processed"
        )
        if self.metrics.enabled:
            homes_gauge = self.metrics.gauge(
                FLEET_HOMES_GAUGE, "Homes hosted per shard", labelnames=("shard",)
            )

            def collect() -> None:
                for shard in self.shards:
                    homes_gauge.labels(shard=str(shard.index)).set(len(shard))

            self.metrics.register_collector("fleet", collect)

    # ------------------------------------------------------------------ #
    # Home management
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._runtimes)

    def __contains__(self, home_id: str) -> bool:
        return home_id in self._runtimes

    @property
    def home_ids(self) -> List[str]:
        """Hosted homes, sorted."""
        return sorted(self._runtimes)

    def runtime_of(self, home_id: str) -> HardenedOnlineDice:
        return self._runtimes[home_id]

    def shard_index_of(self, home_id: str) -> int:
        return shard_of(home_id, self.num_shards)

    def add_home(
        self,
        home_id: str,
        detector: Union[DiceDetector, DetectorBackend],
        *,
        start: float = 0.0,
        **runtime_kwargs,
    ) -> HardenedOnlineDice:
        """Create and register a hardened runtime for *home_id*.

        *detector* is a fitted :class:`DiceDetector` or any fitted
        :class:`~repro.core.DetectorBackend`.  ``runtime_kwargs`` pass
        through to :class:`HardenedOnlineDice` (lateness budget, supervisor
        policy, ...).  With context sharing on, a DICE detector is interned
        *before* the runtime captures its base hash — an adopted detector
        reuses the canonical copy's.  Backends without a DICE context
        (Markov, ensembles) skip interning.
        """
        backend = as_backend(detector)
        if self.share_contexts and backend.dice_detector is not None:
            self.context_store.intern(backend.dice_detector)
        runtime = HardenedOnlineDice(backend, start=start, **runtime_kwargs)
        return self.add_runtime(home_id, runtime)

    def add_runtime(
        self, home_id: str, runtime: HardenedOnlineDice
    ) -> HardenedOnlineDice:
        """Register an existing runtime (checkpoint restore path)."""
        if home_id in self._runtimes:
            raise ValueError(f"home {home_id!r} is already hosted")
        # Alert provenance trace ids hash the home id; stamp it the moment
        # home identity attaches, before any event can reach the runtime.
        if runtime.provenance.enabled:
            runtime.provenance.home_id = home_id
        shard = self.shards[shard_of(home_id, self.num_shards)]
        shard.homes[home_id] = runtime
        self._runtimes[home_id] = runtime
        _log.debug("home_added", home=home_id, shard=shard.index)
        return runtime

    # ------------------------------------------------------------------ #
    # Event flow
    # ------------------------------------------------------------------ #

    def dispatch(
        self, events: Iterable[Tuple[str, Event]]
    ) -> List[FleetAlert]:
        """Route one tick's batch of ``(home_id, event)`` pairs.

        Events are grouped per shard **preserving each home's arrival
        order**, then every shard drains its sub-batch; shards are
        processed in index order.  Events addressed to homes this fleet
        does not host are counted (``dice_fleet_unrouted_total``) and
        dropped — a router must never crash on a stray tenant id.
        """
        batches: List[List[Tuple[str, Event]]] = [[] for _ in self.shards]
        routed = [0] * self.num_shards
        for home_id, event in events:
            if home_id not in self._runtimes:
                self.unrouted += 1
                self._unrouted_counter.inc()
                continue
            index = shard_of(home_id, self.num_shards)
            batches[index].append((home_id, event))
            routed[index] += 1
        fresh: List[FleetAlert] = []
        for shard, batch in zip(self.shards, batches):
            if batch:
                if self.batch_tick:
                    fresh.extend(shard.dispatch_batched(batch))
                else:
                    fresh.extend(shard.dispatch(batch))
        for index, count in enumerate(routed):
            if count:
                self._events_counter.labels(shard=str(index)).inc(count)
        self._dispatch_counter.inc()
        self.alerts.extend(fresh)
        return fresh

    def advance_to(self, timestamp: float) -> List[FleetAlert]:
        """Account for wall-clock time on every home.

        Alert *content* is the same as an event-driven run would produce,
        but quiet-tail windows and silence verdicts may surface earlier;
        the parity-pinned drivers (tests, bench, CLI) are therefore purely
        event-driven and call :meth:`finish` once at end-of-stream.
        """
        fresh: List[FleetAlert] = []
        for shard in self.shards:
            fresh.extend(shard.advance_to(timestamp))
        self.alerts.extend(fresh)
        return fresh

    def finish(
        self, ends: Union[None, float, Dict[str, float]] = None
    ) -> List[FleetAlert]:
        """End-of-stream for every home.

        *ends* is one timestamp for the whole fleet, a per-home mapping,
        or ``None`` (flush buffers and conclude sessions without closing
        a quiet tail).
        """
        if ends is None or isinstance(ends, (int, float)):
            per_home = {home_id: ends for home_id in self._runtimes}
        else:
            per_home = {home_id: ends.get(home_id) for home_id in self._runtimes}
        fresh: List[FleetAlert] = []
        for shard in self.shards:
            fresh.extend(shard.finish(per_home))
        self.alerts.extend(fresh)
        return fresh

    def finish_home(
        self, home_id: str, end: Optional[float] = None
    ) -> List[FleetAlert]:
        """End-of-stream for a single home (the ingest service's per-stream
        close), leaving every other home's stream open."""
        runtime = self._runtimes[home_id]
        fresh = [FleetAlert(home_id, alert) for alert in runtime.finish_stream(end)]
        self.alerts.extend(fresh)
        return fresh

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def alerts_of(self, home_id: str) -> List[Alert]:
        """One home's alert sequence, in emission order."""
        return [fa.alert for fa in self.alerts if fa.home_id == home_id]

    def memory_report(self) -> dict:
        """Fleet memory accounting: trained-state bytes as hosted (shared)
        vs what per-home replication would cost, plus store dedup stats.

        The byte numbers come from the deterministic
        :func:`~repro.core.trained_context_nbytes` estimator — an adopted
        detector reports the canonical copy's size, so summing over homes
        *is* the replicated cost.  RSS rides along informationally.
        """
        per_context: Dict[int, int] = {}
        replicated = 0
        for home_id in sorted(self._runtimes):
            detector = self._runtimes[home_id].detector
            if detector is None:  # backend without a DICE trained context
                continue
            nbytes = trained_context_nbytes(detector)
            replicated += nbytes
            per_context.setdefault(id(detector.model), nbytes)
        shared = sum(per_context.values())
        homes = len(self._runtimes)
        return {
            "homes": homes,
            "distinct_contexts": len(per_context),
            "trained_bytes_shared": shared,
            "trained_bytes_replicated": replicated,
            "trained_bytes_per_home": (shared / homes) if homes else 0.0,
            "replicated_bytes_per_home": (replicated / homes) if homes else 0.0,
            "savings_ratio": (replicated / shared) if shared else 1.0,
            "store": self.context_store.stats(),
            "rss_bytes": _rss_bytes(),
        }

    def metrics_snapshot(self) -> dict:
        """One fleet-wide snapshot: router registry + every home's, merged.

        Homes sharing a registry object (e.g. all defaulted to the
        process-global one) are merged exactly once — counters must not be
        double-counted just because tenants share a sink.
        """
        snapshots = [self.metrics.snapshot()]
        seen = {id(self.metrics)}
        for home_id in sorted(self._runtimes):
            registry = self._runtimes[home_id].metrics
            if id(registry) in seen:
                continue
            seen.add(id(registry))
            snapshots.append(registry.snapshot())
        return telemetry.merge_many(snapshots)

    def health(self) -> dict:
        """JSON-serializable fleet health: routing totals plus a per-home
        rollup of the numbers an operator triages by."""
        alert_counts: Dict[str, int] = {}
        for fleet_alert in self.alerts:
            kind = fleet_alert.alert.kind
            alert_counts[kind] = alert_counts.get(kind, 0) + 1
        homes = {}
        for home_id in sorted(self._runtimes):
            runtime = self._runtimes[home_id]
            homes[home_id] = {
                "shard": shard_of(home_id, self.num_shards),
                "backend": runtime.backend.name,
                "alerts": len(runtime.alerts),
                "drops": runtime.drops.total,
                "quarantined": sorted(runtime.supervisor.quarantined),
            }
        return {
            "num_shards": self.num_shards,
            "num_homes": len(self._runtimes),
            "homes_per_shard": {
                str(shard.index): len(shard) for shard in self.shards
            },
            "alerts": alert_counts,
            "unrouted": self.unrouted,
            "contexts": self.context_store.stats(),
            "homes": homes,
        }

    # ------------------------------------------------------------------ #
    # Checkpoint (see repro.fleet.checkpoint)
    # ------------------------------------------------------------------ #

    def save_checkpoint(self, directory) -> None:
        from .checkpoint import save_fleet_checkpoint

        save_fleet_checkpoint(self, directory)

    @classmethod
    def restore(
        cls,
        detectors: Dict[str, Union[DiceDetector, DetectorBackend]],
        directory,
        **kwargs,
    ) -> "FleetGateway":
        from .checkpoint import restore_fleet

        return restore_fleet(detectors, directory, **kwargs)
