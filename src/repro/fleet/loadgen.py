"""Deterministic multi-home load generation for the fleet.

Fleet tests, benchmarks and the ``repro fleet`` CLI all need the same
thing: *H* distinct homes, each with a seeded, reproducible life, merged
into one ``(home_id, event)`` stream the router can consume in per-tick
batches.  This module builds that on :mod:`repro.smarthome.simulator` —
every home is a real :class:`~repro.smarthome.HomeSpec` (the ISLA house
family, cycled), renamed per home and simulated with a seed derived only
from ``(fleet seed, home index)``, so the whole fleet is a pure function
of its parameters.

Determinism contract (pinned by tests): two calls with equal parameters
produce byte-identical traces, and the merged stream's ordering is a pure
``(timestamp, home order)`` stable sort — no set iteration, no process
hash seed, no wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import telemetry
from ..core import DiceDetector
from ..model import Event, Trace
from ..smarthome import HomeSimulator, HomeSpec
from .gateway import FleetAlert, FleetGateway

#: The home families a fleet cycles through (binary-sensor ISLA houses:
#: cheap to simulate, quick to fit, yet real multi-room deployments).
def _builders() -> Sequence[Callable[[], HomeSpec]]:
    from ..datasets import isla

    return (isla.build_house_a, isla.build_house_b, isla.build_house_c)


def home_seed(fleet_seed: int, index: int) -> int:
    """The simulation seed of home *index* — a pure function, so one home
    can be regenerated without building the rest of its fleet."""
    return fleet_seed * 1_000_003 + index


@dataclass
class FleetHome:
    """One generated home: its spec, full trace, and train/live split."""

    home_id: str
    spec: HomeSpec
    trace: Trace
    split: float  # absolute seconds; training is [start, split), live [split, end)

    @property
    def training(self) -> Trace:
        return self.trace.slice(self.trace.start, self.split)

    @property
    def live(self) -> Trace:
        return self.trace.slice(self.split, self.trace.end)

    def fit_detector(
        self,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
        backend: str = "dice",
    ):
        """Fit this home's detector on its training prefix.

        Each home defaults to its **own** metrics registry so fleet
        telemetry stays shared-nothing and merges cleanly at snapshot
        time; pass ``telemetry.NULL_REGISTRY`` to disable recording.
        ``backend="dice"`` returns the bare :class:`DiceDetector`; any
        other registered backend name returns the fitted
        :class:`~repro.core.DetectorBackend`.
        """
        if metrics is None:
            metrics = telemetry.MetricsRegistry()
        if backend == "dice":
            return DiceDetector(self.trace.registry, metrics=metrics).fit(
                self.training
            )
        from ..core import create_backend

        return create_backend(
            backend, self.trace.registry, metrics=metrics
        ).fit(self.training)


def build_fleet_homes(
    num_homes: int,
    *,
    seed: int = 0,
    hours: float = 48.0,
    train_hours: float = 36.0,
    unique_homes: Optional[int] = None,
) -> List[FleetHome]:
    """Generate *num_homes* deterministic homes.

    Home *i* is the ``i % len(families)``-th ISLA house, renamed
    ``home-<i>``, simulated for *hours* with :func:`home_seed`.  The first
    *train_hours* of each trace are the precomputation prefix.

    *unique_homes* caps the number of distinct simulated lives: home *i*
    beyond the cap reuses home ``i % unique_homes``'s trace and split
    under its own id, so its detector fits to byte-identical trained
    state — the archetype structure a real estate-scale fleet has, and
    what the shared-context store dedups.  The default (``None``) keeps
    every home unique.
    """
    if num_homes < 1:
        raise ValueError("num_homes must be at least 1")
    if not 0.0 < train_hours < hours:
        raise ValueError("train_hours must leave a non-empty live segment")
    if unique_homes is None:
        unique_homes = num_homes
    if unique_homes < 1:
        raise ValueError("unique_homes must be at least 1")
    unique_homes = min(unique_homes, num_homes)
    builders = _builders()
    homes: List[FleetHome] = []
    for index in range(num_homes):
        home_id = f"home-{index:04d}"
        if index < unique_homes:
            spec = builders[index % len(builders)]().renamed(home_id)
            trace = HomeSimulator(spec).simulate(
                hours * 3600.0, seed=home_seed(seed, index)
            )
            split = trace.start + train_hours * 3600.0
        else:
            proto = homes[index % unique_homes]
            spec = proto.spec.renamed(home_id)
            trace = proto.trace
            split = proto.split
        homes.append(
            FleetHome(home_id=home_id, spec=spec, trace=trace, split=split)
        )
    return homes


def fit_fleet_detectors(
    homes: Sequence[FleetHome],
    metrics_factory: Optional[
        Callable[[], "telemetry.MetricsRegistry"]
    ] = None,
) -> Dict[str, DiceDetector]:
    """One fitted detector per home, running precomputation once per
    distinct trace.

    Homes stamped from an archetype (``unique_homes``) share their
    proto's trace object, so their fits are byte-identical; instead of
    re-running precomputation per clone, the proto's fitted model is
    cloned (registry, matrices) into a private detector — the same
    trained state the per-home fit would produce, at copy cost.  Every
    detector still gets its own metrics registry (shared-nothing
    telemetry), from *metrics_factory* or a fresh default.
    """
    from ..core.detector import DiceModel

    canonical: Dict[int, DiceDetector] = {}
    detectors: Dict[str, DiceDetector] = {}
    for home in homes:
        metrics = (
            metrics_factory() if metrics_factory else telemetry.MetricsRegistry()
        )
        proto = canonical.get(id(home.trace))
        if proto is None:
            detector = home.fit_detector(metrics=metrics)
            canonical[id(home.trace)] = detector
        else:
            model = proto.model
            clone = DiceModel(
                model.encoder,
                model.groups.copy(),
                model.transitions.copy(),
                model.training_windows,
            )
            detector = DiceDetector.from_model(
                home.trace.registry, clone, config=proto.config, metrics=metrics
            )
        detectors[home.home_id] = detector
    return detectors


def merged_ticks(
    homes: Sequence[FleetHome],
    tick_seconds: float = 300.0,
) -> Iterator[Tuple[float, List[Tuple[str, Event]]]]:
    """The fleet's live streams merged into per-tick dispatch batches.

    Yields ``(tick_start, batch)`` for every tick from the earliest live
    event to the latest, where *batch* holds the tick's ``(home_id,
    event)`` pairs sorted by timestamp (stable, so each home's order is
    its trace order and cross-home ties resolve by home order in
    *homes*).  Empty ticks are skipped — the event-driven router has
    nothing to do for them.
    """
    if tick_seconds <= 0:
        raise ValueError("tick_seconds must be positive")
    merged: List[Tuple[float, int, str, Event]] = []
    for order, home in enumerate(homes):
        for event in home.live:
            merged.append((event.timestamp, order, home.home_id, event))
    if not merged:
        return
    merged.sort(key=lambda item: item[0])  # stable: per-home order survives
    first = merged[0][0]
    tick_start = first - (first % tick_seconds)
    batch: List[Tuple[str, Event]] = []
    for timestamp, _, home_id, event in merged:
        while timestamp >= tick_start + tick_seconds:
            if batch:
                yield tick_start, batch
                batch = []
            tick_start += tick_seconds
        batch.append((home_id, event))
    if batch:
        yield tick_start, batch


def replay_fleet(
    gateway: FleetGateway,
    homes: Sequence[FleetHome],
    *,
    tick_seconds: float = 300.0,
    finish: bool = True,
    stop: Optional[Callable[[], bool]] = None,
) -> List[FleetAlert]:
    """Drive *gateway* over the homes' live streams, tick by tick.

    Events at or before a home's restore watermark are skipped, so the
    same call resumes a checkpointed fleet mid-stream.  With ``finish``
    (default) every home's stream is closed at its trace end — matching a
    standalone ``replay``; pass ``finish=False`` to leave streams open
    (e.g. before taking a checkpoint).

    *stop* is the drain hook: checked between ticks, and when it returns
    True the replay ends at the tick boundary **without** finishing the
    streams (every dispatched event is fully processed; nothing is cut
    mid-batch), so the caller can checkpoint and a later replay resumes
    from the watermarks.
    """
    watermarks: Dict[str, float] = {
        home.home_id: gateway.runtime_of(home.home_id).reorder.watermark
        for home in homes
        if home.home_id in gateway
    }
    alerts: List[FleetAlert] = []
    for _, batch in merged_ticks(homes, tick_seconds):
        if stop is not None and stop():
            finish = False
            break
        live = [
            (home_id, event)
            for home_id, event in batch
            if event.timestamp > watermarks.get(home_id, float("-inf"))
        ]
        if live:
            alerts.extend(gateway.dispatch(live))
    if finish:
        ends = {home.home_id: home.trace.end for home in homes}
        alerts.extend(gateway.finish(ends))
    return alerts
