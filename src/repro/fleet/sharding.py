"""Stable home → shard assignment.

The fleet's routing layer is a pure function: ``shard_of(home_id, N)``
depends only on the home id and the shard count, never on arrival order,
process hash seed, or platform.  That stability is load-bearing — a fleet
checkpoint taken with one process must restore in another with every home
landing on a shard deterministically, and a resharded restore (``N`` is
allowed to change between runs) must only *move* homes, never lose them.

``blake2b`` (stdlib, keyed to nothing) provides the avalanche; Python's
builtin ``hash`` is explicitly unusable here because string hashing is
randomized per process (PYTHONHASHSEED).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List


def shard_of(home_id: str, num_shards: int) -> int:
    """The shard index owning *home_id* in a fleet of *num_shards* shards."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if not home_id:
        raise ValueError("home_id must be non-empty")
    digest = hashlib.blake2b(home_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def shard_assignments(
    home_ids: Iterable[str], num_shards: int
) -> Dict[int, List[str]]:
    """Every shard's home list (shards with no homes are present, empty)."""
    assignments: Dict[int, List[str]] = {shard: [] for shard in range(num_shards)}
    for home_id in home_ids:
        assignments[shard_of(home_id, num_shards)].append(home_id)
    return assignments
