"""Shared data model: devices, events, and array-backed traces."""

from .devices import (
    ACTUATOR_TYPES,
    BINARY_TYPES,
    NUMERIC_TYPES,
    Device,
    DeviceKind,
    DeviceRegistry,
    SensorType,
    actuator,
    binary_sensor,
    numeric_sensor,
)
from .events import OFF, ON, Event, hours, seconds
from .trace import Trace

__all__ = [
    "ACTUATOR_TYPES",
    "BINARY_TYPES",
    "NUMERIC_TYPES",
    "Device",
    "DeviceKind",
    "DeviceRegistry",
    "SensorType",
    "actuator",
    "binary_sensor",
    "numeric_sensor",
    "OFF",
    "ON",
    "Event",
    "hours",
    "seconds",
    "Trace",
]
