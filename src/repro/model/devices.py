"""Device taxonomy for the smart-home model.

The paper (Ch. III) distinguishes two sensor classes — *binary* sensors,
which contribute a single activation bit per window, and *numeric* sensors,
which contribute three derived bits — plus *actuators*, whose on/off
activations feed the G2A/A2G transition matrices.  Everything downstream
(state-set encoding, fault injection, the simulator) shares this taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class DeviceKind(enum.Enum):
    """Top-level device class used by the DICE encoder."""

    BINARY_SENSOR = "binary_sensor"
    NUMERIC_SENSOR = "numeric_sensor"
    ACTUATOR = "actuator"

    @property
    def is_sensor(self) -> bool:
        return self is not DeviceKind.ACTUATOR


class SensorType(enum.Enum):
    """Physical sensor/actuator modality.

    Covers the nine sensor types of the POSTECH testbed (Fig. 4.1) plus the
    modalities present in the ISLA/WSU datasets (reed switches, pressure
    mats, item sensors, battery gauges) and the actuator families of the
    testbed (bulbs, switches, blinds, speaker).
    """

    # Testbed sensor modalities (Fig. 4.1).
    LIGHT = "light"
    TEMPERATURE = "temperature"
    HUMIDITY = "humidity"
    SOUND = "sound"
    MOTION = "motion"
    ULTRASONIC = "ultrasonic"
    FLAME = "flame"
    GAS = "gas"
    WEIGHT = "weight"
    LOCATION = "location"  # beacon RSSI observed by the resident's phone

    # Third-party dataset modalities.
    DOOR = "door"  # reed switch on doors/cupboards/appliances
    PRESSURE = "pressure"  # pressure mat (bed / couch)
    ITEM = "item"  # item-presence sensor
    FLUSH = "flush"  # toilet flush sensor
    APPLIANCE = "appliance"  # appliance-usage contact sensor
    BATTERY = "battery"  # battery-level gauge (hh102)

    # Actuator families.
    BULB = "bulb"
    SWITCH = "switch"
    BLIND = "blind"
    SPEAKER = "speaker"


#: Sensor modalities that report continuous values by default.
NUMERIC_TYPES = frozenset(
    {
        SensorType.LIGHT,
        SensorType.TEMPERATURE,
        SensorType.HUMIDITY,
        SensorType.SOUND,
        SensorType.ULTRASONIC,
        SensorType.WEIGHT,
        SensorType.LOCATION,
        SensorType.BATTERY,
    }
)

#: Sensor modalities that report on/off activations by default.
BINARY_TYPES = frozenset(
    {
        SensorType.MOTION,
        SensorType.FLAME,
        SensorType.GAS,
        SensorType.DOOR,
        SensorType.PRESSURE,
        SensorType.ITEM,
        SensorType.FLUSH,
        SensorType.APPLIANCE,
    }
)

#: Actuator modalities.
ACTUATOR_TYPES = frozenset(
    {SensorType.BULB, SensorType.SWITCH, SensorType.BLIND, SensorType.SPEAKER}
)


@dataclass(frozen=True)
class Device:
    """A single IoT device.

    Parameters
    ----------
    device_id:
        Unique identifier, e.g. ``"kitchen_temp_1"``.
    kind:
        Binary sensor, numeric sensor, or actuator.
    sensor_type:
        Physical modality (temperature, motion, bulb, ...).
    room:
        Room the device is placed in (``""`` for mobile devices such as the
        resident's phone reporting beacon RSSI).
    """

    device_id: str
    kind: DeviceKind
    sensor_type: SensorType
    room: str = ""

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ValueError("device_id must be non-empty")
        if self.kind is DeviceKind.ACTUATOR and self.sensor_type not in ACTUATOR_TYPES:
            raise ValueError(
                f"{self.sensor_type} is not an actuator modality "
                f"(device {self.device_id!r})"
            )
        if self.kind is not DeviceKind.ACTUATOR and self.sensor_type in ACTUATOR_TYPES:
            raise ValueError(
                f"{self.sensor_type} is an actuator modality but kind is "
                f"{self.kind} (device {self.device_id!r})"
            )

    @property
    def is_sensor(self) -> bool:
        return self.kind.is_sensor

    @property
    def is_actuator(self) -> bool:
        return self.kind is DeviceKind.ACTUATOR

    @property
    def is_binary(self) -> bool:
        """True for devices whose values are on/off (binary sensors and actuators)."""
        return self.kind is not DeviceKind.NUMERIC_SENSOR


def binary_sensor(device_id: str, sensor_type: SensorType, room: str = "") -> Device:
    """Convenience constructor for a binary sensor."""
    return Device(device_id, DeviceKind.BINARY_SENSOR, sensor_type, room)


def numeric_sensor(device_id: str, sensor_type: SensorType, room: str = "") -> Device:
    """Convenience constructor for a numeric sensor."""
    return Device(device_id, DeviceKind.NUMERIC_SENSOR, sensor_type, room)


def actuator(device_id: str, sensor_type: SensorType, room: str = "") -> Device:
    """Convenience constructor for an actuator."""
    return Device(device_id, DeviceKind.ACTUATOR, sensor_type, room)


class DeviceRegistry:
    """Ordered, indexed collection of the devices in one deployment.

    The registry assigns each device a stable integer index used by the
    array-backed :class:`~repro.model.trace.Trace` and by the state-set
    encoder's bit layout.  Iteration order is insertion order.
    """

    def __init__(self, devices: Iterable[Device] = ()) -> None:
        self._devices: List[Device] = []
        self._index: Dict[str, int] = {}
        for device in devices:
            self.add(device)

    def add(self, device: Device) -> int:
        """Register *device* and return its index.

        Raises ``ValueError`` on a duplicate id.
        """
        if device.device_id in self._index:
            raise ValueError(f"duplicate device id: {device.device_id!r}")
        index = len(self._devices)
        self._devices.append(device)
        self._index[device.device_id] = index
        return index

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._index

    def __getitem__(self, key) -> Device:
        if isinstance(key, str):
            return self._devices[self._index[key]]
        return self._devices[key]

    def index_of(self, device_id: str) -> int:
        return self._index[device_id]

    def get(self, device_id: str) -> Optional[Device]:
        idx = self._index.get(device_id)
        return None if idx is None else self._devices[idx]

    @property
    def device_ids(self) -> List[str]:
        return [d.device_id for d in self._devices]

    def sensors(self) -> List[Device]:
        return [d for d in self._devices if d.is_sensor]

    def binary_sensors(self) -> List[Device]:
        return [d for d in self._devices if d.kind is DeviceKind.BINARY_SENSOR]

    def numeric_sensors(self) -> List[Device]:
        return [d for d in self._devices if d.kind is DeviceKind.NUMERIC_SENSOR]

    def actuators(self) -> List[Device]:
        return [d for d in self._devices if d.is_actuator]

    def by_room(self, room: str) -> List[Device]:
        return [d for d in self._devices if d.room == room]

    def by_type(self, sensor_type: SensorType) -> List[Device]:
        return [d for d in self._devices if d.sensor_type == sensor_type]

    def census(self) -> Tuple[int, int, int]:
        """Return ``(binary_sensors, numeric_sensors, actuators)`` counts.

        Matches the columns of Table 4.1.
        """
        return (
            len(self.binary_sensors()),
            len(self.numeric_sensors()),
            len(self.actuators()),
        )

    def subset(self, device_ids: Iterable[str]) -> "DeviceRegistry":
        """New registry with only *device_ids*, preserving this order."""
        wanted = set(device_ids)
        missing = wanted - set(self._index)
        if missing:
            raise KeyError(f"unknown device ids: {sorted(missing)}")
        return DeviceRegistry(d for d in self._devices if d.device_id in wanted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        b, n, a = self.census()
        return f"DeviceRegistry(binary={b}, numeric={n}, actuators={a})"
