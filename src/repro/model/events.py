"""Event primitives.

An event is one reading or activation from one device at one instant:
``(timestamp_seconds, device_id, value)``.  Binary sensors and actuators use
``value > 0`` for "active"/"on"; numeric sensors carry the raw measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Conventional values for binary devices.
ON = 1.0
OFF = 0.0


@dataclass(frozen=True, order=True)
class Event:
    """A single device reading.

    Events order by ``(timestamp, device_id, value)`` so that a sorted event
    list is stable and deterministic.
    """

    timestamp: float
    device_id: str
    value: float

    @property
    def is_active(self) -> bool:
        """Whether a binary reading represents activation ("on")."""
        return self.value > 0.0

    def shifted(self, delta: float) -> "Event":
        """A copy of this event moved by *delta* seconds."""
        return Event(self.timestamp + delta, self.device_id, self.value)

    def invalid_reason(self) -> Optional[str]:
        """Why this event is malformed, or ``None`` when it is well-formed.

        A well-formed event has a finite timestamp, a finite value and a
        non-empty device id.  Gateway pipes deliver everything else too —
        NaN payloads from flaky firmware, empty ids from truncated frames —
        so ingest paths check this before touching any windowing state.
        """
        if not isinstance(self.device_id, str) or not self.device_id:
            return "empty_device_id"
        if not math.isfinite(self.timestamp):
            return "non_finite_timestamp"
        if not math.isfinite(self.value):
            return "non_finite_value"
        return None

    def is_valid(self) -> bool:
        """Whether the event is well-formed (see :meth:`invalid_reason`)."""
        return self.invalid_reason() is None


def seconds(hours: float = 0.0, minutes: float = 0.0, secs: float = 0.0) -> float:
    """Convert a mixed duration to seconds."""
    return hours * 3600.0 + minutes * 60.0 + secs


def hours(secs: float) -> float:
    """Convert seconds to hours."""
    return secs / 3600.0
