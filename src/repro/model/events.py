"""Event primitives.

An event is one reading or activation from one device at one instant:
``(timestamp_seconds, device_id, value)``.  Binary sensors and actuators use
``value > 0`` for "active"/"on"; numeric sensors carry the raw measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Conventional values for binary devices.
ON = 1.0
OFF = 0.0


@dataclass(frozen=True, order=True)
class Event:
    """A single device reading.

    Events order by ``(timestamp, device_id, value)`` so that a sorted event
    list is stable and deterministic.
    """

    timestamp: float
    device_id: str
    value: float

    @property
    def is_active(self) -> bool:
        """Whether a binary reading represents activation ("on")."""
        return self.value > 0.0

    def shifted(self, delta: float) -> "Event":
        """A copy of this event moved by *delta* seconds."""
        return Event(self.timestamp + delta, self.device_id, self.value)


def seconds(hours: float = 0.0, minutes: float = 0.0, secs: float = 0.0) -> float:
    """Convert a mixed duration to seconds."""
    return hours * 3600.0 + minutes * 60.0 + secs


def hours(secs: float) -> float:
    """Convert seconds to hours."""
    return secs / 3600.0
