"""Array-backed event traces.

A :class:`Trace` is the unit of data every part of the system exchanges: the
simulator produces one, the fault injector perturbs one, and DICE consumes
one.  Traces hold three parallel numpy arrays (timestamps, device indices,
values) sorted by time, which keeps multi-million-event datasets (hh102 spans
1488 hours with 112 sensors) cheap to window, slice and transform.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .devices import Device, DeviceRegistry
from .events import Event


class Trace:
    """A time-sorted sequence of device events over one deployment.

    Parameters
    ----------
    registry:
        The deployment's devices.  Every event must reference a registered
        device.
    timestamps, device_indices, values:
        Parallel arrays describing the events.  ``device_indices`` are
        indices into *registry*.  The constructor sorts by time (stable), so
        callers may pass unsorted data.
    start, end:
        Observation interval in seconds.  Defaults to ``[0, last event]``.
        Keeping the interval explicit matters because an interval with no
        events is still observation time (e.g. after a fail-stop fault).
    """

    def __init__(
        self,
        registry: DeviceRegistry,
        timestamps: np.ndarray,
        device_indices: np.ndarray,
        values: np.ndarray,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> None:
        timestamps = np.asarray(timestamps, dtype=np.float64)
        device_indices = np.asarray(device_indices, dtype=np.int32)
        values = np.asarray(values, dtype=np.float64)
        if not (timestamps.shape == device_indices.shape == values.shape):
            raise ValueError("timestamps, device_indices, values must align")
        if timestamps.ndim != 1:
            raise ValueError("event arrays must be one-dimensional")
        if len(device_indices) and (
            device_indices.min() < 0 or device_indices.max() >= len(registry)
        ):
            raise ValueError("device index out of range for registry")
        order = np.argsort(timestamps, kind="stable")
        if not np.array_equal(order, np.arange(len(order))):
            timestamps = timestamps[order]
            device_indices = device_indices[order]
            values = values[order]
        self.registry = registry
        self.timestamps = timestamps
        self.device_indices = device_indices
        self.values = values
        self.start = float(start)
        if end is None:
            end = float(timestamps[-1]) if len(timestamps) else self.start
        self.end = float(end)
        if self.end < self.start:
            raise ValueError(f"end ({end}) precedes start ({start})")
        if len(timestamps) and (
            timestamps[0] < self.start - 1e-9 or timestamps[-1] > self.end + 1e-9
        ):
            raise ValueError("events fall outside the [start, end] interval")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(
        cls, registry: DeviceRegistry, start: float = 0.0, end: float = 0.0
    ) -> "Trace":
        z = np.empty(0)
        return cls(registry, z, z.copy(), z.copy(), start=start, end=end)

    @classmethod
    def from_events(
        cls,
        registry: DeviceRegistry,
        events: Iterable[Event],
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> "Trace":
        """Build a trace from :class:`~repro.model.events.Event` objects."""
        events = sorted(events)
        n = len(events)
        timestamps = np.empty(n, dtype=np.float64)
        indices = np.empty(n, dtype=np.int32)
        values = np.empty(n, dtype=np.float64)
        for i, event in enumerate(events):
            timestamps[i] = event.timestamp
            indices[i] = registry.index_of(event.device_id)
            values[i] = event.value
        return cls(registry, timestamps, indices, values, start=start, end=end)

    @classmethod
    def concatenate(cls, parts: Sequence["Trace"]) -> "Trace":
        """Concatenate traces that share one registry.

        The result spans from the earliest ``start`` to the latest ``end``.
        """
        if not parts:
            raise ValueError("need at least one trace")
        registry = parts[0].registry
        for part in parts[1:]:
            if part.registry is not registry:
                raise ValueError("all parts must share one DeviceRegistry")
        return cls(
            registry,
            np.concatenate([p.timestamps for p in parts]),
            np.concatenate([p.device_indices for p in parts]),
            np.concatenate([p.values for p in parts]),
            start=min(p.start for p in parts),
            end=max(p.end for p in parts),
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def duration(self) -> float:
        """Observation span in seconds."""
        return self.end - self.start

    @property
    def duration_hours(self) -> float:
        return self.duration / 3600.0

    def __iter__(self) -> Iterator[Event]:
        ids = self.registry.device_ids
        for t, d, v in zip(self.timestamps, self.device_indices, self.values):
            yield Event(float(t), ids[d], float(v))

    def event_at(self, i: int) -> Event:
        return Event(
            float(self.timestamps[i]),
            self.registry.device_ids[self.device_indices[i]],
            float(self.values[i]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({len(self)} events, {self.duration_hours:.1f} h, "
            f"{len(self.registry)} devices)"
        )

    # ------------------------------------------------------------------ #
    # Slicing & filtering
    # ------------------------------------------------------------------ #

    def slice(self, t0: float, t1: float, rebase: bool = False) -> "Trace":
        """Events in ``[t0, t1)``.

        With ``rebase=True``, timestamps are shifted so the slice starts at
        zero — convenient for treating evaluation segments independently.
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        lo = int(np.searchsorted(self.timestamps, t0, side="left"))
        hi = int(np.searchsorted(self.timestamps, t1, side="left"))
        shift = -t0 if rebase else 0.0
        return Trace(
            self.registry,
            self.timestamps[lo:hi] + shift,
            self.device_indices[lo:hi],
            self.values[lo:hi],
            start=t0 + shift,
            end=t1 + shift,
        )

    def shifted(self, delta: float) -> "Trace":
        """A copy moved by *delta* seconds."""
        return Trace(
            self.registry,
            self.timestamps + delta,
            self.device_indices,
            self.values,
            start=self.start + delta,
            end=self.end + delta,
        )

    def device_mask(self, device_id: str) -> np.ndarray:
        """Boolean mask selecting the events of one device."""
        return self.device_indices == self.registry.index_of(device_id)

    def events_for(self, device_id: str) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(timestamps, values)`` arrays for one device."""
        mask = self.device_mask(device_id)
        return self.timestamps[mask], self.values[mask]

    def without_device(self, device_id: str) -> "Trace":
        """A copy with every event of *device_id* removed.

        The device stays registered — its bits simply never activate, which
        is exactly the footprint of a fail-stop fault.
        """
        keep = ~self.device_mask(device_id)
        return self.replace_arrays(
            self.timestamps[keep], self.device_indices[keep], self.values[keep]
        )

    def replace_arrays(
        self,
        timestamps: np.ndarray,
        device_indices: np.ndarray,
        values: np.ndarray,
    ) -> "Trace":
        """A new trace over the same registry and interval with new events."""
        return Trace(
            self.registry,
            timestamps,
            device_indices,
            values,
            start=self.start,
            end=self.end,
        )

    def with_extra_events(
        self,
        timestamps: np.ndarray,
        device_indices: np.ndarray,
        values: np.ndarray,
    ) -> "Trace":
        """A new trace with additional events merged in."""
        return self.replace_arrays(
            np.concatenate([self.timestamps, np.asarray(timestamps, dtype=np.float64)]),
            np.concatenate(
                [self.device_indices, np.asarray(device_indices, dtype=np.int32)]
            ),
            np.concatenate([self.values, np.asarray(values, dtype=np.float64)]),
        )

    def copy(self) -> "Trace":
        return self.replace_arrays(
            self.timestamps.copy(), self.device_indices.copy(), self.values.copy()
        )

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def event_counts(self) -> np.ndarray:
        """Events per device index."""
        return np.bincount(self.device_indices, minlength=len(self.registry))

    def active_devices(self) -> List[Device]:
        """Devices that produced at least one event."""
        counts = self.event_counts()
        return [d for i, d in enumerate(self.registry) if counts[i] > 0]
