"""Scenario-matrix robustness harness.

Sweeps fault class × dataset × single/multi-fault × detector stance
through the **streaming** runtime and reports per-cell precision, recall
and detection time — the living regression counterpart of the paper's
Ch. V tables, extended with Ch. VI attacks and concept-drift cells.
"""

from .cells import ScenarioCell, default_matrix, select_cells
from .report import (
    SCENARIO_SCHEMA,
    baselines_table,
    build_report,
    refresh_pairs,
    render_baselines,
    render_table,
    validate_report,
    write_report,
)
from .runner import ScenarioSettings, run_cell, run_matrix

__all__ = [
    "ScenarioCell",
    "default_matrix",
    "select_cells",
    "SCENARIO_SCHEMA",
    "baselines_table",
    "build_report",
    "refresh_pairs",
    "render_baselines",
    "render_table",
    "validate_report",
    "write_report",
    "ScenarioSettings",
    "run_cell",
    "run_matrix",
]
