"""Scenario-matrix cell definitions.

A *cell* is one point in the sweep: what goes wrong (fault class, attack
kind, or drift type), where (dataset), how many devices at once, and the
detector's stance (context refresh on or off).  The default matrix covers
every Ch. IV.2 fault class of Ni et al. (fail-stop, outlier, stuck-at,
high-noise, spike), an actuator fault, the Ch. VI spoofing attacks plus a
coordinated multi-sensor campaign, and both drift renderings with and
without online context refresh — each drift pair is the graceful-
degradation A/B the report's sustained-alert-rate column compares.

Datasets: ``houseA`` (ISLA binary-sensor home) carries the sensor fault
classes; ``D_houseA`` (the testbed, with numeric sensors and actuators)
carries the actuator fault and the value-spoofing attacks; ``synthetic``
is the chaos harness's cyclic home, whose stationary post-drift behaviour
makes the refresh A/B crisp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..faults import ALL_DRIFT_TYPES, ALL_FAULT_TYPES

#: Fault-cell variant for an actuator victim (rendered as fail-stop on an
#: actuator device; the enum classes all target sensors).
ACTUATOR_VARIANT = "actuator"

KIND_FAULT = "fault"
KIND_ATTACK = "attack"
KIND_DRIFT = "drift"


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the scenario matrix."""

    kind: str  # "fault" | "attack" | "drift"
    variant: str  # fault class / attack kind / drift type
    dataset: str  # "houseA" | "D_houseA" | "synthetic"
    multi: bool = False  # two simultaneous victims
    refresh: bool = False  # online context refresh enabled

    @property
    def cell_id(self) -> str:
        stance = "refresh" if self.refresh else "plain"
        return f"{self.injection_id}:{stance}"

    @property
    def injection_id(self) -> str:
        """The cell id minus the detector stance — the refresh A/B pair
        shares it, so both sides see the *same* seeded injection."""
        arity = "multi" if self.multi else "single"
        return f"{self.kind}:{self.variant}:{self.dataset}:{arity}"

    def __post_init__(self) -> None:
        if self.kind not in (KIND_FAULT, KIND_ATTACK, KIND_DRIFT):
            raise ValueError(f"unknown cell kind {self.kind!r}")


def default_matrix() -> List[ScenarioCell]:
    """The full sweep; order is the report order."""
    cells: List[ScenarioCell] = []
    # Ch. V sensor fault classes on houseA, single-fault.
    for fault_type in ALL_FAULT_TYPES:
        cells.append(ScenarioCell(KIND_FAULT, fault_type.value, "houseA"))
    # Multi-fault variants for the two classes the paper discusses most.
    cells.append(ScenarioCell(KIND_FAULT, "fail_stop", "houseA", multi=True))
    cells.append(ScenarioCell(KIND_FAULT, "stuck_at", "houseA", multi=True))
    # Actuator fault on the testbed (houseA has no actuators).
    cells.append(ScenarioCell(KIND_FAULT, ACTUATOR_VARIANT, "D_houseA"))
    # Ch. VI attacks on the testbed's numeric sensors.
    cells.append(ScenarioCell(KIND_ATTACK, "temperature", "D_houseA"))
    cells.append(ScenarioCell(KIND_ATTACK, "light", "D_houseA"))
    cells.append(ScenarioCell(KIND_ATTACK, "coordinated", "D_houseA"))
    # Concept drift, each rendering with the refresh A/B.
    for drift_type in ALL_DRIFT_TYPES:
        for refresh in (False, True):
            cells.append(
                ScenarioCell(
                    KIND_DRIFT, drift_type.value, "synthetic", refresh=refresh
                )
            )
    return cells


def select_cells(
    cells: Sequence[ScenarioCell], filters: Optional[Sequence[str]]
) -> List[ScenarioCell]:
    """Keep cells whose id contains any of the (stripped) filter strings.

    ``None`` or an empty filter list keeps everything.  An unmatched
    filter raises, so a typo in ``--cells`` fails loudly instead of
    silently shrinking the sweep.
    """
    wanted = [f.strip() for f in (filters or []) if f.strip()]
    if not wanted:
        return list(cells)
    selected: List[ScenarioCell] = []
    matched = set()
    for cell in cells:
        for f in wanted:
            if f in cell.cell_id:
                matched.add(f)
                if cell not in selected:
                    selected.append(cell)
    unmatched = [f for f in wanted if f not in matched]
    if unmatched:
        known = ", ".join(c.cell_id for c in cells)
        raise ValueError(
            f"cell filters {unmatched} match no cell; known cells: {known}"
        )
    return selected
