"""Scenario report document: schema, validation, rendering.

The report is the scenario matrix's single artifact — one JSON document,
written with sorted keys and no wall-clock fields, so two runs with the
same seed are **byte-identical** (CI diffs them with ``cmp``).  The
validator checks structure and value domains only, never measured
numbers, so schema validation cannot flake.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from .cells import KIND_ATTACK, KIND_DRIFT, KIND_FAULT

#: Schema ``/2`` added the per-cell ``backend`` field and the per-backend
#: ``baselines`` aggregate table (cell ids are unique per backend, not
#: globally, since every backend covers the full cell matrix).
SCENARIO_SCHEMA = "dice-scenario-report/2"


def _rate(numerator: int, denominator: int) -> float:
    return round(numerator / denominator, 4) if denominator else 0.0


def baselines_table(results: Sequence[dict]) -> List[dict]:
    """Per-backend aggregates over the cell rows: the baselines table.

    One entry per backend (in first-appearance order), pooling detection
    and identification counts across every cell the backend ran — the
    precision/recall/detection-time comparison the ISSUE's baselines
    table calls for.
    """
    order: List[str] = []
    pooled: Dict[str, dict] = {}
    for row in results:
        backend = row.get("backend", "dice")
        agg = pooled.get(backend)
        if agg is None:
            order.append(backend)
            agg = pooled[backend] = {
                "cells": 0,
                "tp": 0,
                "fn": 0,
                "fp": 0,
                "tn": 0,
                "correct": 0,
                "named": 0,
                "actual": 0,
                "minutes": [],
            }
        agg["cells"] += 1
        det = row["detection"]
        for key in ("tp", "fn", "fp", "tn"):
            agg[key] += int(det[key])
        ident = row["identification"]
        for key in ("correct", "named", "actual"):
            agg[key] += int(ident[key])
        agg["minutes"].extend(row["detection_minutes"]["samples"])
    table = []
    for backend in order:
        agg = pooled[backend]
        minutes = agg.pop("minutes")
        cells = agg.pop("cells")
        table.append(
            {
                "backend": backend,
                "cells": cells,
                "detection": {
                    "tp": agg["tp"],
                    "fn": agg["fn"],
                    "fp": agg["fp"],
                    "tn": agg["tn"],
                    "precision": _rate(agg["tp"], agg["tp"] + agg["fp"]),
                    "recall": _rate(agg["tp"], agg["tp"] + agg["fn"]),
                },
                "identification": {
                    "correct": agg["correct"],
                    "named": agg["named"],
                    "actual": agg["actual"],
                    "precision": _rate(agg["correct"], agg["named"]),
                    "recall": _rate(agg["correct"], agg["actual"]),
                },
                "mean_detection_minutes": (
                    round(sum(minutes) / len(minutes), 4) if minutes else None
                ),
            }
        )
    return table


def build_report(
    results: Sequence[dict], *, seed: int, settings: "object"
) -> Dict:
    """Assemble the report document around per-cell rows."""
    return {
        "schema": SCENARIO_SCHEMA,
        "seed": int(seed),
        "settings": settings.as_dict(),  # type: ignore[attr-defined]
        "baselines": baselines_table(results),
        "cells": list(results),
    }


def write_report(doc: Dict, path: str) -> None:
    """Validate, then write deterministically (sorted keys, LF, newline)."""
    validate_report(doc)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(payload)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"scenario report schema violation: {message}")


def _check_rate(row: dict, section: str, key: str) -> None:
    value = row[section][key]
    label = row.get("id") or row.get("backend")
    _require(
        isinstance(value, (int, float)) and 0.0 <= float(value) <= 1.0,
        f"cell {label!r}: {section}.{key} must be a rate in [0, 1]",
    )


def validate_report(doc: Dict) -> Dict:
    """Structurally validate a scenario report document.

    Raises :class:`ValueError` on any shape mismatch; returns *doc* so the
    call can be chained.
    """
    _require(isinstance(doc, dict), "top level must be an object")
    _require(
        doc.get("schema") == SCENARIO_SCHEMA, f"schema must be {SCENARIO_SCHEMA!r}"
    )
    _require(isinstance(doc.get("seed"), int), "seed must be an integer")
    _require(isinstance(doc.get("settings"), dict), "settings must be an object")
    cells = doc.get("cells")
    _require(isinstance(cells, list) and cells, "cells must be a non-empty list")
    seen = set()
    cell_backends = []
    for row in cells:
        _require(isinstance(row, dict), "each cell must be an object")
        cell_id = row.get("id")
        _require(isinstance(cell_id, str) and bool(cell_id), "cell id must be a string")
        backend = row.get("backend")
        _require(
            isinstance(backend, str) and bool(backend),
            f"cell {cell_id!r}: backend must be a non-empty string",
        )
        _require(
            (backend, cell_id) not in seen,
            f"duplicate cell id {cell_id!r} for backend {backend!r}",
        )
        seen.add((backend, cell_id))
        if backend not in cell_backends:
            cell_backends.append(backend)
        _require(
            row.get("kind") in (KIND_FAULT, KIND_ATTACK, KIND_DRIFT),
            f"cell {cell_id!r}: unknown kind {row.get('kind')!r}",
        )
        trials = row.get("trials")
        _require(
            isinstance(trials, int) and trials >= 1,
            f"cell {cell_id!r}: trials must be a positive integer",
        )
        for section, keys in (
            ("detection", ("tp", "fn", "fp", "tn")),
            ("identification", ("correct", "named", "actual")),
        ):
            block = row.get(section)
            _require(
                isinstance(block, dict),
                f"cell {cell_id!r}: {section} must be an object",
            )
            for key in keys:
                value = block.get(key)
                _require(
                    isinstance(value, int) and value >= 0,
                    f"cell {cell_id!r}: {section}.{key} must be a count",
                )
            _check_rate(row, section, "precision")
            _check_rate(row, section, "recall")
        counts = row["detection"]
        _require(
            counts["tp"] + counts["fn"] == trials,
            f"cell {cell_id!r}: tp + fn must equal trials",
        )
        _require(
            counts["fp"] + counts["tn"] == trials,
            f"cell {cell_id!r}: fp + tn must equal trials",
        )
        minutes = row.get("detection_minutes")
        _require(
            isinstance(minutes, dict) and isinstance(minutes.get("samples"), list),
            f"cell {cell_id!r}: detection_minutes.samples must be a list",
        )
        _require(
            len(minutes["samples"]) == counts["tp"],
            f"cell {cell_id!r}: one detection-time sample per true positive",
        )
        for sample in minutes["samples"]:
            _require(
                isinstance(sample, (int, float)) and float(sample) >= 0.0,
                f"cell {cell_id!r}: detection minutes must be non-negative",
            )
        if row.get("kind") == KIND_DRIFT:
            _require(
                isinstance(row.get("refresh"), dict),
                f"cell {cell_id!r}: drift cells must carry refresh stats",
            )
        else:
            _require(
                row.get("refresh") is None,
                f"cell {cell_id!r}: only drift cells carry refresh stats",
            )
    baselines = doc.get("baselines")
    _require(
        isinstance(baselines, list) and baselines,
        "baselines must be a non-empty list",
    )
    _require(
        [entry.get("backend") for entry in baselines] == cell_backends,
        "baselines must cover exactly the backends the cells ran, in order",
    )
    for entry in baselines:
        backend = entry.get("backend")
        for section in ("detection", "identification"):
            _require(
                isinstance(entry.get(section), dict),
                f"baseline {backend!r}: {section} must be an object",
            )
            _check_rate(entry, section, "precision")
            _check_rate(entry, section, "recall")
        _require(
            isinstance(entry.get("cells"), int) and entry["cells"] >= 1,
            f"baseline {backend!r}: cells must be a positive count",
        )
    return doc


def render_table(doc: Dict) -> str:
    """Human-readable per-cell summary for the CLI."""
    header = (
        f"{'cell':<52} {'backend':<9} "
        f"{'prec':>5} {'rec':>5} {'det-min':>8} {'sust/h':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in doc["cells"]:
        det = row["detection"]
        mean = row["detection_minutes"]["mean"]
        sustained = row.get("sustained_alerts_per_hour")
        lines.append(
            f"{row['id']:<52} "
            f"{row.get('backend', 'dice'):<9} "
            f"{det['precision']:>5.2f} {det['recall']:>5.2f} "
            f"{mean if mean is not None else '-':>8} "
            f"{sustained if sustained is not None else '-':>7}"
        )
    return "\n".join(lines)


def render_baselines(doc: Dict) -> str:
    """Human-readable per-backend baselines table for the CLI."""
    header = (
        f"{'backend':<10} {'cells':>5} "
        f"{'det-prec':>8} {'det-rec':>7} "
        f"{'id-prec':>7} {'id-rec':>6} {'det-min':>8}"
    )
    lines = [header, "-" * len(header)]
    for entry in doc.get("baselines", []):
        det = entry["detection"]
        ident = entry["identification"]
        mean = entry["mean_detection_minutes"]
        lines.append(
            f"{entry['backend']:<10} {entry['cells']:>5} "
            f"{det['precision']:>8.2f} {det['recall']:>7.2f} "
            f"{ident['precision']:>7.2f} {ident['recall']:>6.2f} "
            f"{mean if mean is not None else '-':>8}"
        )
    return "\n".join(lines)


def refresh_pairs(doc: Dict) -> List[dict]:
    """Match each refresh-enabled drift cell with its plain twin.

    Returns ``[{"variant", "plain", "refresh"}, ...]`` where the last two
    are the sustained alert rates — the graceful-degradation comparison
    the tests assert on.
    """
    drift: Dict[str, Dict[str, Optional[float]]] = {}
    for row in doc["cells"]:
        if row["kind"] != KIND_DRIFT:
            continue
        # Online refresh folds windows back into a DICE context; only the
        # dice rows make a meaningful A/B pair.
        if row.get("backend", "dice") != "dice":
            continue
        stance = "refresh" if row["refresh_enabled"] else "plain"
        drift.setdefault(row["variant"], {})[stance] = row[
            "sustained_alerts_per_hour"
        ]
    return [
        {"variant": variant, **stances}
        for variant, stances in sorted(drift.items())
        if "plain" in stances and "refresh" in stances
    ]
