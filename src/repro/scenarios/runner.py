"""Scenario-matrix execution.

Every cell runs through the **hardened streaming runtime** — guard,
reorder buffer, supervisor, detector, optional context refresh — because
that is the code path a deployment actually exercises; the batch pipeline
already has the golden fixtures.  A run is a pure function of
``(cell, trial, seed)``: traces are seeded, victim selection is seeded,
and nothing reads the wall clock, so the report is byte-reproducible.

Protocol (segment-level, matching ``repro.eval``):

* each trial streams one *faulty* live segment and shares one *faultless*
  baseline segment per ``(dataset, trial)`` — the baseline supplies the
  false-positive / true-negative column exactly like the thesis's
  faultless segments;
* detection is a hit when any ``detection`` alert fires at or after the
  earliest fault onset; detection time is event-time minutes from that
  onset (never wall time);
* identification compares the union of devices named by post-onset
  identification alerts against the injected victims;
* drift cells additionally report the *sustained* alert rate over the
  tail window starting ``settle_seconds`` after the onset — the number
  that should collapse when online context refresh is enabled.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..core import create_backend
from ..datasets import load_dataset
from ..faults import (
    DriftType,
    FaultType,
    InjectedFault,
    apply_drift,
    apply_fault,
    coordinated_attack,
    inject_stuck_at,
    light_attack,
    temperature_attack,
)
from ..faults.crash import _chaos_registry, _cyclic_trace
from ..eval.metrics import (
    DetectionCounts,
    IdentificationCounts,
    TimingStats,
    alerts_per_hour,
    detection_as_dict,
    identification_as_dict,
    mean_or_none,
)
from ..model import Trace
from ..streaming import (
    Alert,
    HardenedOnlineDice,
    RefreshPolicy,
    SupervisorPolicy,
)
from .cells import (
    ACTUATOR_VARIANT,
    KIND_ATTACK,
    KIND_DRIFT,
    KIND_FAULT,
    ScenarioCell,
)

_log = telemetry.get_logger("repro.scenarios")

HOUR = 3600.0

#: Devices need this many live-segment events to be eligible victims, so
#: a sampled fault always has behaviour to disturb.
MIN_VICTIM_EVENTS = 20


@dataclass(frozen=True)
class ScenarioSettings:
    """Runner knobs shared by every cell (recorded in the report)."""

    trials: int = 3
    house_hours: float = 36.0  # simulated span for houseA / D_houseA
    house_train_hours: float = 24.0
    synthetic_hours: float = 9.0  # chaos cyclic home span
    synthetic_train_hours: float = 3.0
    lateness_seconds: float = 120.0
    #: Lenient supervisor budget: house devices follow *daily* routines
    #: (a fridge is touched once per morning), and quarantining a victim
    #: before its next co-activation window masks the very bits the
    #: correlation check needs to catch a fail-stop — the budget must
    #: exceed the devices' natural inter-activity gap.
    silence_seconds: float = 8 * HOUR
    quarantine_seconds: float = 36 * HOUR
    #: Drift cells measure the sustained alert rate from this long after
    #: the onset to the end of the stream.
    settle_seconds: float = 1 * HOUR

    def as_dict(self) -> dict:
        return {
            "trials": self.trials,
            "house_hours": self.house_hours,
            "house_train_hours": self.house_train_hours,
            "synthetic_hours": self.synthetic_hours,
            "synthetic_train_hours": self.synthetic_train_hours,
            "lateness_seconds": self.lateness_seconds,
            "silence_seconds": self.silence_seconds,
            "quarantine_seconds": self.quarantine_seconds,
            "settle_seconds": self.settle_seconds,
        }

    @property
    def policy(self) -> SupervisorPolicy:
        return SupervisorPolicy(
            silence_seconds=self.silence_seconds,
            quarantine_seconds=self.quarantine_seconds,
        )


def _cell_rng(seed: int, trial: int, cell_id: str) -> np.random.Generator:
    """Seed derived stably from the cell id (no Python ``hash``)."""
    return np.random.default_rng(
        (int(seed), int(trial), zlib.crc32(cell_id.encode("utf-8")))
    )


class _TraceCache:
    """Base traces and faultless baselines shared across cells.

    Keyed by ``(dataset, trial)``: every cell on the same dataset and
    trial perturbs the same seeded base trace and is judged against the
    same faultless baseline run, so cell filters cannot change per-cell
    results."""

    def __init__(self, seed: int, settings: ScenarioSettings) -> None:
        self.seed = int(seed)
        self.settings = settings
        self._traces: Dict[Tuple[str, int], Tuple[Trace, float]] = {}
        self._baselines: Dict[Tuple[str, int, str], List[Alert]] = {}

    def base(self, dataset: str, trial: int) -> Tuple[Trace, float]:
        """The faultless trace and its train/live split time."""
        key = (dataset, trial)
        if key not in self._traces:
            s = self.settings
            if dataset == "synthetic":
                rng = np.random.default_rng((self.seed, trial, 11))
                phase = float(rng.choice([480.0, 600.0, 720.0]))
                trace = _cyclic_trace(
                    _chaos_registry(), s.synthetic_hours, phase
                )
                split = s.synthetic_train_hours * HOUR
            else:
                loaded = load_dataset(
                    dataset, seed=self.seed * 101 + trial, hours=s.house_hours
                )
                trace = loaded.trace
                split = trace.start + s.house_train_hours * HOUR
            self._traces[key] = (trace, split)
        return self._traces[key]

    def baseline_alerts(
        self, dataset: str, trial: int, backend: str = "dice"
    ) -> List[Alert]:
        """Alerts from streaming the *unperturbed* live segment."""
        key = (dataset, trial, backend)
        if key not in self._baselines:
            trace, split = self.base(dataset, trial)
            alerts, _stats = _stream(
                trace, split, self.settings, refresh=False, backend=backend
            )
            self._baselines[key] = alerts
        return self._baselines[key]


def _stream(
    trace: Trace,
    split: float,
    settings: ScenarioSettings,
    refresh: bool,
    backend: str = "dice",
) -> Tuple[List[Alert], dict]:
    """Fit on the training prefix, stream the live segment.

    Returns the alert list and the refresher stats.  A fresh backend per
    run: refresh mutates the model in place, so sharing a fitted detector
    across runs would leak groups between cells.
    """
    impl = create_backend(
        backend, trace.registry, metrics=telemetry.NULL_REGISTRY
    ).fit(trace.slice(trace.start, split))
    runtime = HardenedOnlineDice(
        impl,
        start=split,
        lateness_seconds=settings.lateness_seconds,
        policy=settings.policy,
        refresh=RefreshPolicy(enabled=refresh),
    )
    alerts = runtime.replay(trace.slice(split, trace.end))
    return alerts, runtime.refresher.stats()


def _eligible_sensors(trace: Trace, split: float) -> List[str]:
    """Sensors active enough in the live segment to carry a fault."""
    live = trace.slice(split, trace.end)
    out = []
    for device in trace.registry:
        if device.is_actuator:
            continue
        times, _ = live.events_for(device.device_id)
        if len(times) >= MIN_VICTIM_EVENTS:
            out.append(device.device_id)
    if not out:
        raise ValueError("no sensor is active enough to be a fault victim")
    return sorted(out)


def _pick(rng: np.random.Generator, pool: Sequence[str], count: int) -> List[str]:
    chosen = rng.choice(list(pool), size=min(count, len(pool)), replace=False)
    return sorted(str(d) for d in chosen)


def _numeric_pool(trace: Trace, prefix: Optional[str] = None) -> List[str]:
    pool = [
        d.device_id
        for d in trace.registry
        if not d.is_actuator and not d.is_binary
    ]
    if prefix:
        prefixed = [d for d in pool if d.startswith(prefix)]
        pool = prefixed or pool
    if not pool:
        raise ValueError("dataset has no numeric sensors for this attack")
    return sorted(pool)


def _inject(
    cell: ScenarioCell,
    trace: Trace,
    split: float,
    rng: np.random.Generator,
) -> Tuple[Trace, List[str], float]:
    """Perturb the base trace per the cell; returns (trace, victims, onset).

    The returned onset is the *earliest* one — the moment from which a
    detection counts and from which detection time is measured.
    """
    live_span = trace.end - split
    onset = split + float(rng.uniform(0.35, 0.55)) * live_span
    if cell.kind == KIND_FAULT:
        if cell.variant == ACTUATOR_VARIANT:
            actuators = sorted(
                d.device_id for d in trace.registry if d.is_actuator
            )
            if not actuators:
                raise ValueError(f"{cell.cell_id}: dataset has no actuators")
            victims = _pick(rng, actuators, 1)
            # A stuck-active actuator: spurious activations around the
            # clock, caught by the G2A transition check.
            return inject_stuck_at(trace, victims[0], onset, rng), victims, onset
        fault_type = FaultType(cell.variant)
        victims = _pick(rng, _eligible_sensors(trace, split), 2 if cell.multi else 1)
        faulty = trace
        for i, victim in enumerate(victims):
            # Stagger simultaneous faults by a tenth of the live span so
            # the second onset still leaves room to detect.
            faulty = apply_fault(
                faulty,
                InjectedFault(victim, fault_type, onset + i * 0.1 * live_span),
                rng,
            )
        return faulty, victims, onset
    if cell.kind == KIND_ATTACK:
        if cell.variant == "temperature":
            victims = _pick(rng, _numeric_pool(trace, "t_"), 1)
            attacked, _attack = temperature_attack(trace, victims[0], onset)
        elif cell.variant == "light":
            victims = _pick(rng, _numeric_pool(trace, "l_"), 1)
            attacked, _attack = light_attack(trace, victims[0], onset)
        elif cell.variant == "coordinated":
            victims = _pick(rng, _numeric_pool(trace), 2)
            attacked, _attacks = coordinated_attack(trace, victims, onset)
        else:
            raise ValueError(f"unknown attack variant {cell.variant!r}")
        return attacked, victims, onset
    if cell.kind == KIND_DRIFT:
        drifted, drift = apply_drift(trace, DriftType(cell.variant), onset, rng)
        return drifted, list(drift.devices), onset
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def run_cell(
    cell: ScenarioCell,
    seed: int = 7,
    settings: Optional[ScenarioSettings] = None,
    cache: Optional[_TraceCache] = None,
    backend: str = "dice",
) -> dict:
    """Run one cell for ``settings.trials`` trials; returns the report row."""
    settings = settings or ScenarioSettings()
    cache = cache or _TraceCache(seed, settings)
    detection = DetectionCounts()
    identification = IdentificationCounts()
    timing = TimingStats()
    victims_per_trial: List[List[str]] = []
    onset_hours: List[float] = []
    sustained_rates: List[float] = []
    refresh_totals = {"declared": 0, "applied": 0, "groups_added": 0}
    for trial in range(settings.trials):
        trace, split = cache.base(cell.dataset, trial)
        rng = _cell_rng(seed, trial, cell.injection_id)
        faulty, victims, onset = _inject(cell, trace, split, rng)
        victims_per_trial.append(victims)
        onset_hours.append(round(onset / HOUR, 4))
        alerts, stats = _stream(
            faulty, split, settings, refresh=cell.refresh, backend=backend
        )
        detections = sorted(
            a.time for a in alerts if a.kind == "detection" and a.time >= onset
        )
        if detections:
            detection.true_positives += 1
            timing.add((detections[0] - onset) / 60.0)
        else:
            detection.false_negatives += 1
        named = set()
        for alert in alerts:
            if alert.kind == "identification" and alert.time >= onset:
                named.update(alert.devices)
        identification.correct += len(named & set(victims))
        identification.named += len(named)
        identification.actual += len(victims)
        baseline = cache.baseline_alerts(cell.dataset, trial, backend)
        if any(a.kind == "detection" for a in baseline):
            detection.false_positives += 1
        else:
            detection.true_negatives += 1
        if cell.kind == KIND_DRIFT:
            rate = alerts_per_hour(
                detections, onset + settings.settle_seconds, trace.end
            )
            if rate is not None:
                sustained_rates.append(rate)
            for key in refresh_totals:
                refresh_totals[key] += int(stats.get(key, 0))
    result = {
        "id": cell.cell_id,
        "backend": backend,
        "kind": cell.kind,
        "variant": cell.variant,
        "dataset": cell.dataset,
        "multi": cell.multi,
        "refresh_enabled": cell.refresh,
        "trials": settings.trials,
        "victims": victims_per_trial,
        "onset_hours": onset_hours,
        "detection": detection_as_dict(detection),
        "detection_minutes": {
            "samples": [round(m, 4) for m in timing.samples],
            "mean": _round_or_none(mean_or_none(timing.samples)),
            "median": round(timing.median, 4) if len(timing) else None,
        },
        "identification": identification_as_dict(identification),
        "sustained_alerts_per_hour": _round_or_none(
            mean_or_none(sustained_rates)
        )
        if cell.kind == KIND_DRIFT
        else None,
        "refresh": dict(refresh_totals) if cell.kind == KIND_DRIFT else None,
    }
    return result


def _round_or_none(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 4)


def run_matrix(
    cells: Sequence[ScenarioCell],
    seed: int = 7,
    settings: Optional[ScenarioSettings] = None,
    backends: Sequence[str] = ("dice",),
) -> List[dict]:
    """Run every cell through every backend, sharing the trace cache.

    Rows come out grouped by backend (the order *backends* lists them),
    each backend covering the full *cells* sequence — so the report's
    per-backend baselines table compares every backend over the exact
    same seeded injections.  Faultless baseline runs are cached per
    ``(dataset, trial, backend)``; base traces are shared by all.
    """
    settings = settings or ScenarioSettings()
    if not backends:
        raise ValueError("backends must name at least one backend")
    cache = _TraceCache(seed, settings)
    results = []
    for backend in backends:
        for cell in cells:
            _log.info(
                "scenario_cell_start", cell=cell.cell_id, backend=backend
            )
            row = run_cell(
                cell, seed=seed, settings=settings, cache=cache, backend=backend
            )
            _log.info(
                "scenario_cell_done",
                cell=cell.cell_id,
                backend=backend,
                recall=row["detection"]["recall"],
            )
            results.append(row)
    return results
