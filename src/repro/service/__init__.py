"""The network-facing ingest service (ROADMAP: async gateway service).

``repro.service`` turns the durable fleet gateway into a long-running
process using nothing beyond the standard library:

* :mod:`~repro.service.protocol` — the CRC-framed wire protocol shared
  with the event journal, plus the strict incremental decoder;
* :mod:`~repro.service.server` — the asyncio ingest server: bounded-queue
  admission control, load shedding with structured drop accounting, a
  Prometheus/health/readiness HTTP surface, graceful SIGTERM drain;
* :mod:`~repro.service.client` — the reconnect-and-resume retrying
  sender the ``repro send`` CLI and the network chaos harness drive;
* :mod:`~repro.service.signals` — the shared checkpoint-and-exit-0
  signal handling the stream/fleet CLIs reuse.
"""

from .client import SendReport, ServiceClient, ServiceError
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    encode_message,
)
from .server import (
    CONNECTIONS_TOTAL,
    DISCONNECTS_TOTAL,
    DUPLICATE_FRAMES_TOTAL,
    FRAMES_TOTAL,
    QUEUE_DEPTH_GAUGE,
    SHED_TOTAL,
    IngestServer,
    ServiceConfig,
    ServiceThread,
)
from .signals import GracefulShutdown, drain_iter

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "ProtocolError",
    "encode_message",
    "QUEUE_DEPTH_GAUGE",
    "CONNECTIONS_TOTAL",
    "DISCONNECTS_TOTAL",
    "FRAMES_TOTAL",
    "SHED_TOTAL",
    "DUPLICATE_FRAMES_TOTAL",
    "IngestServer",
    "ServiceConfig",
    "ServiceThread",
    "ServiceClient",
    "ServiceError",
    "SendReport",
    "GracefulShutdown",
    "drain_iter",
]
