"""The retrying ingest client: reconnect-and-resume by sequence.

:class:`ServiceClient` drives one home's event stream into an
:class:`~repro.service.server.IngestServer` with the same delivery
discipline the alert outbox uses in the other direction — exponential
backoff with seedable jitter, a bounded attempt budget that resets on
progress, and resume-by-sequence so a crashed, restarted or overloaded
server costs a reconnect, never a lost or duplicated event:

1. connect, ``hello`` → the server's ``welcome`` carries ``applied``, the
   number of this home's events already journaled — the authoritative
   resume point (computed behind a queue barrier, so it is exact);
2. ``resume from=applied`` then stream ``events[applied:]`` through the
   journal fast-path frames, draining advisory acks opportunistically;
3. close with ``end`` (finish the home's stream server-side) or ``sync``
   (barrier only), and treat the returned exact count as completion;
4. any socket error, protocol violation, shed (``error: overloaded``) or
   timeout tears the connection down and re-enters step 1 after backoff.

A :class:`~repro.faults.net.NetFaultInjector` can be threaded into the
send path to perturb the byte stream (torn writes, garbage, slowloris,
stale-resume duplicate sends) — the client's own retry loop is the
recovery mechanism under test.
"""

from __future__ import annotations

import random
import select
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..durability.runtime import encode_event_frame
from ..model import Event
from . import protocol
from .protocol import FrameDecoder, ProtocolError

__all__ = ["ServiceError", "SendReport", "ServiceClient"]

_log = telemetry.get_logger("repro.service.client")


class ServiceError(RuntimeError):
    """The attempt budget ran out without completing the stream."""


class _Retry(Exception):
    """Internal: tear this connection down and start over."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class SendReport:
    """What one :meth:`ServiceClient.send_stream` call actually did."""

    home_id: str
    total_events: int
    applied: int = 0
    connects: int = 0
    retries: int = 0
    resent: int = 0  # frames re-sent at/below the server's applied count
    finished: bool = False
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.applied >= self.total_events


class _ClientIO:
    """One connection's framed reader/writer, with the fault hook."""

    def __init__(self, sock: socket.socket, injector=None) -> None:
        self.sock = sock
        self.injector = injector
        self.decoder = FrameDecoder()

    def send_frame(self, data: bytes, kind: str) -> None:
        if self.injector is not None:
            self.injector.send(self.sock, data, kind)
        else:
            self.sock.sendall(data)

    def send_message(self, message: dict) -> None:
        self.send_frame(protocol.encode_message(message), message["type"])

    def send_event(self, event: Event) -> None:
        self.send_frame(encode_event_frame(event), "event")

    def _feed(self, data: bytes) -> List[dict]:
        if not data:
            raise _Retry("server_closed")
        try:
            return self.decoder.feed(data)
        except ProtocolError as exc:
            raise _Retry(f"bad_reply:{exc}")

    def poll(self) -> List[dict]:
        """Drain whatever reply frames are ready, without blocking."""
        messages: List[dict] = []
        while True:
            readable, _, _ = select.select([self.sock], [], [], 0)
            if not readable:
                return messages
            messages.extend(self._feed(self.sock.recv(65536)))

    def recv(self) -> List[dict]:
        """Block (up to the socket timeout) for at least one frame."""
        while True:
            try:
                data = self.sock.recv(65536)
            except socket.timeout:
                raise _Retry("reply_timeout")
            messages = self._feed(data)
            if messages:
                return messages


class ServiceClient:
    """Backoff-retrying, resume-by-sequence sender for one ingest service.

    Parameters mirror :class:`~repro.durability.AlertOutbox` where they
    mean the same thing: attempt *n* (since the last progress) backs off
    ``min(max_delay, base_delay * 2**(n-1)) * (1 + jitter * U[0,1))``.
    *jitter_seed* makes the schedule byte-deterministic for chaos trials.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_attempts: int = 10,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        jitter_seed: Optional[int] = None,
        rng=None,
        io_timeout: float = 10.0,
        sleep=time.sleep,
        fault_injector=None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.host = host
        self.port = int(port)
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.rng = rng if rng is not None else random.Random(
            0 if jitter_seed is None else jitter_seed
        )
        self.io_timeout = float(io_timeout)
        self.sleep = sleep
        self.fault_injector = fault_injector

    def _backoff(self, attempt: int) -> float:
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return delay * (1.0 + self.jitter * self.rng.random())

    # ------------------------------------------------------------------ #

    def send_stream(
        self,
        home_id: str,
        events: Sequence[Event],
        *,
        end: Optional[float] = None,
        finish: bool = True,
    ) -> SendReport:
        """Deliver *events* for *home_id*; return the delivery report.

        With *finish* the server closes the home's stream at *end* after
        the last event (emitting any end-of-stream alerts); without it the
        call just barriers, leaving the stream open for a later session.
        Raises :class:`ServiceError` when ``max_attempts`` consecutive
        no-progress attempts fail.
        """
        report = SendReport(home_id=home_id, total_events=len(events))
        attempt = 0
        while True:
            sock = None
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.io_timeout
                )
                sock.settimeout(self.io_timeout)
                report.connects += 1
                if self.fault_injector is not None:
                    self.fault_injector.on_connect()
                io = _ClientIO(sock, self.fault_injector)
                io.send_message(protocol.hello(home_id))
                applied = self._await(io, report, "welcome")
                if applied > report.applied:
                    attempt = 0  # the stream moved forward: fresh budget
                report.applied = max(report.applied, applied)
                start = applied
                if self.fault_injector is not None:
                    start = self.fault_injector.resume_from(applied)
                io.send_message(protocol.resume(start))
                report.resent += applied - start
                for index in range(start, len(events)):
                    io.send_event(events[index])
                    for message in io.poll():
                        self._note(report, attempt, message)
                        if message["type"] == "ack":
                            if message["applied"] > report.applied:
                                report.applied = message["applied"]
                                attempt = 0
                if finish:
                    io.send_message(protocol.end(end))
                    final = self._await(io, report, "fin")
                else:
                    io.send_message(protocol.sync())
                    final = self._await(io, report, "synced")
                report.applied = max(report.applied, final)
                if final >= len(events):
                    report.finished = finish
                    return report
                raise _Retry("incomplete")
            except (_Retry, ConnectionError, OSError) as exc:
                reason = exc.reason if isinstance(exc, _Retry) else type(exc).__name__
                report.errors[reason] = report.errors.get(reason, 0) + 1
                attempt += 1
                report.retries += 1
                if attempt >= self.max_attempts:
                    raise ServiceError(
                        f"gave up on {home_id} after {attempt} attempts "
                        f"without progress (applied {report.applied}/"
                        f"{len(events)}, last error: {reason})"
                    )
                delay = self._backoff(attempt)
                _log.debug(
                    "send_retry",
                    home=home_id,
                    attempt=attempt,
                    reason=reason,
                    delay=round(delay, 4),
                )
                self.sleep(delay)
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover
                        pass

    def _await(self, io: "_ClientIO", report: SendReport, want: str) -> int:
        """Block for the *want* reply; fold acks in, fail on error frames."""
        while True:
            for message in io.recv():
                kind = message["type"]
                if kind == want:
                    return int(message["applied"])
                self._note(report, 0, message)
                if kind == "ack":
                    report.applied = max(report.applied, int(message["applied"]))

    @staticmethod
    def _note(report: SendReport, _attempt: int, message: dict) -> None:
        if message["type"] == "error":
            raise _Retry(str(message.get("reason", "server_error")))
