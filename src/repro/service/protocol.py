"""The ingest wire protocol: CRC-framed JSON messages over a byte stream.

The service speaks exactly the durability layer's journal framing —
``u32 payload length + u32 CRC32 + compact sorted-key JSON`` (see
:func:`repro.durability.journal.frame_payload`) — so an event frame on the
wire is byte-identical to the journal record the server will append for
it, and the hot send path reuses
:func:`repro.durability.runtime.encode_event_frame` unchanged.

Message vocabulary (``"type"`` field):

================  =========  ==================================================
type              direction  meaning
================  =========  ==================================================
``hello``         C → S      open a home stream: ``{"home": id}``
``welcome``       S → C      authoritative resume point: ``{"applied": N}``
``resume``        C → S      the client's next frame is stream index
                             ``{"from": K}`` with ``K <= applied``; the server
                             skips ``applied - K`` frames as known duplicates
``event``         C → S      one telemetry event (the journal fast path)
``sync``          C → S      barrier request; server answers ``synced``
``synced``        S → C      ``{"applied": N}`` — exact, all prior frames durable
``ack``           S → C      advisory progress ``{"applied": N}`` (may lag)
``end``           C → S      close the home stream at ``{"end": t}``;
                             server answers ``fin``
``fin``           S → C      ``{"applied": N}`` — stream finished, alerts flushed
``error``         S → C      ``{"reason": r}`` best-effort before a disconnect
================  =========  ==================================================

:class:`FrameDecoder` is the strict incremental half: it buffers arbitrary
byte chunks and yields complete messages, rejecting oversized lengths,
CRC mismatches and undecodable payloads with :class:`ProtocolError` *per
connection* — a poisoned stream kills its connection, never the server.
A partial frame is simply held until more bytes arrive (or the connection
ends), so torn writes cost only the torn frame.
"""

from __future__ import annotations

import json
import zlib
from typing import List, Optional

from ..durability.journal import _HEADER, MAX_RECORD_BYTES, frame_payload

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "ProtocolError",
    "FrameDecoder",
    "encode_message",
    "hello",
    "welcome",
    "resume",
    "sync",
    "synced",
    "ack",
    "end",
    "fin",
    "error",
]

#: Service-side frame-size bound — far above any event/control frame but
#: far below the journal's 1 MiB record cap, so a garbage length field is
#: rejected before it can make the decoder buffer a meaningless megabyte.
DEFAULT_MAX_FRAME_BYTES = 1 << 16

HEADER_SIZE = _HEADER.size


class ProtocolError(ValueError):
    """A malformed frame; scoped to the connection that sent it."""


def encode_message(message: dict) -> bytes:
    """Frame one control message (events use ``encode_event_frame``)."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return frame_payload(payload)


def hello(home_id: str) -> dict:
    return {"home": home_id, "type": "hello"}


def welcome(applied: int) -> dict:
    return {"applied": int(applied), "type": "welcome"}


def resume(from_index: int) -> dict:
    return {"from": int(from_index), "type": "resume"}


def sync() -> dict:
    return {"type": "sync"}


def synced(applied: int) -> dict:
    return {"applied": int(applied), "type": "synced"}


def ack(applied: int) -> dict:
    return {"applied": int(applied), "type": "ack"}


def end(end_time: Optional[float]) -> dict:
    return {"end": end_time, "type": "end"}


def fin(applied: int) -> dict:
    return {"applied": int(applied), "type": "fin"}


def error(reason: str) -> dict:
    return {"reason": reason, "type": "error"}


class FrameDecoder:
    """Incremental strict decoder for one connection's byte stream.

    ``feed(data)`` returns every message completed by *data*, in order.
    The first malformed frame raises :class:`ProtocolError` and poisons
    the decoder — the transport layer must drop the connection, because a
    length-prefixed stream cannot resynchronise past corruption.  Frames
    decoded *before* the corruption point are always preserved (returned
    by earlier ``feed`` calls or inspectable via the exception's
    ``messages`` attribute for the current call).
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if not 0 < max_frame_bytes <= MAX_RECORD_BYTES:
            raise ValueError(
                f"max_frame_bytes must be in (0, {MAX_RECORD_BYTES}]"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._dead = False

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a frame to complete."""
        return len(self._buffer)

    @property
    def dead(self) -> bool:
        return self._dead

    def _fail(self, reason: str, messages: List[dict]) -> "ProtocolError":
        self._dead = True
        self._buffer.clear()
        exc = ProtocolError(reason)
        exc.messages = messages  # frames decoded before the poison frame
        return exc

    def feed(self, data: bytes) -> List[dict]:
        """Consume *data*; return the messages it completed."""
        if self._dead:
            raise ProtocolError("decoder is poisoned; drop the connection")
        self._buffer.extend(data)
        messages: List[dict] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return messages
            length, crc = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise self._fail(
                    f"frame of {length} bytes exceeds {self.max_frame_bytes}",
                    messages,
                )
            frame_end = HEADER_SIZE + length
            if len(self._buffer) < frame_end:
                return messages
            payload = bytes(self._buffer[HEADER_SIZE:frame_end])
            if zlib.crc32(payload) != crc:
                raise self._fail("frame CRC mismatch", messages)
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise self._fail("frame payload is not valid JSON", messages)
            if not isinstance(message, dict) or not isinstance(
                message.get("type"), str
            ):
                raise self._fail("frame payload is not a typed object", messages)
            del self._buffer[:frame_end]
            messages.append(message)
