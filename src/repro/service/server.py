"""The asyncio ingest service: a long-running front-end for a durable fleet.

:class:`IngestServer` owns one :class:`~repro.durability.DurableFleetGateway`
and exposes it on two loopback-friendly listeners:

* a **binary ingest port** speaking the CRC-framed protocol of
  :mod:`repro.service.protocol` — one connection per home stream, with a
  hello/welcome handshake whose ``applied`` count (the home's journaled
  event total) is the client's authoritative resume point;
* an **HTTP port** serving the existing Prometheus exposition at
  ``/metrics`` plus ``/health`` (the gateway health report) and ``/ready``
  (flips to 503 the moment a drain starts).

Single-threaded by construction: every frame, journal append, dispatch and
checkpoint runs on the event loop, so the gateway needs no locks and the
crash-recovery contract of the durability layer carries over unchanged.

Admission control and graceful degradation
------------------------------------------

All decoded events funnel through one bounded :class:`asyncio.Queue`
(``queue_capacity``); its depth is exported as the
``dice_ingest_queue_depth`` gauge.  When an event arrives to a full queue
the server **sheds**: the event is recorded as a structured ``overload``
drop in its home's :class:`~repro.streaming.DropLog` (the same accounting
every ingest reject uses), the connection gets a best-effort
``error("overloaded")`` frame and is dropped — slowing the client down to
a reconnect-with-backoff instead of letting it grow server memory.
Because the shed event was never journaled, the home's ``applied`` count
does not advance past it and the welcome handshake makes the client
re-send exactly the shed suffix: overload degrades throughput, never
correctness.

Per-connection bounds: the frame decoder refuses oversized frames, reads
are idle-capped (``read_timeout_s``) and a partial frame that fails to
complete within ``frame_timeout_s`` disconnects the slow-loris client.

Ordering and exactness
----------------------

A home has at most one live connection (a newer hello preempts the older
connection).  Control messages ride the same FIFO queue as events via
barrier items, so a ``welcome``/``synced``/``fin`` count is computed only
after everything enqueued before it has been journaled and dispatched —
the reply is exact, and a client that resumes from it never duplicates an
event into the journal.  Stale resends (``resume from < applied``) are
skipped frame-by-frame and counted in
``dice_service_duplicate_frames_total``.

Drain (SIGTERM path)
--------------------

:meth:`drain` stops accepting, drops live connections, lets the consumer
finish everything already admitted, delivers the alert-outbox backlog,
writes a checkpoint (when a checkpoint directory is configured) and closes
the journals — after which the process exits 0.  Streams are *not*
finished: a drained service resumes mid-stream exactly like a crashed one,
just without replay work.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from .. import telemetry
from ..durability.fleet import DurableFleetGateway
from ..model import Event
from ..streaming.guard import OVERLOAD, DroppedEvent
from ..telemetry import to_prometheus
from . import protocol
from .protocol import FrameDecoder, ProtocolError

__all__ = [
    "QUEUE_DEPTH_GAUGE",
    "CONNECTIONS_TOTAL",
    "DISCONNECTS_TOTAL",
    "FRAMES_TOTAL",
    "SHED_TOTAL",
    "DUPLICATE_FRAMES_TOTAL",
    "ServiceConfig",
    "IngestServer",
    "ServiceThread",
]

#: Gauge of events admitted but not yet journaled+dispatched.
QUEUE_DEPTH_GAUGE = "dice_ingest_queue_depth"
CONNECTIONS_TOTAL = "dice_service_connections_total"
DISCONNECTS_TOTAL = "dice_service_disconnects_total"
FRAMES_TOTAL = "dice_service_frames_total"
SHED_TOTAL = "dice_service_shed_total"
DUPLICATE_FRAMES_TOTAL = "dice_service_duplicate_frames_total"

_log = telemetry.get_logger("repro.service.server")


@dataclass
class ServiceConfig:
    """Tunables for one :class:`IngestServer` (defaults suit loopback)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is ``server.port``
    http_port: int = 0
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES
    #: Global admitted-event bound; beyond it the server sheds.
    queue_capacity: int = 4096
    #: Events dispatched per gateway batch (amortises the batched tick).
    dispatch_batch: int = 256
    #: Idle bound: a connection delivering no bytes for this long is dropped.
    read_timeout_s: float = 10.0
    #: Slow-loris bound: a partial frame pending longer than this is dropped.
    frame_timeout_s: float = 10.0
    #: Send an advisory ack every this many admitted event frames.
    ack_every: int = 64
    #: Artificial per-event dispatch cost — the bench/test hook that makes
    #: overload reproducible without depending on machine speed.
    dispatch_delay_s: float = 0.0


class _Disconnect(Exception):
    """Internal: drop the current connection for *reason*."""

    def __init__(self, reason: str, notify: bool = True) -> None:
        super().__init__(reason)
        self.reason = reason
        self.notify = notify


class _Connection:
    """Per-connection state for the ingest listener."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.home: Optional[str] = None
        self.alive = True
        self.to_skip = 0  # known-duplicate frames left to swallow
        self.since_ack = 0
        self.task: Optional[asyncio.Task] = None

    def send(self, message: dict) -> None:
        if not self.writer.is_closing():
            self.writer.write(protocol.encode_message(message))

    def close(self) -> None:
        self.alive = False
        try:
            self.writer.close()
        except OSError:  # pragma: no cover - platform dependent
            pass


class IngestServer:
    """One durable fleet behind an ingest socket and an HTTP surface."""

    def __init__(
        self,
        durable: DurableFleetGateway,
        config: Optional[ServiceConfig] = None,
        *,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.durable = durable
        self.config = config or ServiceConfig()
        self.checkpoint_dir = checkpoint_dir
        self.metrics = durable.gateway.metrics
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None
        self.ready = False
        self.draining = False
        self.max_queue_depth = 0
        self._queue: Optional[asyncio.Queue] = None
        self._ingest_listener: Optional[asyncio.base_events.Server] = None
        self._http_listener: Optional[asyncio.base_events.Server] = None
        self._consumer: Optional[asyncio.Task] = None
        self._connections: Set[_Connection] = set()
        self._home_conns: Dict[str, _Connection] = {}
        self._finished: Set[str] = set()
        self._conn_counter = self.metrics.counter(
            CONNECTIONS_TOTAL, "Ingest connections accepted"
        )
        self._disc_counter = self.metrics.counter(
            DISCONNECTS_TOTAL,
            "Ingest connections dropped by the server, by reason",
            labelnames=("reason",),
        )
        self._frames_counter = self.metrics.counter(
            FRAMES_TOTAL, "Protocol frames received, by type", labelnames=("type",)
        )
        self._shed_counter = self.metrics.counter(
            SHED_TOTAL, "Events shed because the ingest queue was full"
        )
        self._dup_counter = self.metrics.counter(
            DUPLICATE_FRAMES_TOTAL,
            "Event frames skipped as known duplicates (stale resume resends)",
        )
        if self.metrics.enabled:
            gauge = self.metrics.gauge(
                QUEUE_DEPTH_GAUGE, "Events admitted but not yet dispatched"
            )

            def collect() -> None:
                gauge.set(0 if self._queue is None else self._queue.qsize())

            self.metrics.register_collector("service_queue", collect)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        config = self.config
        self._queue = asyncio.Queue(maxsize=config.queue_capacity)
        self._consumer = asyncio.create_task(self._consume())
        self._ingest_listener = await asyncio.start_server(
            self._handle_ingest, config.host, config.port
        )
        self.port = self._ingest_listener.sockets[0].getsockname()[1]
        self._http_listener = await asyncio.start_server(
            self._handle_http, config.host, config.http_port
        )
        self.http_port = self._http_listener.sockets[0].getsockname()[1]
        self.ready = True
        _log.info(
            "service_started",
            port=self.port,
            http_port=self.http_port,
            homes=len(self.durable),
            queue_capacity=config.queue_capacity,
        )

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush, checkpoint, close."""
        if self.draining:
            return
        self.draining = True
        self.ready = False
        _log.info("service_draining", port=self.port)
        if self._ingest_listener is not None:
            self._ingest_listener.close()
            await self._ingest_listener.wait_closed()
        for conn in list(self._connections):
            self._drop(conn, "draining")
        # FIFO barrier: everything admitted before this point is journaled
        # and dispatched once the future resolves.
        await self._barrier()
        self._consumer.cancel()
        self.durable.deliver_pending()
        if self.checkpoint_dir is not None:
            self.durable.save_checkpoint(self.checkpoint_dir)
            _log.info("drain_checkpoint_saved", directory=self.checkpoint_dir)
        self.durable.close()
        if self._http_listener is not None:
            self._http_listener.close()
            await self._http_listener.wait_closed()
        _log.info("service_drained", port=self.port)

    async def kill(self) -> None:
        """Abrupt death for chaos harnesses: no flush beyond the journal's
        own buffers, no checkpoint, no goodbyes.  (Lost OS-buffer bytes are
        modelled by the harness tearing the journal tail afterwards, the
        same way the crash harness does.)"""
        self.ready = False
        self.draining = True
        if self._ingest_listener is not None:
            self._ingest_listener.close()
        if self._http_listener is not None:
            self._http_listener.close()
        for conn in list(self._connections):
            conn.close()
        if self._consumer is not None:
            self._consumer.cancel()
        self.durable.close()

    async def _barrier(self) -> int:
        if self._consumer is None or self._consumer.done():
            raise RuntimeError("ingest consumer is not running")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(("barrier", future))
        return await future

    # ------------------------------------------------------------------ #
    # Consumer: the single writer into the gateway
    # ------------------------------------------------------------------ #

    async def _consume(self) -> None:
        config = self.config
        queue = self._queue
        while True:
            item = await queue.get()
            batch: List[Tuple[str, Event]] = []
            control = None
            while True:
                if item[0] == "event":
                    batch.append((item[1], item[2]))
                else:
                    control = item
                    break
                if len(batch) >= config.dispatch_batch or queue.empty():
                    break
                item = queue.get_nowait()
            if batch:
                try:
                    self.durable.dispatch(batch)
                except Exception as exc:  # keep the service alive; the
                    # journal already holds whatever was appended, so a
                    # recovery replay sees a consistent prefix.
                    _log.error("dispatch_failed", error=str(exc))
                if config.dispatch_delay_s > 0.0:
                    await asyncio.sleep(config.dispatch_delay_s * len(batch))
            if control is not None:
                self._handle_control(control)

    def _handle_control(self, item: tuple) -> None:
        kind = item[0]
        if kind == "barrier":
            future = item[1]
            if not future.done():
                future.set_result(sum(self.durable.ingest_seqs.values()))
        elif kind == "end":
            _, home, end_time, future = item
            try:
                # Idempotent within this process: a client retrying a lost
                # ``fin`` must not finish the stream (and re-emit its
                # end-of-stream alerts) twice.
                if home not in self._finished:
                    self.durable.finish_home(home, end_time)
                    self._finished.add(home)
                self.durable.deliver_pending()
            except Exception as exc:  # surface to the requesting connection
                if not future.done():
                    future.set_exception(exc)
                return
            if not future.done():
                future.set_result(self.applied(home))

    def applied(self, home_id: str) -> int:
        """The home's journaled event count — the client resume point."""
        return self.durable.ingest_seqs.get(home_id, 0)

    # ------------------------------------------------------------------ #
    # Ingest connections
    # ------------------------------------------------------------------ #

    def _drop(self, conn: _Connection, reason: str, notify: bool = True) -> None:
        if not conn.alive:
            return
        if notify:
            try:
                conn.send(protocol.error(reason))
            except OSError:  # pragma: no cover - peer already gone
                pass
        self._disc_counter.labels(reason=reason).inc()
        conn.close()
        if conn.task is not None and conn.task is not asyncio.current_task():
            conn.task.cancel()

    async def _handle_ingest(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        conn.task = asyncio.current_task()
        self._connections.add(conn)
        self._conn_counter.inc()
        config = self.config
        decoder = FrameDecoder(config.max_frame_bytes)
        loop = asyncio.get_running_loop()
        partial_since: Optional[float] = None
        try:
            while conn.alive:
                try:
                    data = await asyncio.wait_for(
                        reader.read(65536), config.read_timeout_s
                    )
                except asyncio.TimeoutError:
                    raise _Disconnect("slow_client")
                if not data:
                    break  # clean EOF
                try:
                    messages = decoder.feed(data)
                except ProtocolError as exc:
                    _log.warning(
                        "protocol_error", home=conn.home, error=str(exc)
                    )
                    raise _Disconnect("protocol_error")
                for message in messages:
                    await self._on_message(conn, message)
                if decoder.buffered:
                    now = loop.time()
                    if partial_since is None:
                        partial_since = now
                    elif now - partial_since > config.frame_timeout_s:
                        raise _Disconnect("slow_client")
                else:
                    partial_since = None
        except _Disconnect as exc:
            self._drop(conn, exc.reason, notify=exc.notify)
        except RuntimeError:  # barrier refused: the server is going down
            self._drop(conn, "shutting_down", notify=False)
        except (
            asyncio.CancelledError,
            ConnectionError,
            OSError,
        ):  # peer vanished or server is going down
            pass
        finally:
            conn.alive = False
            self._connections.discard(conn)
            if conn.home is not None and self._home_conns.get(conn.home) is conn:
                del self._home_conns[conn.home]
            try:
                writer.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    async def _on_message(self, conn: _Connection, message: dict) -> None:
        kind = message["type"]
        self._frames_counter.labels(type=kind).inc()
        if kind == "event":
            self._on_event(conn, message)
            return
        if kind == "hello":
            await self._on_hello(conn, message)
        elif kind == "resume":
            self._on_resume(conn, message)
        elif kind == "sync":
            self._require_home(conn)
            applied = await self._home_barrier(conn)
            conn.send(protocol.synced(applied))
            await self._flush(conn)
        elif kind == "end":
            self._require_home(conn)
            future = asyncio.get_running_loop().create_future()
            await self._queue.put(("end", conn.home, message.get("end"), future))
            try:
                applied = await future
            except Exception as exc:
                _log.error("finish_failed", home=conn.home, error=str(exc))
                raise _Disconnect("finish_failed")
            conn.send(protocol.fin(applied))
            await self._flush(conn)
        else:
            raise _Disconnect("unexpected_frame")

    def _require_home(self, conn: _Connection) -> None:
        if conn.home is None:
            raise _Disconnect("hello_required")

    async def _home_barrier(self, conn: _Connection) -> int:
        await self._barrier()
        return self.applied(conn.home)

    async def _on_hello(self, conn: _Connection, message: dict) -> None:
        if conn.home is not None:
            raise _Disconnect("duplicate_hello")
        home = message.get("home")
        if not isinstance(home, str) or home not in self.durable:
            raise _Disconnect("unknown_home")
        previous = self._home_conns.get(home)
        if previous is not None and previous is not conn:
            # A newer client for the same home preempts the older one; the
            # barrier below waits out anything it already admitted.
            self._drop(previous, "superseded")
        conn.home = home
        self._home_conns[home] = conn
        applied = await self._home_barrier(conn)
        conn.send(protocol.welcome(applied))
        await self._flush(conn)

    def _on_resume(self, conn: _Connection, message: dict) -> None:
        self._require_home(conn)
        applied = self.applied(conn.home)
        from_index = message.get("from")
        if not isinstance(from_index, int) or not 0 <= from_index <= applied:
            raise _Disconnect("bad_resume")
        conn.to_skip = applied - from_index

    def _on_event(self, conn: _Connection, message: dict) -> None:
        self._require_home(conn)
        if conn.to_skip > 0:
            conn.to_skip -= 1
            self._dup_counter.inc()
            return
        try:
            event = Event(
                float(message["t"]), str(message["d"]), float(message["v"])
            )
        except (KeyError, TypeError, ValueError):
            raise _Disconnect("bad_event")
        try:
            self._queue.put_nowait(("event", conn.home, event))
        except asyncio.QueueFull:
            # Shed: structured drop + counter, then slow the client down by
            # dropping the connection (it resumes from the journaled point).
            self.durable.runtime_of(conn.home).drops.record(
                DroppedEvent(
                    event.timestamp, event.device_id, event.value, OVERLOAD
                )
            )
            self._shed_counter.inc()
            raise _Disconnect("overloaded")
        depth = self._queue.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        conn.since_ack += 1
        if conn.since_ack >= self.config.ack_every:
            conn.since_ack = 0
            conn.send(protocol.ack(self.applied(conn.home)))

    async def _flush(self, conn: _Connection) -> None:
        try:
            await conn.writer.drain()
        except (ConnectionError, OSError):
            raise _Disconnect("peer_gone", notify=False)

    # ------------------------------------------------------------------ #
    # HTTP surface
    # ------------------------------------------------------------------ #

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.config.read_timeout_s
                )
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
            ):
                return
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split()
            if len(parts) != 3 or parts[0] not in ("GET", "HEAD"):
                self._http_reply(writer, 405, "text/plain", "method not allowed\n")
                return
            path = parts[1].split("?", 1)[0]
            if path == "/metrics":
                body = to_prometheus(self.durable.metrics_snapshot())
                self._http_reply(
                    writer, 200, "text/plain; version=0.0.4", body
                )
            elif path == "/health":
                import json

                health = self.durable.health()
                health["service"] = {
                    "ready": self.ready,
                    "draining": self.draining,
                    "connections": len(self._connections),
                    "queue_depth": 0 if self._queue is None else self._queue.qsize(),
                    "queue_capacity": self.config.queue_capacity,
                    "max_queue_depth": self.max_queue_depth,
                }
                self._http_reply(
                    writer,
                    200,
                    "application/json",
                    json.dumps(health, sort_keys=True) + "\n",
                )
            elif path == "/ready":
                if self.ready:
                    self._http_reply(writer, 200, "text/plain", "ready\n")
                else:
                    self._http_reply(writer, 503, "text/plain", "draining\n")
            else:
                self._http_reply(writer, 404, "text/plain", "not found\n")
            await writer.drain()
        except (ConnectionError, OSError):  # peer gone mid-reply
            pass
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    @staticmethod
    def _http_reply(
        writer: asyncio.StreamWriter, status: int, ctype: str, body: str
    ) -> None:
        reasons = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                   503: "Service Unavailable"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)


class ServiceThread:
    """Run an :class:`IngestServer` on a private event loop in a daemon
    thread — the harness tests, the bench and the chaos suite all drive a
    real socket server this way while staying synchronous themselves.

    All interaction with the server object after :meth:`start` must go
    through :meth:`call` / :meth:`run`, which execute on the loop thread.
    """

    def __init__(self, server: IngestServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        def main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # startup failed; report and bail
                self._startup_error = exc
                self._started.set()
                loop.close()
                return
            self._started.set()
            try:
                loop.run_forever()
            finally:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=main, name="dice-ingest-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> int:
        return self.server.http_port

    def call(self, fn: Callable, timeout: float = 30.0):
        """Run ``fn()`` on the loop thread and return its result."""
        import concurrent.futures

        result: concurrent.futures.Future = concurrent.futures.Future()

        def runner() -> None:
            try:
                result.set_result(fn())
            except BaseException as exc:
                result.set_exception(exc)

        self._loop.call_soon_threadsafe(runner)
        return result.result(timeout)

    def run(self, coro, timeout: float = 60.0):
        """Run a coroutine on the loop thread and return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)

    def drain(self) -> None:
        """Graceful stop: drain the server, then stop the loop thread."""
        self.run(self.server.drain())
        self._stop_loop()

    def kill(self) -> None:
        """Abrupt stop (chaos): no drain, no checkpoint, loop torn down."""
        try:
            self.run(self.server.kill(), timeout=30.0)
        finally:
            self._stop_loop()
