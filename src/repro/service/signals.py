"""Shared graceful-shutdown plumbing for the CLIs and the service.

A long-running ``repro stream`` / ``repro fleet`` / ``repro serve`` must
treat SIGTERM (and a operator's Ctrl-C) as *drain*, not *die*: stop
consuming, flush what is in flight, write a checkpoint, exit 0.  The
synchronous CLIs get that from :class:`GracefulShutdown` — a context
manager that swaps in flag-setting handlers and exposes ``requested`` for
the ingest loop to poll between events — while the asyncio service wires
the same signals straight to :meth:`IngestServer.drain` on its loop.
"""

from __future__ import annotations

import signal
from typing import Iterable, Iterator, List, Optional, Tuple, TypeVar

from .. import telemetry

__all__ = ["GracefulShutdown", "drain_iter"]

_log = telemetry.get_logger("repro.service.signals")

T = TypeVar("T")

#: The signals a deployment sends a process it wants gone politely.
_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """Install SIGTERM/SIGINT handlers that request — not force — a stop.

    Inside the ``with`` block, ``requested`` flips to True on the first
    signal (recording which one); a second signal of the same kind falls
    back to the previous handler, so a stuck drain can still be killed
    the ordinary way.  Handlers are restored on exit.
    """

    def __init__(self) -> None:
        self.requested = False
        self.signal_name: Optional[str] = None
        self._previous: List[Tuple[int, object]] = []

    def _handler(self, signum, frame) -> None:
        if self.requested:
            # Second signal: the operator means it. Restore and re-raise
            # through the original disposition.
            self._restore()
            signal.raise_signal(signum)
            return
        self.requested = True
        self.signal_name = signal.Signals(signum).name
        _log.info("shutdown_requested", signal=self.signal_name)

    def __enter__(self) -> "GracefulShutdown":
        self._previous = []
        for signum in _SIGNALS:
            try:
                previous = signal.signal(signum, self._handler)
            except (ValueError, OSError):  # non-main thread / exotic platform
                continue
            self._previous.append((signum, previous))
        return self

    def _restore(self) -> None:
        for signum, previous in self._previous:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous = []

    def __exit__(self, *exc_info) -> None:
        self._restore()


def drain_iter(
    items: Iterable[T], shutdown: Optional[GracefulShutdown]
) -> Iterator[T]:
    """Yield from *items* until a shutdown is requested.

    The drain point is *between* items — an event already yielded is
    processed to completion, so a checkpoint taken after the loop captures
    a consistent prefix of the stream.
    """
    if shutdown is None:
        yield from items
        return
    for item in items:
        if shutdown.requested:
            return
        yield item
