"""Smart-home simulator: floor plans, device physics, residents, automations."""

from .activities import ActivityCatalog, ActivityInstance, ActivitySpec, NumericEffect
from .automation import (
    ActivityActuatorRule,
    AutomationOutput,
    AutomationRule,
    DaylightBlindRule,
    EffectSwitchRule,
    OccupancyLightRule,
    SimulationContext,
)
from .daylight import DaylightModel
from .effects import BinaryTrigger, EffectInterval, NumericSignalBuilder, binary_events
from .floorplan import FloorPlan, Room, postech_floorplan, single_floor_apartment
from .profiles import DEFAULT_NUMERIC_PROFILES, NumericProfile, profile_for
from .schedule import (
    DAY_SECONDS,
    DailyRoutine,
    RoutineEntry,
    build_schedule,
    occupancy_intervals,
)
from .simulator import HomeSimulator, HomeSpec

__all__ = [
    "ActivityCatalog",
    "ActivityInstance",
    "ActivitySpec",
    "NumericEffect",
    "ActivityActuatorRule",
    "AutomationOutput",
    "AutomationRule",
    "DaylightBlindRule",
    "EffectSwitchRule",
    "OccupancyLightRule",
    "SimulationContext",
    "DaylightModel",
    "BinaryTrigger",
    "EffectInterval",
    "NumericSignalBuilder",
    "binary_events",
    "FloorPlan",
    "Room",
    "postech_floorplan",
    "single_floor_apartment",
    "DEFAULT_NUMERIC_PROFILES",
    "NumericProfile",
    "profile_for",
    "DAY_SECONDS",
    "DailyRoutine",
    "RoutineEntry",
    "build_schedule",
    "occupancy_intervals",
    "HomeSimulator",
    "HomeSpec",
]
