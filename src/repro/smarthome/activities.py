"""Activity model: what a resident's action does to the deployment.

An :class:`ActivitySpec` describes one activity of daily living — its room,
typical duration, and footprint on the home's devices: which binary sensors
it fires (a fridge door, a flush) and which numeric sensors it shifts
(cooking heats the kitchen, a shower humidifies the bathroom).

Occupancy footprints (motion sensors, beacon RSSI, ultrasonic proximity in
the activity's room) are *not* listed per activity; the simulator derives
them from the floor plan so every activity in a room automatically touches
that room's presence sensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .effects import BinaryTrigger


@dataclass(frozen=True)
class NumericEffect:
    """An additive level shift on one numeric sensor while active."""

    device_id: str
    delta: float


@dataclass(frozen=True)
class ActivitySpec:
    """One activity of daily living.

    Parameters
    ----------
    name:
        Activity label (also the routine key), e.g. ``"prepare_dinner"``.
    room:
        Where it happens; drives the derived occupancy footprint.
    duration_minutes:
        ``(low, high)`` uniform range for the activity's length.
    binary_triggers / numeric_effects:
        Activity-specific device footprint beyond plain occupancy.
    away:
        True for out-of-home spans (no occupancy footprint at all).
    still:
        True for motionless presence (sleep, nap): the resident is in the
        room — beacons still hear the phone — but motion and proximity
        sensors stay quiet.
    """

    name: str
    room: str
    duration_minutes: Tuple[float, float]
    binary_triggers: Tuple[BinaryTrigger, ...] = ()
    numeric_effects: Tuple[NumericEffect, ...] = ()
    away: bool = False
    still: bool = False
    #: Canonical label for dataset statistics: per-resident aliases of one
    #: activity ("sleeping_r1"/"sleeping_r2") share a canonical name
    #: ("sleeping") and count once in Table 4.1's activity column.
    canonical: str = ""

    def __post_init__(self) -> None:
        lo, hi = self.duration_minutes
        if lo <= 0 or hi < lo:
            raise ValueError(
                f"invalid duration range {self.duration_minutes} for {self.name!r}"
            )


@dataclass(frozen=True)
class ActivityInstance:
    """One occurrence of an activity on the timeline (seconds).

    ``end`` bounds the activity's device footprint (its triggers and
    numeric effects); ``presence_end`` bounds the resident's *presence* in
    the room, which runs on until the next activity starts — people do not
    vanish between annotated activities, they putter about where they are.
    """

    spec: ActivitySpec
    start: float
    end: float
    resident: int = 0
    presence_end: float = 0.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("activity instance must have positive length")
        if self.presence_end < self.end:
            object.__setattr__(self, "presence_end", self.end)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def room(self) -> str:
        return self.spec.room

    def clipped(self, end: float) -> "ActivityInstance":
        """A copy ending no later than *end*."""
        return ActivityInstance(
            self.spec, self.start, min(self.end, end), self.resident
        )


class ActivityCatalog:
    """Named collection of the activities one deployment supports."""

    def __init__(self, specs: Iterable[ActivitySpec] = ()) -> None:
        self._specs: Dict[str, ActivitySpec] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: ActivitySpec) -> None:
        if spec.name in self._specs:
            raise ValueError(f"duplicate activity: {spec.name!r}")
        self._specs[spec.name] = spec

    def __getitem__(self, name: str) -> ActivitySpec:
        return self._specs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs.values())

    @property
    def names(self) -> List[str]:
        return list(self._specs)
