"""Actuator automation rules.

The testbed's actuators "were programmed to react to the connected
sensor's values" (Ch. IV): Hue bulbs follow motion, WeMo switches follow
temperature/humidity, blinds follow daylight, the Echo is used during
listening activities.  The simulator reproduces those couplings: each rule
turns the simulation context into actuator on/off events plus (optionally)
feedback effects the actuator has on nearby sensors — which is exactly the
structure DICE's G2A and A2G matrices learn.

Rules fire with a small reaction delay so that the actuator activation
lands in the window *after* the sensor context that triggered it, matching
the paper's group→actuator transition semantics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


from .activities import ActivityInstance, NumericEffect
from .effects import EffectInterval
from .spans import Span, complement, intersect, normalise


@dataclass
class SimulationContext:
    """Everything a rule may react to (read-only)."""

    horizon: float
    schedule: List[ActivityInstance]
    occupancy: Dict[str, List[Span]]
    daylight: List[Span]
    #: Numeric effect intervals assembled so far, keyed by device id.
    numeric_effects: Dict[str, List[EffectInterval]]
    #: Occupancy excluding still presence (sleep, naps) — None falls back
    #: to ``occupancy``.
    moving_occupancy: Optional[Dict[str, List[Span]]] = None

    def night_spans(self) -> List[Span]:
        return complement(self.daylight, 0.0, self.horizon)

    def room_occupancy(self, room: str) -> List[Span]:
        return self.occupancy.get(room, [])

    def room_moving_occupancy(self, room: str) -> List[Span]:
        source = (
            self.moving_occupancy
            if self.moving_occupancy is not None
            else self.occupancy
        )
        return source.get(room, [])


@dataclass
class AutomationOutput:
    """What a rule produces: actuator events and sensor feedback."""

    #: ``(timestamp, value)`` actuator events; value > 0 is an activation.
    events: List[Tuple[float, float]] = field(default_factory=list)
    effects: List[EffectInterval] = field(default_factory=list)


def _spans_to_switching(
    spans: Sequence[Span], delay: float, horizon: float
) -> List[Tuple[float, float]]:
    """On at span start + delay, off at span end + delay."""
    events: List[Tuple[float, float]] = []
    for start, end in spans:
        on = start + delay
        off = end + delay
        if on >= horizon or off <= on:
            continue
        events.append((on, 1.0))
        if off < horizon:
            events.append((off, 0.0))
    return events


class AutomationRule(abc.ABC):
    """Base class: one actuator, one trigger condition."""

    def __init__(self, actuator_id: str, delay_seconds: float = 60.0) -> None:
        if delay_seconds < 0:
            raise ValueError("delay must be non-negative")
        self.actuator_id = actuator_id
        self.delay_seconds = delay_seconds

    @abc.abstractmethod
    def evaluate(self, ctx: SimulationContext) -> AutomationOutput:
        """Compute the actuator's behaviour over the whole horizon."""


class OccupancyLightRule(AutomationRule):
    """Hue-style bulb: on while its room is occupied (at night, if asked).

    While on, the bulb raises the room's light sensors by ``lux_delta``.
    The default delta makes base + delta a clean multiple of the light
    sensors' 10-lux resolution — a plateau that straddles a quantisation
    boundary would flicker between adjacent readings on measurement noise.
    """

    def __init__(
        self,
        actuator_id: str,
        room: str,
        light_sensor_ids: Sequence[str] = (),
        lux_delta: float = 175.0,
        night_only: bool = True,
        delay_seconds: float = 60.0,
    ) -> None:
        super().__init__(actuator_id, delay_seconds)
        self.room = room
        self.light_sensor_ids = tuple(light_sensor_ids)
        self.lux_delta = lux_delta
        self.night_only = night_only

    def evaluate(self, ctx: SimulationContext) -> AutomationOutput:
        # Lamps follow *moving* presence: a sleeping resident has switched
        # the light off, so the bulb (and its sensor footprint) is idle.
        spans = ctx.room_moving_occupancy(self.room)
        if self.night_only:
            spans = intersect(normalise(spans), ctx.night_spans())
        out = AutomationOutput(
            events=_spans_to_switching(spans, self.delay_seconds, ctx.horizon)
        )
        for start, end in spans:
            for sensor_id in self.light_sensor_ids:
                out.effects.append(
                    EffectInterval(
                        sensor_id,
                        min(start + self.delay_seconds, ctx.horizon),
                        min(end + self.delay_seconds, ctx.horizon),
                        self.lux_delta,
                    )
                )
        return out


class EffectSwitchRule(AutomationRule):
    """WeMo-style switch: on while a watched sensor is pushed above base.

    Models "the switch activated a fan/humidifier based on the readings of
    the connected temperature and humidity sensors": whenever the watched
    sensor has an active positive effect (e.g. cooking heat), the switch
    turns on; optional feedback effects model the fan/humidifier's own
    influence.
    """

    def __init__(
        self,
        actuator_id: str,
        watched_sensor_id: str,
        feedback: Sequence[NumericEffect] = (),
        delay_seconds: float = 60.0,
    ) -> None:
        super().__init__(actuator_id, delay_seconds)
        self.watched_sensor_id = watched_sensor_id
        self.feedback = tuple(feedback)

    def evaluate(self, ctx: SimulationContext) -> AutomationOutput:
        intervals = ctx.numeric_effects.get(self.watched_sensor_id, [])
        spans = normalise(
            (eff.start, eff.end) for eff in intervals if eff.delta > 0
        )
        out = AutomationOutput(
            events=_spans_to_switching(spans, self.delay_seconds, ctx.horizon)
        )
        for start, end in spans:
            for effect in self.feedback:
                out.effects.append(
                    EffectInterval(
                        effect.device_id,
                        min(start + self.delay_seconds, ctx.horizon),
                        min(end + self.delay_seconds, ctx.horizon),
                        effect.delta,
                    )
                )
        return out


class DaylightBlindRule(AutomationRule):
    """Smart blind: moves at every daylight transition.

    The thesis wired the blinds to a light sensor: up when the reading is
    low, down otherwise.  Each movement is an activation event; the blind
    reports completion (an off event) shortly after.
    """

    def __init__(
        self, actuator_id: str, movement_seconds: float = 90.0, delay_seconds: float = 120.0
    ) -> None:
        super().__init__(actuator_id, delay_seconds)
        self.movement_seconds = movement_seconds

    def evaluate(self, ctx: SimulationContext) -> AutomationOutput:
        events: List[Tuple[float, float]] = []
        for start, end in ctx.daylight:
            for transition in (start, end):
                on = transition + self.delay_seconds
                if on < ctx.horizon:
                    events.append((on, 1.0))
                    off = on + self.movement_seconds
                    if off < ctx.horizon:
                        events.append((off, 0.0))
        return AutomationOutput(events=events)


class ActivityActuatorRule(AutomationRule):
    """Actuator used during a specific activity (e.g. the smart speaker
    during listening to music), with optional sensor feedback (sound)."""

    def __init__(
        self,
        actuator_id: str,
        activity_name: str,
        feedback: Sequence[NumericEffect] = (),
        delay_seconds: float = 60.0,
    ) -> None:
        super().__init__(actuator_id, delay_seconds)
        self.activity_name = activity_name
        self.feedback = tuple(feedback)

    def evaluate(self, ctx: SimulationContext) -> AutomationOutput:
        spans = normalise(
            (inst.start, inst.end)
            for inst in ctx.schedule
            if inst.name == self.activity_name
        )
        out = AutomationOutput(
            events=_spans_to_switching(spans, self.delay_seconds, ctx.horizon)
        )
        for start, end in spans:
            for effect in self.feedback:
                out.effects.append(
                    EffectInterval(
                        effect.device_id,
                        min(start + self.delay_seconds, ctx.horizon),
                        min(end + self.delay_seconds, ctx.horizon),
                        effect.delta,
                    )
                )
        return out
