"""Daylight model.

Outdoor light drives two things in the testbed: the ambient level of
outward-facing light sensors and the smart-blind automation ("pull up when
the light sensor value is low, pull down otherwise").  Sunrise and sunset
are jittered day by day so the daylight transition does not always land in
the same window of the day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .spans import Span

DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class DaylightModel:
    """Daily daylight spans with per-day jitter."""

    sunrise_minute: float = 390.0  # 06:30
    sunset_minute: float = 1170.0  # 19:30
    jitter_minutes: float = 6.0

    def __post_init__(self) -> None:
        if not 0 <= self.sunrise_minute < self.sunset_minute <= 24 * 60:
            raise ValueError("need 0 <= sunrise < sunset <= 24h")
        if self.jitter_minutes < 0:
            raise ValueError("jitter must be non-negative")

    def spans(self, horizon: float, rng: np.random.Generator) -> List[Span]:
        """Daylight spans covering ``[0, horizon)``."""
        days = int(np.ceil(horizon / DAY_SECONDS))
        spans: List[Span] = []
        for day in range(days):
            rise = self.sunrise_minute + rng.normal(0.0, self.jitter_minutes)
            sets = self.sunset_minute + rng.normal(0.0, self.jitter_minutes)
            start = day * DAY_SECONDS + rise * 60.0
            end = day * DAY_SECONDS + sets * 60.0
            start, end = min(start, end), max(start, end)
            start = max(0.0, min(start, horizon))
            end = max(0.0, min(end, horizon))
            if end > start:
                spans.append((start, end))
        return spans
