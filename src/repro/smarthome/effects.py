"""Signal synthesis: effect intervals → sensor readings.

Activities, occupancy, daylight and actuators all influence sensors through
the same abstraction — an :class:`EffectInterval` that shifts a numeric
sensor's level by a delta over a time span, or a :class:`BinaryTrigger` that
fires a binary sensor while a span is active.  The builders below turn a
bag of intervals into the actual event stream a real deployment would emit:
ramps while the physical quantity moves, confirmations on settling, silence
(or a slow held-report cadence) on a plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from .profiles import NumericProfile


@dataclass(frozen=True)
class EffectInterval:
    """An additive shift of one numeric sensor's level during ``[start, end)``."""

    device_id: str
    start: float
    end: float
    delta: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("effect must not end before it starts")


@dataclass(frozen=True)
class BinaryTrigger:
    """Firing pattern of one binary sensor during an active span.

    ``pattern`` is one of:

    * ``"continuous"`` — events every ``period`` seconds for the whole span
      (motion sensors, pressure mats);
    * ``"start"`` — a single event when the span begins (a door opening);
    * ``"end"`` — a single event when the span ends (a flush, a door
      closing);
    * ``"random"`` — per ``period`` slot, an event with ``probability``
      (restless-sleep motion, occasional cupboard use).
    """

    device_id: str
    pattern: str = "continuous"
    period: float = 25.0
    probability: float = 1.0

    _PATTERNS = ("continuous", "start", "end", "random")

    def __post_init__(self) -> None:
        if self.pattern not in self._PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


def binary_events(
    trigger: BinaryTrigger,
    start: float,
    end: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Timestamps at which *trigger* fires over the active span."""
    if end <= start and trigger.pattern not in ("start", "end"):
        return np.empty(0)
    if trigger.pattern == "start":
        return np.array([start])
    if trigger.pattern == "end":
        return np.array([end])
    times = np.arange(start, end, trigger.period)
    if trigger.pattern == "random":
        times = times[rng.random(len(times)) < trigger.probability]
    return times


class NumericSignalBuilder:
    """Accumulates effect intervals for one sensor and renders readings."""

    def __init__(self, profile: NumericProfile) -> None:
        self.profile = profile
        self._effects: List[Tuple[float, float, float]] = []

    def add(self, start: float, end: float, delta: float) -> None:
        if end < start:
            raise ValueError("effect must not end before it starts")
        snap = self.profile.snap_seconds
        if snap > 0:
            start = round(start / snap) * snap
            end = round(end / snap) * snap
            if end == start:
                end = start + snap
        if end > start and delta != 0.0:
            self._effects.append((start, end, delta))

    def add_intervals(self, intervals: Iterable[EffectInterval]) -> None:
        for interval in intervals:
            self.add(interval.start, interval.end, interval.delta)

    # ------------------------------------------------------------------ #

    def levels(self, horizon: float) -> List[Tuple[float, float]]:
        """Piecewise-constant target level as ``(time, level)`` breakpoints.

        The first breakpoint is ``(0, base)``; levels are the base plus the
        sum of all active effect deltas.
        """
        base = self.profile.base
        changes: List[Tuple[float, float]] = []
        for start, end, delta in self._effects:
            if start >= horizon:
                continue
            changes.append((max(0.0, start), delta))
            changes.append((min(end, horizon), -delta))
        changes.sort(key=lambda c: c[0])
        breakpoints: List[Tuple[float, float]] = [(0.0, base)]
        level = base
        i = 0
        while i < len(changes):
            t = changes[i][0]
            while i < len(changes) and changes[i][0] == t:
                level += changes[i][1]
                i += 1
            if t == 0.0:
                breakpoints[0] = (0.0, level)
            elif level != breakpoints[-1][1]:
                breakpoints.append((t, level))
        return breakpoints

    def render(
        self, horizon: float, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Emit ``(timestamps, readings)`` for the sensor over ``[0, horizon)``.

        Readings follow the profile: a ramp of ``sample_interval``-spaced
        samples whenever the target level changes, ``hold_reports``
        confirmations after settling, periodic held reports while away from
        base (if the profile asks for them), silence otherwise.
        """
        profile = self.profile
        breakpoints = self.levels(horizon)
        times: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for idx in range(1, len(breakpoints)):
            t_change, new_level = breakpoints[idx]
            old_level = breakpoints[idx - 1][1]
            t_next = (
                breakpoints[idx + 1][0] if idx + 1 < len(breakpoints) else horizon
            )
            seg_t, seg_v = self._render_transition(
                t_change, old_level, new_level, t_next, horizon
            )
            times.append(seg_t)
            values.append(seg_v)
        if not times:
            return np.empty(0), np.empty(0)
        t = np.concatenate(times)
        v = np.concatenate(values)
        keep = t < horizon
        t, v = t[keep], v[keep]
        if profile.noise_sigma > 0 and len(v):
            v = v + rng.normal(0.0, profile.noise_sigma, size=len(v))
        v = np.round(v / profile.quantum) * profile.quantum
        order = np.argsort(t, kind="stable")
        return t[order], v[order]

    def _render_transition(
        self,
        t_change: float,
        old_level: float,
        new_level: float,
        t_next: float,
        horizon: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        profile = self.profile
        ramp_end = t_change + profile.ramp_seconds
        ramp_t = np.arange(t_change, min(ramp_end, t_next), profile.sample_interval)
        if profile.ramp_seconds > 0:
            frac = np.clip((ramp_t - t_change) / profile.ramp_seconds, 0.0, 1.0)
        else:
            frac = np.ones_like(ramp_t)
        # Quadratic approach: physical quantities accelerate towards the new
        # level, which also gives ramp windows a deterministic skewness sign
        # (Eq. 3.2) instead of a noise-driven coin flip.
        ramp_v = old_level + (new_level - old_level) * frac**2

        hold_start = min(ramp_end, t_next)
        hold_t = hold_start + profile.sample_interval * np.arange(
            1, profile.hold_reports + 1
        )
        hold_t = hold_t[hold_t < t_next]
        hold_v = np.full(len(hold_t), new_level)

        segments_t = [ramp_t, hold_t]
        segments_v = [ramp_v, hold_v]
        if profile.held_interval > 0 and new_level != profile.base:
            held_from = hold_t[-1] if len(hold_t) else hold_start
            held_t = np.arange(
                held_from + profile.held_interval, t_next, profile.held_interval
            )
            segments_t.append(held_t)
            segments_v.append(np.full(len(held_t), new_level))
        return np.concatenate(segments_t), np.concatenate(segments_v)
