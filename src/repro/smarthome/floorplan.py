"""Floor plans: rooms, adjacency, and device placement helpers.

The POSTECH testbed floor plan (Fig. 4.1) has a kitchen, bathroom, bedroom
and living room (one beacon each) plus an entrance; the ISLA/WSU homes vary.
Floor plans matter to the simulator for two things: resolving which devices
an activity in a room touches, and (for location/beacon sensors) which
beacon the resident's phone hears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class Room:
    """A named room."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("room name must be non-empty")


class FloorPlan:
    """Rooms plus an undirected adjacency relation (doorways)."""

    def __init__(
        self,
        rooms: Iterable[str],
        doorways: Iterable[Tuple[str, str]] = (),
    ) -> None:
        self._rooms: List[Room] = [Room(name) for name in rooms]
        names = {room.name for room in self._rooms}
        if len(names) != len(self._rooms):
            raise ValueError("duplicate room names")
        self._adjacent: Dict[str, Set[str]] = {room.name: set() for room in self._rooms}
        for a, b in doorways:
            self.connect(a, b)

    @property
    def room_names(self) -> List[str]:
        return [room.name for room in self._rooms]

    def __contains__(self, name: str) -> bool:
        return name in self._adjacent

    def __len__(self) -> int:
        return len(self._rooms)

    def connect(self, a: str, b: str) -> None:
        """Add a doorway between two rooms."""
        for name in (a, b):
            if name not in self._adjacent:
                raise KeyError(f"unknown room: {name!r}")
        if a == b:
            raise ValueError("a room cannot adjoin itself")
        self._adjacent[a].add(b)
        self._adjacent[b].add(a)

    def neighbours(self, name: str) -> FrozenSet[str]:
        return frozenset(self._adjacent[name])

    def are_adjacent(self, a: str, b: str) -> bool:
        return b in self._adjacent[a]


def postech_floorplan() -> FloorPlan:
    """The Fig. 4.1 deployment: four beacon rooms plus an entrance hall."""
    return FloorPlan(
        rooms=["kitchen", "bathroom", "bedroom", "living_room", "entrance"],
        doorways=[
            ("entrance", "living_room"),
            ("living_room", "kitchen"),
            ("living_room", "bedroom"),
            ("living_room", "bathroom"),
        ],
    )


def single_floor_apartment(extra_rooms: Iterable[str] = ()) -> FloorPlan:
    """Generic apartment used for the ISLA houses (hallway-centric)."""
    rooms = ["hall", "kitchen", "bathroom", "bedroom", "living_room"]
    rooms += [r for r in extra_rooms if r not in rooms]
    doorways = [("hall", r) for r in rooms if r != "hall"]
    return FloorPlan(rooms, doorways)
