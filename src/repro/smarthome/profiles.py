"""Per-modality sensor reporting profiles.

Two properties of real IoT sensors keep DICE's context space finite, and the
simulator reproduces both:

* **event-driven reporting** — a sensor transmits when its reading changes
  meaningfully (CoAP observe / CASAS change-of-state semantics), not on a
  fixed clock.  Idle windows therefore contain no readings and encode to
  all-zero bits, instead of a coin-flip of noise bits.
* **quantisation** — readings are rounded to the sensor's resolution, so
  sub-quantum noise does not flip the trend/skew bits of Eqs. 3.2-3.3
  between windows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..model import SensorType


@dataclass(frozen=True)
class NumericProfile:
    """How one numeric sensor reports.

    Parameters
    ----------
    base:
        Quiescent level.  The sensor is silent at this level (after a few
        confirmations when returning to it).
    quantum:
        Resolution; every emitted reading is rounded to a multiple.
    noise_sigma:
        Gaussian measurement noise added before quantisation.
    ramp_seconds:
        How long the physical quantity takes to move between levels.
    sample_interval:
        Reporting period while the value is changing.
    hold_reports:
        Confirmation readings emitted after settling on a new level.
    held_interval:
        Reporting period while holding a non-base level (0 = silent while
        held; beacons and weight mats keep reporting, ambient sensors do
        not).
    snap_seconds:
        Sensor duty cycle: effect boundaries snap to this grid (polled
        sensors integrate over fixed cycles).  Keeping the whole
        ramp-and-settle burst inside one duty cycle makes each transition's
        bit pattern deterministic instead of window-phase-dependent.
    """

    base: float
    quantum: float
    noise_sigma: float
    ramp_seconds: float = 30.0
    sample_interval: float = 10.0
    hold_reports: int = 1
    held_interval: float = 0.0
    snap_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.ramp_seconds < 0:
            raise ValueError("ramp_seconds must be non-negative")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.hold_reports < 0:
            raise ValueError("hold_reports must be non-negative")
        if self.held_interval < 0:
            raise ValueError("held_interval must be non-negative")
        if self.snap_seconds < 0:
            raise ValueError("snap_seconds must be non-negative")

    def with_(self, **changes) -> "NumericProfile":
        return replace(self, **changes)


#: Default profiles per modality.  Magnitudes are everyday values: lux,
#: degrees Celsius, %RH, dB, proximity units, kg, dBm.
DEFAULT_NUMERIC_PROFILES: Dict[SensorType, NumericProfile] = {
    SensorType.LIGHT: NumericProfile(base=5.0, quantum=10.0, noise_sigma=1.0),
    SensorType.TEMPERATURE: NumericProfile(
        base=21.0, quantum=0.5, noise_sigma=0.05, ramp_seconds=30.0,
        held_interval=45.0,
    ),
    SensorType.HUMIDITY: NumericProfile(
        base=45.0, quantum=1.0, noise_sigma=0.1, ramp_seconds=30.0,
        held_interval=45.0,
    ),
    SensorType.SOUND: NumericProfile(
        base=32.0, quantum=2.0, noise_sigma=0.2, held_interval=45.0
    ),
    SensorType.ULTRASONIC: NumericProfile(
        base=10.0, quantum=5.0, noise_sigma=0.5, ramp_seconds=20.0
    ),
    SensorType.WEIGHT: NumericProfile(
        base=0.0,
        quantum=1.0,
        noise_sigma=0.1,
        ramp_seconds=20.0,
        held_interval=45.0,
    ),
    SensorType.LOCATION: NumericProfile(
        base=-90.0,
        quantum=2.0,
        noise_sigma=0.2,
        ramp_seconds=20.0,
        held_interval=45.0,
    ),
    SensorType.BATTERY: NumericProfile(
        base=100.0, quantum=1.0, noise_sigma=0.05, ramp_seconds=60.0
    ),
}


def profile_for(sensor_type: SensorType) -> NumericProfile:
    """The default reporting profile for a numeric modality."""
    try:
        return DEFAULT_NUMERIC_PROFILES[sensor_type]
    except KeyError:
        raise KeyError(f"no numeric profile for {sensor_type}") from None
