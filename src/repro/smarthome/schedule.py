"""Daily routines → concrete activity schedules.

A :class:`DailyRoutine` is an ordered template of activities with nominal
clock times.  Instantiating it for a given day applies seeded jitter to the
start times and durations and occasionally skips optional entries — days
come out similar (so groups and transitions repeat and can be learned) but
never identical (so the context model generalises rather than memorises).

This mirrors the thesis experiment design: the five volunteers replayed the
activity sequences of the third-party datasets "without any designated
place or time limit", i.e. the sequence is fixed, the timing is human.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from .activities import ActivityCatalog, ActivityInstance

DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class RoutineEntry:
    """One slot of a daily routine.

    ``start_minute`` is the nominal minute-of-day (0-1439); jitter is the
    standard deviation of the human variation around it.
    """

    activity: str
    start_minute: float
    jitter_minutes: float = 15.0
    skip_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_minute < 24 * 60:
            raise ValueError("start_minute must fall within the day")
        if self.jitter_minutes < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.skip_probability < 1.0:
            raise ValueError("skip probability must be in [0, 1)")


class DailyRoutine:
    """A resident's template day."""

    def __init__(self, entries: Sequence[RoutineEntry]) -> None:
        self.entries = list(entries)
        if not self.entries:
            raise ValueError("a routine needs at least one entry")

    @property
    def activity_names(self) -> List[str]:
        """Distinct activities the routine exercises, in first-use order."""
        seen: dict = {}
        for entry in self.entries:
            seen.setdefault(entry.activity, None)
        return list(seen)

    def instantiate_day(
        self,
        day_index: int,
        catalog: ActivityCatalog,
        rng: np.random.Generator,
        resident: int = 0,
    ) -> List[ActivityInstance]:
        """Activity instances for one day (unclipped; may overrun midnight)."""
        day_start = day_index * DAY_SECONDS
        instances: List[ActivityInstance] = []
        for entry in self.entries:
            if entry.skip_probability and rng.random() < entry.skip_probability:
                continue
            spec = catalog[entry.activity]
            # Truncated-normal jitter: humans are late or early, but the
            # *ordering* of a routine is stable.  Unbounded tails would make
            # arbitrary activity pairs adjacent once in a blue moon, which
            # no amount of training data could cover.
            offset = float(
                np.clip(
                    rng.normal(0.0, entry.jitter_minutes),
                    -2.0 * entry.jitter_minutes,
                    2.0 * entry.jitter_minutes,
                )
            )
            start_min = entry.start_minute + offset
            start = day_start + max(0.0, start_min) * 60.0
            lo, hi = spec.duration_minutes
            duration = rng.uniform(lo, hi) * 60.0
            instances.append(
                ActivityInstance(spec, start, start + duration, resident)
            )
        return instances


def build_schedule(
    routine: DailyRoutine,
    catalog: ActivityCatalog,
    horizon: float,
    rng: np.random.Generator,
    resident: int = 0,
) -> List[ActivityInstance]:
    """Instantiate *routine* for every day up to *horizon* seconds.

    A resident does one thing at a time: overlapping instances are resolved
    by clipping each activity at the start of the next one, and everything
    is clipped to the horizon.
    """
    days = int(np.ceil(horizon / DAY_SECONDS))
    raw: List[ActivityInstance] = []
    for day in range(days):
        raw.extend(routine.instantiate_day(day, catalog, rng, resident))
    raw.sort(key=lambda inst: inst.start)
    schedule: List[ActivityInstance] = []
    for i, inst in enumerate(raw):
        end = inst.end
        if i + 1 < len(raw):
            end = min(end, raw[i + 1].start)
        # Minute-granular timeline (CASAS-style annotation granularity):
        # activity boundaries land on the window grid, so a hand-over always
        # produces the same window-level footprint instead of a phase-split
        # variant that training data can never fully cover.
        start = round(inst.start / 60.0) * 60.0
        end = round(end / 60.0) * 60.0
        end = min(end, horizon)
        if end <= start:
            continue
        if start < horizon:
            schedule.append(ActivityInstance(inst.spec, start, end, resident))
    # Presence persists until the next activity begins (same resident).
    for i in range(len(schedule) - 1):
        object.__setattr__(
            schedule[i], "presence_end", schedule[i + 1].start
        )
    return schedule


def occupancy_intervals(
    schedule: Iterable[ActivityInstance],
) -> dict:
    """Merge a schedule into per-room occupancy spans.

    Returns ``{room: [(start, end), ...]}`` with overlapping spans (e.g.
    two residents in one room) merged.  Away activities contribute nothing.
    """
    by_room: dict = {}
    for inst in schedule:
        if inst.spec.away:
            continue
        by_room.setdefault(inst.room, []).append((inst.start, inst.presence_end))
    merged: dict = {}
    for room, spans in by_room.items():
        spans.sort()
        out: List[tuple] = []
        for start, end in spans:
            if out and start <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], end))
            else:
                out.append((start, end))
        merged[room] = out
    return merged
