"""The smart-home simulator: spec → seeded, reproducible event traces.

This substrate replaces the thesis's physical deployments (the POSTECH
testbed, the ISLA houses, the WSU CASAS homes).  A :class:`HomeSpec`
describes one home — devices, floor plan, activity catalog, per-resident
routines, automations, daylight — and :class:`HomeSimulator` renders any
number of hours of its life as a :class:`~repro.model.trace.Trace`:

1. instantiate every resident's daily routine (seeded jitter/skips);
2. derive room occupancy and its sensor footprint (motion events, beacon
   RSSI, ultrasonic proximity);
3. apply activity-specific device footprints (appliance switches, heat,
   humidity, sound, weight ...);
4. evaluate automation rules into actuator events and their feedback
   effects on sensors;
5. render every numeric sensor's event-driven reading stream and collect
   everything into one time-sorted trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model import DeviceKind, DeviceRegistry, SensorType, Trace
from .activities import ActivityCatalog, ActivityInstance
from .automation import AutomationRule, SimulationContext
from .daylight import DaylightModel
from .effects import EffectInterval, NumericSignalBuilder, binary_events
from .floorplan import FloorPlan
from .profiles import NumericProfile, profile_for
from .schedule import DailyRoutine, build_schedule, occupancy_intervals
from .spans import normalise


@dataclass
class HomeSpec:
    """A complete description of one simulated smart home."""

    name: str
    registry: DeviceRegistry
    floorplan: FloorPlan
    catalog: ActivityCatalog
    routines: List[DailyRoutine]
    automations: List[AutomationRule] = field(default_factory=list)
    daylight: Optional[DaylightModel] = None
    #: Light sensors that see outdoor light (get the daylight ambient level).
    ambient_light_sensor_ids: Tuple[str, ...] = ()
    ambient_lux_delta: float = 245.0
    #: Light sensors that follow the room's *manual* lamp use: the resident
    #: switches the lamp on while the room is occupied (the only light
    #: dynamics homes without smart bulbs, like hh102, exhibit).
    manual_lamp_light_sensor_ids: Tuple[str, ...] = ()
    manual_lamp_lux_delta: float = 145.0
    #: Occupancy footprint knobs.
    motion_period_seconds: float = 20.0
    beacon_delta: float = 40.0
    ultrasonic_delta: float = 120.0
    #: Probability that a numeric sensor misses one activity's effect
    #: entirely (a window was open, the pot was small, the sensor is at the
    #: far end of the room).  Zero by default: partial responses make
    #: "context minus one sensor" groups appear in training — which lets a
    #: plausibly-stuck sensor evade the correlation check, like the paper's
    #: real data — but every multi-sensor miss combination is another rare
    #: context that 300 hours of training cannot cover, so precision drops
    #: measurably at any non-zero setting.  Kept as an explicit ablation
    #: lever (see EXPERIMENTS.md, E8).
    response_miss_probability: float = 0.0
    #: Per-device overrides of the modality-default reporting profile.
    profile_overrides: Dict[str, NumericProfile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for device in self.registry:
            if device.room and device.room not in self.floorplan:
                raise ValueError(
                    f"device {device.device_id!r} placed in unknown room "
                    f"{device.room!r}"
                )
        for routine in self.routines:
            for name in routine.activity_names:
                if name not in self.catalog:
                    raise ValueError(f"routine references unknown activity {name!r}")

    def profile_of(self, device_id: str) -> NumericProfile:
        if device_id in self.profile_overrides:
            return self.profile_overrides[device_id]
        return profile_for(self.registry[device_id].sensor_type)

    def renamed(self, name: str) -> "HomeSpec":
        """A copy of this spec under a new name.

        Fleets instantiate the same house family many times over; the
        name is the only per-instance field (device ids stay per-home
        local — every home has its own registry and detector).
        """
        return replace(self, name=name)

    @property
    def num_residents(self) -> int:
        return len(self.routines)

    def activity_count(self) -> int:
        """Distinct activities exercised across all routines (Table 4.1's
        "Activities" column)."""
        names = set()
        for routine in self.routines:
            for name in routine.activity_names:
                spec = self.catalog[name]
                names.add(spec.canonical or spec.name)
        return len(names)


class HomeSimulator:
    """Renders a :class:`HomeSpec` into traces."""

    def __init__(self, spec: HomeSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------ #

    def simulate(self, horizon_seconds: float, seed: int) -> Trace:
        """One seeded run of the home over ``[0, horizon_seconds)``."""
        if horizon_seconds <= 0:
            raise ValueError("horizon must be positive")
        spec = self.spec
        rng = np.random.default_rng(seed)
        horizon = float(horizon_seconds)

        schedule = self._build_schedules(horizon, rng)
        presence = occupancy_intervals(schedule)
        moving = occupancy_intervals(
            inst for inst in schedule if not inst.spec.still
        )
        daylight = spec.daylight.spans(horizon, rng) if spec.daylight else []

        numeric_effects: Dict[str, List[EffectInterval]] = {}
        binary_times: Dict[str, List[np.ndarray]] = {}
        actuator_events: Dict[str, List[Tuple[float, float]]] = {}

        self._apply_ambient(daylight, numeric_effects)
        self._apply_occupancy(
            presence, moving, daylight, horizon, numeric_effects, binary_times
        )
        self._apply_activities(schedule, horizon, rng, numeric_effects, binary_times)
        self._apply_automations(
            horizon,
            schedule,
            presence,
            moving,
            daylight,
            numeric_effects,
            actuator_events,
        )

        return self._assemble(
            horizon, rng, numeric_effects, binary_times, actuator_events
        )

    # ------------------------------------------------------------------ #
    # Stage 1: schedules
    # ------------------------------------------------------------------ #

    def _build_schedules(
        self, horizon: float, rng: np.random.Generator
    ) -> List[ActivityInstance]:
        schedule: List[ActivityInstance] = []
        for resident, routine in enumerate(self.spec.routines):
            schedule.extend(
                build_schedule(routine, self.spec.catalog, horizon, rng, resident)
            )
        schedule.sort(key=lambda inst: inst.start)
        return schedule

    # ------------------------------------------------------------------ #
    # Stage 2: ambient daylight
    # ------------------------------------------------------------------ #

    def _apply_ambient(
        self,
        daylight: List[Tuple[float, float]],
        numeric_effects: Dict[str, List[EffectInterval]],
    ) -> None:
        spec = self.spec
        for sensor_id in spec.ambient_light_sensor_ids:
            for start, end in daylight:
                numeric_effects.setdefault(sensor_id, []).append(
                    EffectInterval(sensor_id, start, end, spec.ambient_lux_delta)
                )

    # ------------------------------------------------------------------ #
    # Stage 3: occupancy footprint
    # ------------------------------------------------------------------ #

    def _apply_occupancy(
        self,
        presence: Dict[str, List[Tuple[float, float]]],
        moving: Dict[str, List[Tuple[float, float]]],
        daylight: List[Tuple[float, float]],
        horizon: float,
        numeric_effects: Dict[str, List[EffectInterval]],
        binary_times: Dict[str, List[np.ndarray]],
    ) -> None:
        spec = self.spec
        manual_lamps = set(spec.manual_lamp_light_sensor_ids)
        for device in spec.registry:
            if not device.room:
                continue
            if (
                device.kind is DeviceKind.BINARY_SENSOR
                and device.sensor_type is SensorType.MOTION
            ):
                for start, end in moving.get(device.room, []):
                    times = np.arange(start, end, spec.motion_period_seconds)
                    if len(times):
                        binary_times.setdefault(device.device_id, []).append(times)
            elif device.kind is DeviceKind.NUMERIC_SENSOR:
                if device.sensor_type is SensorType.LOCATION:
                    spans, delta = presence.get(device.room, []), spec.beacon_delta
                elif device.sensor_type is SensorType.ULTRASONIC:
                    spans, delta = moving.get(device.room, []), spec.ultrasonic_delta
                elif device.device_id in manual_lamps:
                    spans = normalise(presence.get(device.room, []))
                    delta = spec.manual_lamp_lux_delta
                else:
                    continue
                for start, end in spans:
                    numeric_effects.setdefault(device.device_id, []).append(
                        EffectInterval(device.device_id, start, end, delta)
                    )

    # ------------------------------------------------------------------ #
    # Stage 4: activity footprints
    # ------------------------------------------------------------------ #

    def _apply_activities(
        self,
        schedule: List[ActivityInstance],
        horizon: float,
        rng: np.random.Generator,
        numeric_effects: Dict[str, List[EffectInterval]],
        binary_times: Dict[str, List[np.ndarray]],
    ) -> None:
        for inst in schedule:
            for trigger in inst.spec.binary_triggers:
                times = binary_events(trigger, inst.start, min(inst.end, horizon), rng)
                times = times[(times >= 0) & (times < horizon)]
                if len(times):
                    binary_times.setdefault(trigger.device_id, []).append(times)
            for effect in inst.spec.numeric_effects:
                if (
                    self.spec.response_miss_probability > 0.0
                    and rng.random() < self.spec.response_miss_probability
                ):
                    continue
                start, end = inst.start, min(inst.end, horizon)
                if end > start:
                    numeric_effects.setdefault(effect.device_id, []).append(
                        EffectInterval(effect.device_id, start, end, effect.delta)
                    )

    # ------------------------------------------------------------------ #
    # Stage 5: automations
    # ------------------------------------------------------------------ #

    def _apply_automations(
        self,
        horizon: float,
        schedule: List[ActivityInstance],
        presence: Dict[str, List[Tuple[float, float]]],
        moving: Dict[str, List[Tuple[float, float]]],
        daylight: List[Tuple[float, float]],
        numeric_effects: Dict[str, List[EffectInterval]],
        actuator_events: Dict[str, List[Tuple[float, float]]],
    ) -> None:
        ctx = SimulationContext(
            horizon=horizon,
            schedule=schedule,
            occupancy=presence,
            daylight=daylight,
            numeric_effects=numeric_effects,
            moving_occupancy=moving,
        )
        for rule in self.spec.automations:
            if rule.actuator_id not in self.spec.registry:
                raise ValueError(f"rule targets unknown actuator {rule.actuator_id!r}")
            output = rule.evaluate(ctx)
            actuator_events.setdefault(rule.actuator_id, []).extend(output.events)
            for effect in output.effects:
                numeric_effects.setdefault(effect.device_id, []).append(effect)

    # ------------------------------------------------------------------ #
    # Stage 6: rendering
    # ------------------------------------------------------------------ #

    def _assemble(
        self,
        horizon: float,
        rng: np.random.Generator,
        numeric_effects: Dict[str, List[EffectInterval]],
        binary_times: Dict[str, List[np.ndarray]],
        actuator_events: Dict[str, List[Tuple[float, float]]],
    ) -> Trace:
        spec = self.spec
        all_t: List[np.ndarray] = []
        all_d: List[np.ndarray] = []
        all_v: List[np.ndarray] = []

        for device in spec.registry.numeric_sensors():
            builder = NumericSignalBuilder(spec.profile_of(device.device_id))
            for effect in numeric_effects.get(device.device_id, []):
                start = max(0.0, effect.start)
                end = min(horizon, effect.end)
                if end > start:
                    builder.add(start, end, effect.delta)
            t, v = builder.render(horizon, rng)
            if len(t):
                all_t.append(t)
                all_d.append(
                    np.full(len(t), spec.registry.index_of(device.device_id), np.int32)
                )
                all_v.append(v)

        for device_id, chunks in binary_times.items():
            times = np.concatenate(chunks)
            if len(times):
                all_t.append(times)
                all_d.append(
                    np.full(len(times), spec.registry.index_of(device_id), np.int32)
                )
                all_v.append(np.ones(len(times)))

        for device_id, events in actuator_events.items():
            if events:
                t = np.array([e[0] for e in events])
                v = np.array([e[1] for e in events])
                keep = (t >= 0) & (t < horizon)
                all_t.append(t[keep])
                all_d.append(
                    np.full(int(keep.sum()), spec.registry.index_of(device_id), np.int32)
                )
                all_v.append(v[keep])

        if not all_t:
            return Trace.empty(spec.registry, 0.0, horizon)
        return Trace(
            spec.registry,
            np.concatenate(all_t),
            np.concatenate(all_d),
            np.concatenate(all_v),
            start=0.0,
            end=horizon,
        )
