"""Interval (span) arithmetic on ``(start, end)`` pairs in seconds.

Shared by the scheduler (occupancy), the daylight model and the automation
rules.  All functions treat spans as half-open ``[start, end)`` and expect /
produce sorted, non-overlapping lists.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Span = Tuple[float, float]


def normalise(spans: Iterable[Span]) -> List[Span]:
    """Sort and merge overlapping or touching spans; drops empty ones."""
    cleaned = sorted((s, e) for s, e in spans if e > s)
    merged: List[Span] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def intersect(a: Sequence[Span], b: Sequence[Span]) -> List[Span]:
    """Intersection of two normalised span lists."""
    out: List[Span] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def complement(spans: Sequence[Span], start: float, end: float) -> List[Span]:
    """The gaps of *spans* within ``[start, end)``."""
    out: List[Span] = []
    cursor = start
    for s, e in normalise(spans):
        if s > cursor:
            out.append((cursor, min(s, end)))
        cursor = max(cursor, e)
        if cursor >= end:
            break
    if cursor < end:
        out.append((cursor, end))
    return [(s, e) for s, e in out if e > s and s < end]


def union(a: Sequence[Span], b: Sequence[Span]) -> List[Span]:
    """Union of two span lists."""
    return normalise(list(a) + list(b))


def total_length(spans: Iterable[Span]) -> float:
    """Summed length of (assumed non-overlapping) spans."""
    return sum(e - s for s, e in spans)


def contains(spans: Sequence[Span], t: float) -> bool:
    """Whether instant *t* falls inside any span."""
    return any(s <= t < e for s, e in spans)


def shift(spans: Iterable[Span], delta: float) -> List[Span]:
    """Every span moved by *delta* seconds."""
    return [(s + delta, e + delta) for s, e in spans]


def clip(spans: Iterable[Span], start: float, end: float) -> List[Span]:
    """Spans restricted to ``[start, end)``."""
    out = []
    for s, e in spans:
        s2, e2 = max(s, start), min(e, end)
        if e2 > s2:
            out.append((s2, e2))
    return out
