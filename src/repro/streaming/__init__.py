"""Online, event-at-a-time DICE runtime (the gateway deployment)."""

from .runtime import Alert, OnlineDice
from .windower import OnlineWindower, WindowSnapshot

__all__ = ["Alert", "OnlineDice", "OnlineWindower", "WindowSnapshot"]
