"""Online, event-at-a-time DICE runtime (the gateway deployment)."""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    checkpoint_state,
    load_checkpoint,
    model_fingerprint,
    restore_from_file,
    restore_runtime,
    save_checkpoint,
)
from .guard import (
    ALL_DROP_REASONS,
    BEFORE_START,
    DUPLICATE,
    EMPTY_DEVICE_ID,
    NON_FINITE_TIMESTAMP,
    NON_FINITE_VALUE,
    TOO_LATE,
    UNKNOWN_DEVICE,
    DropLog,
    DroppedEvent,
    IngestGuard,
)
from .reorder import ReorderBuffer
from .runtime import (
    DEVICE_ERRORS,
    DEVICE_RECOVERED,
    DEVICE_SILENCE,
    Alert,
    HardenedOnlineDice,
    OnlineDice,
)
from .supervisor import (
    DeviceHealth,
    DeviceStatus,
    DeviceSupervisor,
    HealthTransition,
    SupervisorPolicy,
)
from .windower import OnlineWindower, WindowSnapshot

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "checkpoint_state",
    "load_checkpoint",
    "model_fingerprint",
    "restore_from_file",
    "restore_runtime",
    "save_checkpoint",
    "ALL_DROP_REASONS",
    "BEFORE_START",
    "DUPLICATE",
    "EMPTY_DEVICE_ID",
    "NON_FINITE_TIMESTAMP",
    "NON_FINITE_VALUE",
    "TOO_LATE",
    "UNKNOWN_DEVICE",
    "DropLog",
    "DroppedEvent",
    "IngestGuard",
    "ReorderBuffer",
    "DEVICE_ERRORS",
    "DEVICE_RECOVERED",
    "DEVICE_SILENCE",
    "Alert",
    "HardenedOnlineDice",
    "OnlineDice",
    "DeviceHealth",
    "DeviceStatus",
    "DeviceSupervisor",
    "HealthTransition",
    "SupervisorPolicy",
    "OnlineWindower",
    "WindowSnapshot",
]
