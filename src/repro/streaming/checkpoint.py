"""Versioned checkpoint/restore for the hardened gateway runtime.

A gateway can lose power mid-window.  A checkpoint captures *everything*
the online path accumulates between events — the windower's in-flight
accumulators, the detector-side group/anchor/session state, the reorder
buffer's pending events, and the supervisor's health counters — as plain
JSON, so that::

    restore(checkpoint(mid-stream)) + replay(tail)  ==  uninterrupted replay

holds exactly (the test suite checks byte-identical alert sequences).
Floats survive the round-trip losslessly because ``json`` serializes them
via ``repr``, which is shortest-round-trip in Python 3.

The snapshot does **not** include the fitted detector model (fit artefacts
are large and immutable; persist them separately) nor the alert history
(alerts already raised have been delivered).  ``model_fingerprint`` guards
against restoring state onto a different model.
"""

from __future__ import annotations

import json
import os
from typing import Union

from .. import telemetry
from ..core import DetectorBackend, DiceDetector, as_backend

_log = telemetry.get_logger("repro.streaming.checkpoint")

#: Version 2 added the ``telemetry`` counters payload; version 3 added the
#: context-refresh state (``runtime["refresh"]``); version 4 added the
#: alert-provenance recorder state (``runtime["provenance"]``); version 5
#: added the ``backend`` name stamp (absent means ``dice``).  Older
#: snapshots load fine — counters restart from zero, refresh state resets
#: to idle, the provenance ring starts empty with ``seq`` 0.
CHECKPOINT_VERSION = 5
COMPATIBLE_VERSIONS = frozenset({1, 2, 3, 4, 5})


class CheckpointError(ValueError):
    """A snapshot is malformed, from a different version, from a different
    fitted model, or from a different detector backend."""


def model_fingerprint(detector: Union[DiceDetector, DetectorBackend]) -> dict:
    """Cheap invariants of the fitted model a snapshot must match."""
    return as_backend(detector).fingerprint()


def checkpoint_state(runtime) -> dict:
    """The full versioned snapshot for a :class:`HardenedOnlineDice`.

    Includes the telemetry *counter* families (monotone totals survive a
    gateway restart); gauges and histograms are point-in-time/process-local
    and restart from zero.
    """
    # The *base* fingerprint (captured at construction, before any context
    # refresh added groups): restore fits the model fresh and re-applies
    # the carried refresh history, so the snapshot must match the
    # pre-refresh model, not the refreshed one.
    fingerprint = getattr(runtime, "base_fingerprint", None)
    if fingerprint is None:
        fingerprint = runtime.backend.fingerprint()
    state = {
        "version": CHECKPOINT_VERSION,
        "backend": runtime.backend.name,
        "model": fingerprint,
        "runtime": runtime.state_dict(),
    }
    metrics = getattr(runtime, "metrics", None)
    if metrics is not None and metrics.enabled:
        state["telemetry"] = metrics.counters_snapshot()
    return state


def restore_runtime(
    detector: Union[DiceDetector, DetectorBackend], state: dict, **runtime_kwargs
):
    """Rebuild a :class:`HardenedOnlineDice` from a snapshot.

    ``runtime_kwargs`` pass through to the :class:`HardenedOnlineDice`
    constructor.  The snapshot itself restores the reorder buffer's
    lateness/capacity, but the supervisor *policy* is not serialized —
    a caller that ran with a non-default policy must supply it again here
    (the CLI's resume path does).
    """
    from .runtime import HardenedOnlineDice

    if not isinstance(state, dict) or "version" not in state:
        raise CheckpointError("not a checkpoint snapshot")
    if state["version"] not in COMPATIBLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint version {state['version']} not in "
            f"{sorted(COMPATIBLE_VERSIONS)}"
        )
    backend = as_backend(detector)
    recorded = state.get("backend", "dice")
    if recorded != backend.name:
        raise CheckpointError(
            f"checkpoint was written by backend {recorded!r} but restore "
            f"targets backend {backend.name!r}"
        )
    expected = backend.fingerprint()
    if state.get("model") != expected:
        raise CheckpointError(
            f"checkpoint was taken against a different model: "
            f"{state.get('model')} != {expected}"
        )
    runtime = HardenedOnlineDice(backend, **runtime_kwargs)
    runtime.load_state(state["runtime"])
    telemetry_state = state.get("telemetry")
    if telemetry_state is not None:
        runtime.metrics.restore_counters(telemetry_state)
    return runtime


def write_json_atomic(state: dict, path: Union[str, os.PathLike]) -> None:
    """Write *state* as JSON via write-then-rename, so a crash mid-save
    leaves the previous file intact."""
    payload = json.dumps(state, indent=2, sort_keys=True)
    tmp = f"{os.fspath(path)}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.replace(tmp, path)
    _log.info("checkpoint_saved", path=os.fspath(path), bytes=len(payload))


def save_checkpoint(runtime, path: Union[str, os.PathLike]) -> None:
    """Atomically write the snapshot as JSON."""
    write_json_atomic(checkpoint_state(runtime), path)


def load_checkpoint(path: Union[str, os.PathLike]) -> dict:
    """Read a snapshot file.

    A missing, unreadable, truncated or non-JSON file raises
    :class:`CheckpointError` naming the offending path — callers (and the
    CLI) get one actionable line instead of a raw ``JSONDecodeError``
    traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {os.fspath(path)}: {exc}"
        ) from exc
    except ValueError as exc:  # json.JSONDecodeError: corrupt or truncated
        raise CheckpointError(
            f"corrupt checkpoint {os.fspath(path)}: {exc}"
        ) from exc


def restore_from_file(
    detector: Union[DiceDetector, DetectorBackend],
    path: Union[str, os.PathLike],
    **runtime_kwargs,
):
    """``restore_runtime(load_checkpoint(path))`` convenience."""
    return restore_runtime(detector, load_checkpoint(path), **runtime_kwargs)
