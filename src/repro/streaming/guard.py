"""Ingest validation for the hardened gateway runtime.

A real gateway pipe delivers more than well-formed telemetry: NaN payloads
from flaky firmware, empty device ids from truncated frames, readings from
devices that were never commissioned, and timestamps from before the stream
even started.  The :class:`IngestGuard` checks every arriving event against
those failure modes *before* it can touch any windowing state, and turns
each reject into a structured :class:`DroppedEvent` record instead of an
exception mid-stream.  All drops — the guard's own and those of the reorder
buffer downstream — accumulate in one shared :class:`DropLog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import telemetry
from ..model import DeviceRegistry, Event

#: Counter family every drop reports into, labelled by reason.
DROPPED_TOTAL = "dice_ingest_dropped_total"

_log = telemetry.get_logger("repro.streaming.guard")

#: Drop reasons stamped by the ingest guard.
EMPTY_DEVICE_ID = "empty_device_id"
NON_FINITE_TIMESTAMP = "non_finite_timestamp"
NON_FINITE_VALUE = "non_finite_value"
UNKNOWN_DEVICE = "unknown_device"
BEFORE_START = "before_start"
#: Drop reasons stamped by the reorder buffer (kept here so every reason
#: string lives in one module).
TOO_LATE = "too_late"
DUPLICATE = "duplicate"
#: Drop reason stamped by the ingest service when admission control sheds
#: an event because the global queue is full (the client re-sends it after
#: reconnecting, so an ``overload`` drop is deferred work, not data loss).
OVERLOAD = "overload"

#: Every reason a DroppedEvent may carry, in reporting order.
ALL_DROP_REASONS = (
    EMPTY_DEVICE_ID,
    NON_FINITE_TIMESTAMP,
    NON_FINITE_VALUE,
    UNKNOWN_DEVICE,
    BEFORE_START,
    TOO_LATE,
    DUPLICATE,
    OVERLOAD,
)


@dataclass(frozen=True)
class DroppedEvent:
    """One rejected event, preserved for post-mortems.

    The raw fields are copied out of the event (rather than holding the
    event itself) so the record stays JSON-serializable even when the value
    is NaN/inf — those serialize as strings via :meth:`to_json_dict`.
    """

    timestamp: float
    device_id: str
    value: float
    reason: str

    def to_json_dict(self) -> dict:
        return {
            "timestamp": _float_to_json(self.timestamp),
            "device_id": self.device_id,
            "value": _float_to_json(self.value),
            "reason": self.reason,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "DroppedEvent":
        return cls(
            _float_from_json(data["timestamp"]),
            data["device_id"],
            _float_from_json(data["value"]),
            data["reason"],
        )


def _float_to_json(x: float):
    """JSON has no NaN/inf literals; render them as strings."""
    if x != x or x in (float("inf"), float("-inf")):
        return repr(x)
    return x


def _float_from_json(x) -> float:
    return float(x)


class DropLog:
    """Counters plus a bounded sample of dropped events.

    Per-reason counts are exact; only the first ``max_samples`` full records
    are kept so a firehose of rejects cannot exhaust gateway memory.
    """

    def __init__(
        self,
        max_samples: int = 100,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        self.max_samples = int(max_samples)
        self.counts: Dict[str, int] = {}
        self.samples: List[DroppedEvent] = []
        registry = telemetry.NULL_REGISTRY if metrics is None else metrics
        counter = registry.counter(
            DROPPED_TOTAL, "Events rejected at ingest, by reason", labelnames=("reason",)
        )
        # Pre-resolve (and thereby pre-seed at 0) one series per reason so
        # exports always show the full reason vocabulary, and the hot
        # ``record`` path is a dict lookup away from its series.
        self._series = {r: counter.labels(reason=r) for r in ALL_DROP_REASONS}

    def record(self, dropped: DroppedEvent) -> DroppedEvent:
        self.counts[dropped.reason] = self.counts.get(dropped.reason, 0) + 1
        if len(self.samples) < self.max_samples:
            self.samples.append(dropped)
        series = self._series.get(dropped.reason)
        if series is not None:
            series.inc()
        # A runaway device can drop every event it emits — throttle the
        # per-drop record; suppressed repeats surface as suppressed=N.
        _log.throttled(
            "debug",
            "event_dropped",
            5.0,
            reason=dropped.reason,
            device=dropped.device_id,
            timestamp=dropped.timestamp,
        )
        return dropped

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, reason: str) -> int:
        return self.counts.get(reason, 0)

    def summary(self) -> Dict[str, int]:
        """Per-reason counts in stable reporting order (non-zero only)."""
        return {r: self.counts[r] for r in ALL_DROP_REASONS if r in self.counts}

    # -- checkpoint support ---------------------------------------------- #

    def state_dict(self) -> dict:
        return {
            "max_samples": self.max_samples,
            "counts": dict(self.counts),
            "samples": [d.to_json_dict() for d in self.samples],
        }

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> "DropLog":
        log = cls(max_samples=state["max_samples"], metrics=metrics)
        log.counts = {str(k): int(v) for k, v in state["counts"].items()}
        log.samples = [DroppedEvent.from_json_dict(d) for d in state["samples"]]
        return log


class IngestGuard:
    """Validates events at the gateway's front door.

    Checks, in order: well-formedness (finite timestamp/value, non-empty
    device id — :meth:`Event.invalid_reason`), a registered device id, and a
    timestamp not before the stream's start.  ``check`` reports the verdict
    without side effects; ``admit`` also records any drop in the shared log.
    """

    def __init__(
        self,
        registry: DeviceRegistry,
        log: Optional[DropLog] = None,
        start: float = float("-inf"),
    ) -> None:
        self.registry = registry
        self.log = log if log is not None else DropLog()
        self.start = float(start)

    def check(self, event: Event) -> Optional[DroppedEvent]:
        """``None`` when the event is admissible, else the drop record."""
        reason = event.invalid_reason()
        if reason is None and event.device_id not in self.registry:
            reason = UNKNOWN_DEVICE
        if reason is None and event.timestamp < self.start:
            reason = BEFORE_START
        if reason is None:
            return None
        return DroppedEvent(event.timestamp, event.device_id, event.value, reason)

    def admit(self, event: Event) -> Optional[DroppedEvent]:
        """Like :meth:`check`, but records the drop in the log."""
        dropped = self.check(event)
        if dropped is not None:
            self.log.record(dropped)
        return dropped
