"""Online context refresh: graceful degradation under concept drift.

DICE's precomputed context (group registry + transition matrices) assumes
a stationary home.  When the home drifts — a seasonal routine change, a
replaced device — every live window stops matching the learned groups and
the detector raises correlation violations *forever*: the fault never
clears because there is no fault, the context is simply stale.

:class:`ContextRefresher` gives :class:`~repro.streaming.runtime.HardenedOnlineDice`
an adaptation path, deliberately staged so a genuine fault cannot retrain
the detector around itself:

1. **Monitor** — a sliding window of recent correlation-check outcomes.
   Faults produce violations too, but fault violations either stop (the
   device is quarantined, the session concludes) or stay below the
   sustained-rate threshold; drift pushes the violation *rate* above
   ``violation_threshold`` for a whole observation window.
2. **Declare** — once the sustained rate trips, the refresher starts
   *collecting*: the next ``collect_windows`` completed windows' state-set
   masks and actuator activations are recorded verbatim.  Detection keeps
   running unchanged while collecting — alerts are degraded, not
   suppressed.
3. **Re-fit** — the collected windows are folded into the live model:
   masks are interned into the group registry (new groups appear, known
   groups gain observation count) and a transition model extracted from
   the collected sequence is merged into the fitted matrices.  The
   correlation memo invalidates itself via ``GroupRegistry.version``; the
   transition checker's ``min_group_observations`` gate keeps the freshly
   learned groups out of violation *evidence* until they recur enough to
   be trusted.
4. **Cool down** — no new declaration for ``cooldown_windows`` windows, so
   one drift episode triggers one refresh, not a refresh per window.

Every applied batch is kept (masks + activations, JSON-serializable) so a
checkpoint can carry the refresh history: restore re-applies the batches
to a freshly fitted detector in order, which reproduces the exact same
group ids and transition counts — alert-stream parity holds across a
crash even when the context was refreshed mid-stream.

Telemetry: ``dice_context_refresh_total`` counts ``declared``/``applied``
stage events; ``dice_context_refresh_groups_total`` counts groups added.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, FrozenSet, List, Optional, Tuple

from .. import telemetry
from ..core import DiceDetector
from ..core.transitions import TransitionModel

#: Counter of refresh lifecycle events, labelled by stage.
REFRESH_TOTAL = "dice_context_refresh_total"
#: Counter of groups added to the registry by refreshes.
REFRESH_GROUPS_TOTAL = "dice_context_refresh_groups_total"

_log = telemetry.get_logger("repro.streaming.refresh")

_IDLE = "idle"
_COLLECTING = "collecting"
_COOLDOWN = "cooldown"


@dataclass(frozen=True)
class RefreshPolicy:
    """Knobs for drift detection and staged re-fit.

    Disabled by default: refresh mutates the fitted model, so a runtime
    must opt in explicitly (the scenario matrix compares both stances).
    """

    enabled: bool = False
    #: Sliding observation window, in completed windows.
    violation_window: int = 20
    #: Fraction of the observation window that must be correlation
    #: violations before drift is declared.
    violation_threshold: float = 0.6
    #: Completed windows collected after a declaration before the re-fit.
    collect_windows: int = 30
    #: Windows after an applied refresh during which no new drift may be
    #: declared.
    cooldown_windows: int = 60

    def __post_init__(self) -> None:
        if self.violation_window < 1:
            raise ValueError("violation_window must be at least 1")
        if not 0.0 < self.violation_threshold <= 1.0:
            raise ValueError("violation_threshold must be in (0, 1]")
        if self.collect_windows < 2:
            raise ValueError("collect_windows must be at least 2")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be non-negative")


#: One collected window: (state-set mask, sorted actuator activations).
_CollectedWindow = Tuple[int, Tuple[str, ...]]


class ContextRefresher:
    """Drift monitor + staged re-fit for one runtime's detector."""

    def __init__(
        self,
        detector: DiceDetector,
        policy: RefreshPolicy,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        if detector.model is None:
            raise ValueError("detector must be fitted")
        self.detector = detector
        self.policy = policy
        self._phase = _IDLE
        self._recent: Deque[int] = deque(maxlen=policy.violation_window)
        self._collected: List[_CollectedWindow] = []
        self._cooldown_left = 0
        #: Applied batches, oldest first — the checkpoint-carried history.
        self.applied_batches: List[List[_CollectedWindow]] = []
        self.declared_total = 0
        self.applied_total = 0
        self.groups_added_total = 0
        registry = telemetry.NULL_REGISTRY if metrics is None else metrics
        stage_counter = registry.counter(
            REFRESH_TOTAL,
            "Context-refresh lifecycle events, by stage",
            labelnames=("stage",),
        )
        self._declared_series = stage_counter.labels(stage="declared")
        self._applied_series = stage_counter.labels(stage="applied")
        self._groups_counter = registry.counter(
            REFRESH_GROUPS_TOTAL, "Groups added to the registry by refreshes"
        )

    # ------------------------------------------------------------------ #

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def collecting(self) -> bool:
        return self._phase == _COLLECTING

    def observe(
        self,
        mask: int,
        actuator_activations: FrozenSet[str],
        is_violation: bool,
        time: float,
    ) -> Optional[str]:
        """Feed one completed window's outcome.

        Returns ``"declared"`` when drift is declared, ``"applied"`` when
        a collected refresh is folded into the model, else ``None``.
        """
        if not self.policy.enabled:
            return None
        if self._phase == _COLLECTING:
            self._collected.append((mask, tuple(sorted(actuator_activations))))
            if len(self._collected) >= self.policy.collect_windows:
                self._apply(self._collected, time)
                return "applied"
            return None
        if self._phase == _COOLDOWN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self._phase = _IDLE
                self._recent.clear()
            return None
        self._recent.append(1 if is_violation else 0)
        window = self.policy.violation_window
        if (
            len(self._recent) >= window
            and sum(self._recent) >= self.policy.violation_threshold * window
        ):
            self._phase = _COLLECTING
            self._collected = []
            self.declared_total += 1
            self._declared_series.inc()
            _log.warning(
                "context_drift_declared",
                time=time,
                violation_rate=sum(self._recent) / len(self._recent),
                window=window,
            )
            return "declared"
        return None

    # ------------------------------------------------------------------ #

    def _apply(
        self, batch: List[_CollectedWindow], time: float, count: bool = True
    ) -> None:
        """Fold one collected batch into the live model (idempotent given
        the same detector state and batch order — restore relies on it)."""
        # Copy-on-write: a detector pointing at an interned shared context
        # must fork a private copy before the first mutation — the shared
        # registry is frozen and referenced by every other holder.
        if self.detector.fork_context():
            _log.info("context_refresh_forked_shared_context")
        model = self.detector.model
        groups = model.groups
        before = len(groups)
        sequence = [groups.add(mask) for mask, _acts in batch]
        activations = [frozenset(acts) for _mask, acts in batch]
        model.transitions.merge(TransitionModel.extract(sequence, activations))
        added = len(groups) - before
        self.applied_batches.append(list(batch))
        self._collected = []
        self._phase = _COOLDOWN
        self._cooldown_left = self.policy.cooldown_windows
        self._recent.clear()
        if count:
            self.applied_total += 1
            self.groups_added_total += added
            self._applied_series.inc()
            if added:
                self._groups_counter.inc(added)
        _log.warning(
            "context_refresh_applied",
            time=time,
            windows=len(batch),
            groups_added=added,
            groups_total=len(groups),
        )

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-serializable refresh state, including applied history."""

        def encode(batch: List[_CollectedWindow]) -> list:
            return [[mask, list(acts)] for mask, acts in batch]

        return {
            "phase": self._phase,
            "recent": list(self._recent),
            "collected": encode(self._collected),
            "cooldown_left": self._cooldown_left,
            "applied_batches": [encode(b) for b in self.applied_batches],
            "declared_total": self.declared_total,
            "applied_total": self.applied_total,
            "groups_added_total": self.groups_added_total,
        }

    def load_state(self, state: Optional[dict]) -> None:
        """Restore from :meth:`state_dict`, re-applying history.

        The detector handed to a restore is freshly fitted (checkpoints
        never carry the model); re-applying the recorded batches in order
        reproduces the same interned group ids and merged transition
        counts as the original run.  ``None`` (a pre-refresh checkpoint)
        resets to idle.  Telemetry counters are restored separately via
        the checkpoint's counters snapshot, so re-apply does not count.
        """
        self._phase = _IDLE
        self._recent.clear()
        self._collected = []
        self._cooldown_left = 0
        self.applied_batches = []
        self.declared_total = 0
        self.applied_total = 0
        self.groups_added_total = 0
        if state is None:
            return

        def decode(batch: list) -> List[_CollectedWindow]:
            return [(int(mask), tuple(acts)) for mask, acts in batch]

        for batch in state["applied_batches"]:
            self._apply(decode(batch), time=float("nan"), count=False)
        self.applied_batches = [decode(b) for b in state["applied_batches"]]
        self._phase = str(state["phase"])
        self._recent = deque(
            (int(v) for v in state["recent"]),
            maxlen=self.policy.violation_window,
        )
        self._collected = decode(state["collected"])
        self._cooldown_left = int(state["cooldown_left"])
        self.declared_total = int(state["declared_total"])
        self.applied_total = int(state["applied_total"])
        self.groups_added_total = int(state["groups_added_total"])

    def stats(self) -> dict:
        """Point-in-time refresh accounting for health/report surfaces."""
        return {
            "enabled": self.policy.enabled,
            "phase": self._phase,
            "declared": self.declared_total,
            "applied": self.applied_total,
            "groups_added": self.groups_added_total,
        }


class NullRefresher:
    """Refresh stand-in for backends without a refreshable DICE context.

    Context refresh folds collected windows back into a fitted
    :class:`~repro.core.detector.DiceDetector` model; backends that do not
    carry one (Markov chains, ensembles) get this permanently-disabled
    object so the hardened runtime's refresh surface (health stats,
    checkpoint state) keeps a uniform shape.
    """

    detector = None
    policy = RefreshPolicy()
    phase = _IDLE
    collecting = False
    declared_total = 0
    applied_total = 0
    groups_added_total = 0

    def observe(
        self,
        mask: int,
        actuator_activations: FrozenSet[str],
        is_violation: bool,
        time: float,
    ) -> Optional[str]:
        return None

    def state_dict(self) -> None:
        return None

    def load_state(self, state: Optional[dict]) -> None:
        if state:
            raise ValueError(
                "checkpoint carries refresh history but this backend "
                "has no refreshable context"
            )

    def stats(self) -> dict:
        return {
            "enabled": False,
            "phase": _IDLE,
            "declared": 0,
            "applied": 0,
            "groups_added": 0,
        }
