"""Bounded reorder buffer with watermark semantics.

Gateway pipes deliver telemetry late and out of order: a Zigbee retry, a
congested uplink, a device flushing a backlog after a brief radio outage.
The :class:`ReorderBuffer` absorbs that within a configurable *lateness
budget*: events are held in a min-heap and released in timestamp order once
the **watermark** — the highest timestamp seen minus the budget — passes
them, so anything that arrives within the budget is re-sorted into its
correct window.  Events behind the watermark are counted-and-dropped
(``too_late``) rather than raising mid-stream, and exact duplicates still
pending in the buffer are dropped as ``duplicate`` — re-delivered frames
would otherwise skew numeric window statistics.

The buffer is bounded (``max_pending``): on overflow the oldest pending
event is force-released and the watermark advances to its timestamp, which
keeps memory flat under a pathological pipe at the cost of shrinking the
effective budget while the burst lasts.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..model import Event
from .guard import DUPLICATE, TOO_LATE, DropLog, DroppedEvent

#: Counter of overflow force-releases (budget-shrinking events).
FORCE_RELEASED_TOTAL = "dice_reorder_force_released_total"

_NEG_INF = float("-inf")

_log = telemetry.get_logger("repro.streaming.reorder")


class ReorderBuffer:
    """Re-sorts events that arrive within ``lateness_seconds`` of the front."""

    def __init__(
        self,
        lateness_seconds: float,
        max_pending: int = 4096,
        log: Optional[DropLog] = None,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        if lateness_seconds < 0:
            raise ValueError("lateness_seconds must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.lateness_seconds = float(lateness_seconds)
        self.max_pending = int(max_pending)
        self.log = log if log is not None else DropLog()
        self._heap: List[Event] = []
        self._pending_keys: Dict[Tuple[float, str, float], int] = {}
        self._watermark = _NEG_INF
        self._newest = _NEG_INF
        self.force_released = 0
        registry = telemetry.NULL_REGISTRY if metrics is None else metrics
        self._force_counter = registry.counter(
            FORCE_RELEASED_TOTAL,
            "Events released early because the reorder buffer overflowed",
        )

    # ------------------------------------------------------------------ #

    @property
    def watermark(self) -> float:
        """No event at or before this time will be released in the future."""
        return self._watermark

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def watermark_lag(self) -> float:
        """Seconds between the newest timestamp seen and the watermark —
        how far behind real time released windows currently run.  ``0.0``
        before any event arrives."""
        if self._newest == _NEG_INF:
            return 0.0
        return max(0.0, self._newest - self._watermark)

    def push(self, event: Event) -> List[Event]:
        """Buffer one event; returns events newly released in time order."""
        if event.timestamp < self._watermark:
            self.log.record(
                DroppedEvent(event.timestamp, event.device_id, event.value, TOO_LATE)
            )
            return []
        key = (event.timestamp, event.device_id, event.value)
        if self._pending_keys.get(key, 0):
            self.log.record(
                DroppedEvent(event.timestamp, event.device_id, event.value, DUPLICATE)
            )
            return []
        heapq.heappush(self._heap, event)
        self._pending_keys[key] = self._pending_keys.get(key, 0) + 1
        if event.timestamp > self._newest:
            self._newest = event.timestamp
        released = self._release(event.timestamp - self.lateness_seconds)
        while len(self._heap) > self.max_pending:
            forced = self._pop_front()
            released.append(forced)
            self.force_released += 1
            self._force_counter.inc()
            # A flood over capacity force-releases per event — throttle the
            # warning so the log survives; suppressed repeats are counted.
            _log.throttled(
                "warning",
                "force_release",
                5.0,
                timestamp=forced.timestamp,
                device=forced.device_id,
                pending=len(self._heap),
                watermark=self._watermark,
            )
        return released

    def advance_to(self, timestamp: float) -> List[Event]:
        """Account for wall-clock reaching *timestamp* with no new events:
        releases everything at or before ``timestamp - lateness``."""
        return self._release(timestamp - self.lateness_seconds)

    def flush(self) -> List[Event]:
        """End-of-stream: release every pending event in time order."""
        released: List[Event] = []
        while self._heap:
            released.append(self._pop_front())
        return released

    # ------------------------------------------------------------------ #

    def _release(self, watermark: float) -> List[Event]:
        if watermark > self._watermark:
            self._watermark = watermark
        released: List[Event] = []
        while self._heap and self._heap[0].timestamp <= self._watermark:
            released.append(self._pop_front())
        return released

    def _pop_front(self) -> Event:
        event = heapq.heappop(self._heap)
        key = (event.timestamp, event.device_id, event.value)
        count = self._pending_keys[key]
        if count <= 1:
            del self._pending_keys[key]
        else:  # pragma: no cover - duplicates never coexist in the heap
            self._pending_keys[key] = count - 1
        # A force-released event (overflow) drags the watermark with it so
        # later arrivals older than it are correctly counted as too late.
        if event.timestamp > self._watermark:
            self._watermark = event.timestamp
        return event

    # -- checkpoint support ---------------------------------------------- #

    def state_dict(self) -> dict:
        pending = sorted(self._heap)
        return {
            "lateness_seconds": self.lateness_seconds,
            "max_pending": self.max_pending,
            "watermark": None if self._watermark == _NEG_INF else self._watermark,
            "pending": [[e.timestamp, e.device_id, e.value] for e in pending],
        }

    def load_state(self, state: dict) -> None:
        self.lateness_seconds = float(state["lateness_seconds"])
        self.max_pending = int(state["max_pending"])
        wm = state["watermark"]
        self._watermark = _NEG_INF if wm is None else float(wm)
        self._heap = [Event(float(t), str(d), float(v)) for t, d, v in state["pending"]]
        self._newest = max(
            [self._watermark] + [e.timestamp for e in self._heap]
        )
        heapq.heapify(self._heap)
        self._pending_keys = {}
        for e in self._heap:
            key = (e.timestamp, e.device_id, e.value)
            self._pending_keys[key] = self._pending_keys.get(key, 0) + 1
