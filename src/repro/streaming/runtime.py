"""The online DICE runtime: what actually runs on the home gateway.

:class:`OnlineDice` wraps a fitted :class:`~repro.core.DiceDetector` with
the event-at-a-time windower and exposes a push API; alerts (detections
and concluded identifications) come back from every ``push`` call as they
happen, with the same semantics as the batch ``process`` path — a property
the test suite checks by replaying traces through both.

:class:`HardenedOnlineDice` is the production-grade variant: it fronts the
same detector with an ingest guard (malformed events become structured
drop records instead of exceptions), a bounded reorder buffer (late events
within the lateness budget are re-sorted into their window), a device
supervisor (silent or error-spewing devices are quarantined and masked out
of the correlation check), and versioned checkpoint/restore so a gateway
can crash mid-window and resume deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..core import (
    WINDOWS_TOTAL,
    DetectorBackend,
    DiceDetector,
    TransitionCase,
    as_backend,
)
from ..core.detector import CACHE_HITS_TOTAL, CACHE_MISSES_TOTAL
from ..model import Event, Trace
from .guard import DropLog, IngestGuard
from .refresh import ContextRefresher, NullRefresher, RefreshPolicy
from .reorder import ReorderBuffer
from .supervisor import (
    ERRORS,
    DeviceStatus,
    DeviceSupervisor,
    HealthTransition,
    SupervisorPolicy,
)
from .windower import OnlineWindower, WindowSnapshot

#: Alert kinds emitted by the supervising runtime, beyond the paper's
#: "detection"/"identification".
DEVICE_SILENCE = "device_silence"
DEVICE_ERRORS = "device_errors"
DEVICE_RECOVERED = "device_recovered"

#: Counter of alerts raised by the runtime, labelled by kind.
ALERTS_TOTAL = "dice_alerts_total"

#: Histogram of event-time detection latency: seconds between a deciding
#: window closing and the arrival of the event that closed it.
DETECTION_LATENCY_SECONDS = "dice_detection_latency_seconds"

#: Detection latency runs on event time (window-close lag), so the default
#: sub-second telemetry buckets are useless here — these span one second
#: to an hour.
DETECTION_LATENCY_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

_log = telemetry.get_logger("repro.streaming.runtime")


@dataclass(frozen=True)
class Alert:
    """One real-time notification from the gateway."""

    kind: str  # "detection", "identification", or a device_* health kind
    time: float
    check: Optional[str] = None
    cases: Tuple[TransitionCase, ...] = ()
    devices: FrozenSet[str] = frozenset()
    converged: bool = True


class OnlineDice:
    """Streaming facade over a fitted detector backend.

    Accepts either a fitted :class:`~repro.core.DiceDetector` (wrapped in
    the reference :class:`~repro.core.DiceBackend` — the historical API)
    or any fitted :class:`~repro.core.DetectorBackend`.
    """

    def __init__(
        self,
        detector: Union[DiceDetector, DetectorBackend],
        start: float = 0.0,
        provenance: Optional["telemetry.ProvenanceRecorder"] = None,
    ) -> None:
        backend = as_backend(detector)
        if not backend.is_fitted:
            raise ValueError("detector must be fitted")
        self.backend = backend
        #: The wrapped :class:`DiceDetector` for DICE-based backends,
        #: ``None`` otherwise.  Shared-context interning, context refresh
        #: and ``repro.fleet`` memory accounting key off it.
        self.detector = backend.dice_detector
        self.windower = OnlineWindower(backend.encoder, start=start)
        self.alerts: List[Alert] = []
        #: Evidence recorder; the plain facade defaults off (cost parity
        #: with the pre-provenance runtime), the hardened one defaults on.
        self.provenance = (
            provenance if provenance is not None else telemetry.NULL_PROVENANCE
        )
        #: Timestamp of the input (event or clock advance) whose arrival is
        #: closing windows right now — the event-time side of the
        #: detection-latency measurement.
        self._detected_ts = float(start)
        # Telemetry: the runtime shares its backend's registry/tracer.
        self.metrics = backend.metrics
        self.tracer = backend.tracer
        self._windows_counter = self.metrics.counter(
            WINDOWS_TOTAL, "Windows run through the real-time phase"
        )
        self._alerts_counter = self.metrics.counter(
            ALERTS_TOTAL, "Alerts raised by the streaming runtime", labelnames=("kind",)
        )
        self._cache_hits_counter = self.metrics.counter(
            CACHE_HITS_TOTAL, "Correlation-memo hits"
        )
        self._cache_misses_counter = self.metrics.counter(
            CACHE_MISSES_TOTAL, "Correlation-memo misses"
        )
        self._latency_obs = self.metrics.histogram(
            DETECTION_LATENCY_SECONDS,
            "Event-time seconds between a deciding window closing and the "
            "event that closed it",
            buckets=DETECTION_LATENCY_BUCKETS,
        )

    @property
    def _session(self):
        """The backend's open identification session (read-only view)."""
        return self.backend._session

    # ------------------------------------------------------------------ #

    def push(self, event: Event) -> List[Alert]:
        """Feed one event; returns alerts raised by completed windows."""
        self._detected_ts = event.timestamp
        fresh: List[Alert] = []
        for snapshot in self.windower.push(event):
            fresh.extend(self._handle_window(snapshot))
        return fresh

    def push_many(self, events: Iterable[Event]) -> List[Alert]:
        fresh: List[Alert] = []
        for event in events:
            fresh.extend(self.push(event))
        return fresh

    def advance_to(self, timestamp: float) -> List[Alert]:
        """Account for the passage of (possibly event-free) time."""
        self._detected_ts = timestamp
        fresh: List[Alert] = []
        for snapshot in self.windower.advance_to(timestamp):
            fresh.extend(self._handle_window(snapshot))
        return fresh

    def replay(self, trace: Trace) -> List[Alert]:
        """Convenience: stream a whole trace, including its quiet tail.

        Returns only the alerts raised *by this call* (matching ``push`` /
        ``advance_to``); the cumulative history stays in ``self.alerts``.
        """
        fresh = self.push_many(trace)
        fresh.extend(self.advance_to(trace.end))
        fresh.extend(self.finish(trace.end))
        return fresh

    def finish(self, end: Optional[float] = None) -> List[Alert]:
        """End-of-stream: report any identification session still open
        (mirrors the batch driver's segment-end flush).

        With *end*, the trailing **partial** window is force-closed first,
        exactly when the batch encoder would emit one: ``encode`` rounds a
        segment up to ``ceil(span / window - 1e-9)`` windows, so a stream
        ending mid-window owes one more (shortened) window before the
        session flush.  Without *end* (the default) no window is closed —
        a caller that only wants to conclude the session keeps the old
        behaviour.
        """
        fresh: List[Alert] = []
        if end is not None:
            self._detected_ts = max(self._detected_ts, end)
            windower = self.windower
            tail = end - windower.current_window_start
            if tail > 1e-9 * windower.window_seconds:
                fresh.extend(self._handle_window(windower.flush()))
        tail_alert = self.backend.finish_segment(
            self.windower.current_window_start
        )
        if tail_alert is None:
            return fresh
        alert = Alert(
            tail_alert.kind,
            tail_alert.time,
            check=tail_alert.check,
            cases=tail_alert.cases,
            devices=tail_alert.devices,
            converged=tail_alert.converged,
        )
        self.alerts.append(alert)
        prov = self.provenance
        if prov.enabled:
            # End-of-stream conclusion: the chain so far is the whole
            # evidence (no window closed to conclude the session).
            prov.record(
                alert,
                windows=list(prov.chain),
                latency=0.0,
                context=self._provenance_context(),
            )
            prov.chain = []
        self._note_alerts([alert])
        fresh.append(alert)
        return fresh

    def _note_alerts(self, fresh: List[Alert]) -> None:
        for alert in fresh:
            self._alerts_counter.labels(kind=alert.kind).inc()
            _log.info(
                "alert",
                kind=alert.kind,
                time=alert.time,
                check=alert.check,
                devices=",".join(sorted(alert.devices)),
            )

    # ------------------------------------------------------------------ #

    def _current_qbits(self) -> int:
        """Hook: state-set bits to mask out of the checks (quarantine)."""
        return 0

    def _handle_window(self, snapshot: WindowSnapshot) -> List[Alert]:
        hits0, misses0 = self.backend.cache_counters()
        with self.tracer.trace("window"):
            fresh = self._handle_window_impl(snapshot)
        self._windows_counter.inc()
        # Attribute only this window's memo activity, so a detector shared
        # with a batch ``process`` call is never double-counted.
        hits1, misses1 = self.backend.cache_counters()
        if hits1 > hits0:
            self._cache_hits_counter.inc(hits1 - hits0)
        if misses1 > misses0:
            self._cache_misses_counter.inc(misses1 - misses0)
        self._note_alerts(fresh)
        return fresh

    def _handle_window_impl(self, snapshot: WindowSnapshot) -> List[Alert]:
        outcome = self.backend.observe_window(snapshot, self._current_qbits())
        fresh = [
            Alert(
                b.kind,
                b.time,
                check=b.check,
                cases=b.cases,
                devices=b.devices,
                converged=b.converged,
            )
            for b in outcome.alerts
        ]
        if fresh:
            latency = max(0.0, self._detected_ts - snapshot.end)
            for _ in fresh:
                self._latency_obs.observe(latency)
        prov = self.provenance
        if prov.enabled and (fresh or prov.chain):
            self._note_provenance(snapshot, fresh)
        self.alerts.extend(fresh)
        self._observe_window(snapshot, outcome)
        return fresh

    def _note_provenance(
        self, snapshot: WindowSnapshot, fresh: List[Alert]
    ) -> None:
        """Accumulate the open session's evidence chain and seal a record
        per alert.  Called only with provenance enabled and something to
        note (an alert fired, or a session chain is accumulating), so the
        healthy steady state never builds evidence dicts."""
        prov = self.provenance
        evidence = self._window_evidence(snapshot)
        if any(alert.kind == "detection" for alert in fresh):
            # A detection (re)starts the chain at its triggering window.
            prov.chain = [evidence]
        elif prov.chain:
            prov.chain.append(evidence)
        if not fresh:
            return
        latency = max(0.0, self._detected_ts - snapshot.end)
        context = self._provenance_context()
        for alert in fresh:
            if alert.kind == "detection":
                prov.record(
                    alert, windows=[evidence], latency=latency, context=context
                )
            else:  # identification concluded on this window
                windows = list(prov.chain) if prov.chain else [evidence]
                prov.record(
                    alert, windows=windows, latency=latency, context=context
                )
                prov.chain = []

    def _window_evidence(self, snapshot: WindowSnapshot) -> dict:
        """JSON evidence for one completed window (deterministic)."""
        return self.backend.window_evidence(snapshot)

    def _provenance_context(self) -> dict:
        """Hook: runtime context stamped into provenance records."""
        return self.backend.context_summary()

    def _observe_window(self, snapshot: WindowSnapshot, outcome) -> None:
        """Hook: subclasses may watch completed-window outcomes (the
        hardened runtime feeds its drift monitor here)."""

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-serializable detector-side streaming state.

        The backend's transient keys are merged in flat, so DICE-backed
        snapshots keep the exact pre-backend layout (checkpoint v1-v4
        compatibility)."""
        state = {"windower": self.windower.state_dict()}
        state.update(self.backend.checkpoint_state())
        state["provenance"] = self.provenance.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        self.windower.load_state(state["windower"])
        self.backend.load_state(state)
        # Pre-provenance checkpoints (v1-v3) simply lack the key.
        self.provenance.load_state(state.get("provenance"))


class HardenedOnlineDice(OnlineDice):
    """The resilient gateway runtime: guard → reorder → supervise → detect.

    Feed raw pipe output through :meth:`ingest`; call :meth:`finish_stream`
    at end-of-stream (or :meth:`checkpoint` any time in between).  Unlike
    the plain :class:`OnlineDice`, out-of-order events within
    ``lateness_seconds`` are tolerated, malformed events are counted and
    dropped, and devices that go silent beyond the supervisor's budget are
    quarantined — their bits are ignored by the correlation check until
    they recover, so one dead sensor does not flood the detector.
    """

    def __init__(
        self,
        detector: Union[DiceDetector, DetectorBackend],
        start: float = 0.0,
        *,
        lateness_seconds: float = 120.0,
        max_pending: int = 4096,
        policy: SupervisorPolicy = SupervisorPolicy(),
        max_drop_samples: int = 100,
        refresh: Optional[RefreshPolicy] = None,
        provenance: Optional["telemetry.ProvenanceRecorder"] = None,
    ) -> None:
        # The hardened runtime records provenance by default — it is the
        # production-facing path; pass telemetry.NULL_PROVENANCE to opt out.
        super().__init__(
            detector,
            start=start,
            provenance=(
                provenance
                if provenance is not None
                else telemetry.ProvenanceRecorder()
            ),
        )
        backend = self.backend
        # Captured before any refresh mutates the model: checkpoints match
        # snapshots against the *base* fitted model, then re-apply the
        # carried refresh history on restore.
        self.base_fingerprint = backend.fingerprint()
        # Content hash of the same base state; fleet manifests record it so
        # a restore can prove the re-fitted detector is byte-for-byte the
        # one the checkpoint was taken against.
        self.base_context_hash = backend.context_hash()
        # While draining staged windows, the quarantine bits captured at
        # staging time; ``None`` outside a drain (live bits are used).
        self._pinned_qbits: Optional[int] = None
        # Likewise the quarantined-device names stamped into provenance
        # context: a batched tick advances every home's supervisor before
        # any window drains, so the live set at drain time can already
        # contain the future — records must see the staging-time set.
        self._pinned_quarantined: Optional[List[str]] = None
        registry = backend.registry
        self.drops = DropLog(max_samples=max_drop_samples, metrics=self.metrics)
        self.guard = IngestGuard(registry, self.drops, start=start)
        self.reorder = ReorderBuffer(
            lateness_seconds, max_pending, self.drops, metrics=self.metrics
        )
        self.supervisor = DeviceSupervisor(
            registry, policy, start=start, metrics=self.metrics
        )
        # Context refresh mutates the DICE model in place; for backends
        # without one, the null refresher keeps the interface (stats,
        # checkpoint keys) with refresh permanently off.
        if backend.dice_detector is not None:
            self.refresher = ContextRefresher(
                backend.dice_detector,
                refresh if refresh is not None else RefreshPolicy(),
                metrics=self.metrics,
            )
        else:
            self.refresher = NullRefresher()
        self._register_telemetry()

    def _register_telemetry(self) -> None:
        """Publish buffer depth and supervisor occupancy at snapshot time."""
        metrics = self.metrics
        if not metrics.enabled:
            return
        pending = metrics.gauge(
            "dice_reorder_pending", "Events currently held in the reorder buffer"
        )
        lag = metrics.gauge(
            "dice_reorder_watermark_lag_seconds",
            "Newest event timestamp seen minus the release watermark",
        )
        devices = metrics.gauge(
            "dice_supervisor_devices",
            "Supervised devices per health state",
            labelnames=("state",),
        )

        def collect() -> None:
            pending.set(self.reorder.pending)
            lag.set(self.reorder.watermark_lag)
            for state, count in self.supervisor.state_counts().items():
                devices.labels(state=state).set(count)

        metrics.register_collector("runtime", collect)

    def health(self) -> dict:
        """Point-in-time health report of the gateway runtime.

        JSON-serializable; this is what an operator (or the supervising
        process) polls to decide whether the gateway needs attention,
        independent of the metrics export.
        """
        watermark = self.reorder.watermark
        states = {}
        for device in self.backend.registry:
            health = self.supervisor.health_of(device.device_id)
            if health is not None:
                states[device.device_id] = health.status.value
        states = dict(sorted(states.items()))
        alert_counts: Dict[str, int] = {}
        for alert in self.alerts:
            alert_counts[alert.kind] = alert_counts.get(alert.kind, 0) + 1
        return {
            "devices": states,
            "supervisor_states": self.supervisor.state_counts(),
            "quarantined": sorted(self.supervisor.quarantined),
            "watermark": None if watermark == float("-inf") else watermark,
            "watermark_lag_seconds": self.reorder.watermark_lag,
            "reorder_pending": self.reorder.pending,
            "reorder_capacity": self.reorder.max_pending,
            "force_released": self.reorder.force_released,
            "drops": {
                "total": self.drops.total,
                "by_reason": self.drops.summary(),
            },
            "refresh": self.refresher.stats(),
            "alerts": alert_counts,
        }

    # ------------------------------------------------------------------ #

    def ingest(self, event: Event) -> List[Alert]:
        """Feed one raw event from the pipe; never raises on bad input."""
        staged: List[tuple] = []
        self.stage_event(event, staged)
        return self.drain_staged(staged)

    # -- staged ingest (the batched fleet tick's building blocks) -------- #
    #
    # ``ingest`` is stage-then-drain over a single event, so the immediate
    # and batched paths run the exact same code.  The fleet gateway's
    # batched tick stages every home's events first (guard, reorder and
    # supervisor state *must* advance in arrival order), pre-warms each
    # shared correlation memo once across homes, then drains per home.
    # Per-home alert streams are byte-identical either way: every staged
    # window pins the quarantine bits as of its staging moment — exactly
    # what an immediate ``_handle_window`` would have observed — and the
    # memo warm-up is a pure cache fill that never changes check results.

    def stage_event(self, event: Event, staged: List[tuple]) -> None:
        """Run one raw event's ingest bookkeeping now; defer window
        handling and alert emission into *staged* (see :meth:`drain_staged`)."""
        dropped = self.guard.admit(event)
        if dropped is not None:
            if event.device_id in self.backend.registry:
                # A known device emitting garbage counts against its health.
                transitions = self.supervisor.record_error(
                    event.device_id, self._stream_time(event)
                )
                if transitions:
                    staged.append(
                        ("health", transitions, self._quarantined_now())
                    )
            return
        self._stage_released(self.reorder.push(event), staged)

    def _quarantined_now(self) -> List[str]:
        """The supervisor's quarantine set as of this staging moment."""
        return sorted(self.supervisor.quarantined)

    def _stage_released(
        self, events: List[Event], staged: List[tuple]
    ) -> None:
        for event in events:
            transitions = self.supervisor.observe(event)
            if transitions:
                staged.append(("health", transitions, self._quarantined_now()))
            transitions = self.supervisor.check_silence(event.timestamp)
            if transitions:
                staged.append(("health", transitions, self._quarantined_now()))
            for snapshot in self.windower.push(event):
                staged.append(
                    (
                        "window",
                        self._quarantine_bits(),
                        snapshot,
                        event.timestamp,
                        self._quarantined_now(),
                    )
                )

    def drain_staged(self, staged: List[tuple]) -> List[Alert]:
        """Turn staged items into alerts, in staging order."""
        fresh: List[Alert] = []
        for item in staged:
            if item[0] == "health":
                _tag, transitions, quarantined = item
                self._pinned_quarantined = quarantined
                try:
                    fresh.extend(self._health_alerts(transitions))
                finally:
                    self._pinned_quarantined = None
            else:
                _tag, qbits, snapshot, detected_ts, quarantined = item
                self._detected_ts = detected_ts
                self._pinned_qbits = qbits
                self._pinned_quarantined = quarantined
                try:
                    fresh.extend(self._handle_window(snapshot))
                finally:
                    self._pinned_qbits = None
                    self._pinned_quarantined = None
        return fresh

    @staticmethod
    def staged_window_masks(staged: List[tuple]) -> List[int]:
        """Masks of staged windows that will take the memoised check path
        (no quarantine bits pinned) — what a batched tick pre-warms."""
        return [
            item[2].mask
            for item in staged
            if item[0] == "window" and item[1] == 0
        ]

    def _stream_time(self, event: Event) -> float:
        """Best current estimate of event time for health bookkeeping."""
        watermark = self.reorder.watermark
        if watermark != float("-inf"):
            return watermark
        if math.isfinite(event.timestamp):
            return event.timestamp
        return self.guard.start

    def ingest_many(self, events: Iterable[Event]) -> List[Alert]:
        fresh: List[Alert] = []
        for event in events:
            fresh.extend(self.ingest(event))
        return fresh

    def advance_to(self, timestamp: float) -> List[Alert]:
        """Wall clock reached *timestamp*: release what the watermark allows
        and account for event-free time (silence detection included)."""
        fresh = self._process_released(self.reorder.advance_to(timestamp))
        watermark = self.reorder.watermark
        horizon = max(watermark, timestamp - self.reorder.lateness_seconds)
        if horizon > float("-inf"):
            self._detected_ts = horizon
            for snapshot in self.windower.advance_to(horizon):
                fresh.extend(self._handle_window(snapshot))
            fresh.extend(
                self._health_alerts(self.supervisor.check_silence(horizon))
            )
        return fresh

    def finish_stream(self, end: Optional[float] = None) -> List[Alert]:
        """End-of-stream: flush the reorder buffer, close the quiet tail up
        to *end*, and conclude any open identification session."""
        fresh = self._process_released(self.reorder.flush())
        if end is not None:
            self._detected_ts = max(self._detected_ts, end)
            for snapshot in self.windower.advance_to(end):
                fresh.extend(self._handle_window(snapshot))
            fresh.extend(self._health_alerts(self.supervisor.check_silence(end)))
        fresh.extend(self.finish(end))
        return fresh

    def replay(self, trace: Trace) -> List[Alert]:
        """Stream a whole trace through the hardened path."""
        fresh = self.ingest_many(trace)
        fresh.extend(self.finish_stream(trace.end))
        return fresh

    # ------------------------------------------------------------------ #

    def _process_released(self, events: List[Event]) -> List[Alert]:
        staged: List[tuple] = []
        self._stage_released(events, staged)
        return self.drain_staged(staged)

    def _health_alerts(
        self, transitions: List[HealthTransition]
    ) -> List[Alert]:
        fresh: List[Alert] = []
        for edge in transitions:
            if edge.current is DeviceStatus.QUARANTINED:
                kind = DEVICE_ERRORS if edge.reason == ERRORS else DEVICE_SILENCE
            elif edge.current is DeviceStatus.RECOVERED:
                kind = DEVICE_RECOVERED
            else:
                continue  # degraded/healthy edges are internal
            alert = Alert(kind, edge.time, devices=frozenset({edge.device_id}))
            fresh.append(alert)
            prov = self.provenance
            if prov.enabled:
                prov.record(
                    alert,
                    windows=[],
                    latency=0.0,
                    context={
                        **self._provenance_context(),
                        "device": edge.device_id,
                        "previous": edge.previous.value,
                        "current": edge.current.value,
                        "reason": edge.reason,
                    },
                )
        self.alerts.extend(fresh)
        self._note_alerts(fresh)
        return fresh

    def _quarantine_bits(self) -> int:
        """State-set bits owned by currently quarantined sensors."""
        bits = 0
        layout = self.windower.layout
        registry = self.backend.registry
        for device_id in self.supervisor.quarantined:
            device = registry.get(device_id)
            if device is None or device.is_actuator:
                continue
            for bit in layout.bits_of_device(device_id):
                bits |= 1 << bit
        return bits

    def _current_qbits(self) -> int:
        """Quarantine bits the backend's checks must ignore: the bits
        pinned at staging time while draining, the live set otherwise."""
        pinned = self._pinned_qbits
        return self._quarantine_bits() if pinned is None else pinned

    def _window_evidence(self, snapshot) -> dict:
        evidence = super()._window_evidence(snapshot)
        evidence["quarantine_bits"] = format(self._current_qbits(), "x")
        return evidence

    def _provenance_context(self) -> dict:
        context = super()._provenance_context()
        pinned = self._pinned_quarantined
        context["quarantined"] = (
            self._quarantined_now() if pinned is None else list(pinned)
        )
        context["refresh_applied"] = self.refresher.applied_total
        return context

    def _observe_window(self, snapshot: WindowSnapshot, outcome) -> None:
        """Feed the drift monitor; a sustained drift signal (for DICE, a
        correlation-violation streak) declares drift and eventually
        refreshes the context in place."""
        self.refresher.observe(
            snapshot.mask,
            snapshot.actuator_activations,
            outcome.drift_signal,
            snapshot.end,
        )

    # ------------------------------------------------------------------ #
    # Checkpoint support (see repro.streaming.checkpoint)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["guard"] = {"start": self.guard.start}
        state["drops"] = self.drops.state_dict()
        state["reorder"] = self.reorder.state_dict()
        state["supervisor"] = self.supervisor.state_dict()
        state["refresh"] = self.refresher.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.drops = DropLog.from_state_dict(state["drops"], metrics=self.metrics)
        self.guard = IngestGuard(
            self.backend.registry, self.drops, start=state["guard"]["start"]
        )
        self.reorder.log = self.drops
        self.reorder.load_state(state["reorder"])
        self.supervisor.load_state(state["supervisor"])
        # Pre-refresh checkpoints (v1/v2) simply lack the key.
        self.refresher.load_state(state.get("refresh"))

    def checkpoint(self) -> dict:
        """Versioned, JSON-serializable snapshot of the full online state."""
        from .checkpoint import checkpoint_state

        return checkpoint_state(self)

    def save_checkpoint(self, path) -> None:
        from .checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def restore(
        cls, detector: Union[DiceDetector, DetectorBackend], state: dict
    ) -> "HardenedOnlineDice":
        """Rebuild a runtime from a :meth:`checkpoint` snapshot."""
        from .checkpoint import restore_runtime

        return restore_runtime(detector, state)
