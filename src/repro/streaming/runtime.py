"""The online DICE runtime: what actually runs on the home gateway.

:class:`OnlineDice` wraps a fitted :class:`~repro.core.DiceDetector` with
the event-at-a-time windower and exposes a push API; alerts (detections
and concluded identifications) come back from every ``push`` call as they
happen, with the same semantics as the batch ``process`` path — a property
the test suite checks by replaying traces through both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..core import (
    CORRELATION_CHECK,
    TRANSITION_CHECK,
    DiceDetector,
    IdentificationSession,
    ProbableFaultSet,
    TransitionCase,
)
from ..model import Event, Trace
from .windower import OnlineWindower, WindowSnapshot


@dataclass(frozen=True)
class Alert:
    """One real-time notification from the gateway."""

    kind: str  # "detection" or "identification"
    time: float
    check: Optional[str] = None
    cases: Tuple[TransitionCase, ...] = ()
    devices: FrozenSet[str] = frozenset()
    converged: bool = True


class OnlineDice:
    """Streaming facade over a fitted detector."""

    def __init__(self, detector: DiceDetector, start: float = 0.0) -> None:
        model = detector.model
        if model is None:
            raise ValueError("detector must be fitted")
        self.detector = detector
        self.windower = OnlineWindower(model.encoder, start=start)
        self._prev_group: Optional[int] = None
        self._anchor_group: Optional[int] = None
        self._prev_acts: FrozenSet[str] = frozenset()
        self._session: Optional[IdentificationSession] = None
        self._session_trigger: str = CORRELATION_CHECK
        self.alerts: List[Alert] = []

    # ------------------------------------------------------------------ #

    def push(self, event: Event) -> List[Alert]:
        """Feed one event; returns alerts raised by completed windows."""
        fresh: List[Alert] = []
        for snapshot in self.windower.push(event):
            fresh.extend(self._handle_window(snapshot))
        return fresh

    def push_many(self, events: Iterable[Event]) -> List[Alert]:
        fresh: List[Alert] = []
        for event in events:
            fresh.extend(self.push(event))
        return fresh

    def advance_to(self, timestamp: float) -> List[Alert]:
        """Account for the passage of (possibly event-free) time."""
        fresh: List[Alert] = []
        for snapshot in self.windower.advance_to(timestamp):
            fresh.extend(self._handle_window(snapshot))
        return fresh

    def replay(self, trace: Trace) -> List[Alert]:
        """Convenience: stream a whole trace, including its quiet tail."""
        self.push_many(trace)
        self.advance_to(trace.end)
        self.finish()
        return self.alerts

    def finish(self) -> List[Alert]:
        """End-of-stream: report any identification session still open
        (mirrors the batch driver's segment-end flush)."""
        if self._session is None:
            return []
        alert = Alert(
            "identification",
            self.windower.current_window_start,
            check=self._session_trigger,
            devices=self._session.intersection,
            converged=False,
        )
        self._session = None
        self.alerts.append(alert)
        return [alert]

    # ------------------------------------------------------------------ #

    def _handle_window(self, snapshot: WindowSnapshot) -> List[Alert]:
        detector = self.detector
        corr = detector._correlation_checker.check(snapshot.mask)
        violations = ()
        if not corr.is_violation:
            violations = detector._transition_checker.check(
                self._prev_group,
                corr.main_group,
                self._prev_acts,
                snapshot.actuator_activations,
            )
        fresh: List[Alert] = []
        identifier = detector._identifier
        if self._session is None:
            if corr.is_violation:
                fresh.append(
                    Alert("detection", snapshot.end, check=CORRELATION_CHECK)
                )
                probable = identifier.from_correlation_violation(
                    corr, self._anchor_group
                )
                self._session = IdentificationSession(
                    detector.config, probable, detector.weights
                )
                self._session_trigger = CORRELATION_CHECK
            elif violations:
                fresh.append(
                    Alert(
                        "detection",
                        snapshot.end,
                        check=TRANSITION_CHECK,
                        cases=tuple(v.case for v in violations),
                    )
                )
                probable = identifier.from_transition_violations(
                    violations, snapshot.mask, self._prev_group
                )
                self._session = IdentificationSession(
                    detector.config, probable, detector.weights
                )
                self._session_trigger = TRANSITION_CHECK
        else:
            if corr.is_violation:
                probable = identifier.from_correlation_violation(
                    corr, self._anchor_group
                )
            elif violations:
                probable = identifier.from_transition_violations(
                    violations, snapshot.mask, self._prev_group
                )
            else:
                probable = ProbableFaultSet(frozenset())
            self._session.update(probable)

        if self._session is not None and self._session.is_done:
            outcome = self._session.outcome
            fresh.append(
                Alert(
                    "identification",
                    snapshot.end,
                    check=self._session_trigger,
                    devices=outcome.devices,
                    converged=outcome.converged,
                )
            )
            self._session = None

        self._prev_group = corr.main_group
        if corr.main_group is not None:
            self._anchor_group = corr.main_group
        self._prev_acts = snapshot.actuator_activations
        self.alerts.extend(fresh)
        return fresh
