"""Per-device health supervision for the gateway runtime.

A sensor that goes silent is itself a fault signal (the paper's fail-stop
class), but to the correlation check it looks like *every window* missing
that device's bits — one dead sensor floods the detector with correlation
violations and drowns real faults.  The :class:`DeviceSupervisor` tracks a
heartbeat per device and runs a small circuit-breaker state machine:

``HEALTHY → DEGRADED → QUARANTINED → RECOVERED → HEALTHY``

* silent longer than ``silence_seconds`` → **DEGRADED** (internal, no alert);
* silent longer than ``quarantine_seconds`` → **QUARANTINED** — the runtime
  emits ``Alert(kind="device_silence")`` and masks the device's bits out of
  the correlation check until it speaks again;
* malformed events (guard rejects) increment an error counter; crossing
  ``error_threshold`` also quarantines (``Alert(kind="device_errors")``);
* a valid event from a quarantined device → **RECOVERED** — the runtime
  emits ``Alert(kind="device_recovered")`` and unmasks it; the next valid
  event settles it back to **HEALTHY**.

All time is *event time* (the stream's watermark), never wall clock, so the
supervisor is deterministic and checkpointable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from .. import telemetry
from ..model import DeviceRegistry, Event

#: Transition reasons.
SILENCE = "silence"
ERRORS = "errors"
RECOVERY = "recovery"

#: Counter of state-machine edges, labelled by destination state + reason.
TRANSITIONS_TOTAL = "dice_supervisor_transitions_total"

_log = telemetry.get_logger("repro.streaming.supervisor")


class DeviceStatus(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"
    RECOVERED = "recovered"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the circuit breaker."""

    #: Silence beyond this marks a device DEGRADED (no alert yet).
    silence_seconds: float = 900.0
    #: Silence beyond this quarantines the device and raises an alert.
    quarantine_seconds: float = 1800.0
    #: Cumulative malformed events before an error quarantine.
    error_threshold: int = 10
    #: Actuators are often legitimately silent for hours (a bulb nobody
    #: toggles), so silence tracking covers sensors only unless enabled.
    watch_actuators: bool = False

    def __post_init__(self) -> None:
        if self.silence_seconds <= 0:
            raise ValueError("silence_seconds must be positive")
        if self.quarantine_seconds < self.silence_seconds:
            raise ValueError("quarantine_seconds must be >= silence_seconds")
        if self.error_threshold < 1:
            raise ValueError("error_threshold must be at least 1")


@dataclass
class DeviceHealth:
    """Mutable per-device record."""

    status: DeviceStatus = DeviceStatus.HEALTHY
    last_seen: float = 0.0
    errors: int = 0
    silences: int = 0  # lifetime count of silence quarantines
    recoveries: int = 0


@dataclass(frozen=True)
class HealthTransition:
    """One state-machine edge, for the runtime to turn into alerts."""

    device_id: str
    previous: DeviceStatus
    current: DeviceStatus
    time: float
    reason: str


class DeviceSupervisor:
    """Heartbeat tracking + quarantine state machine over one registry."""

    def __init__(
        self,
        registry: DeviceRegistry,
        policy: SupervisorPolicy = SupervisorPolicy(),
        start: float = 0.0,
        metrics: Optional["telemetry.MetricsRegistry"] = None,
    ) -> None:
        self.registry = registry
        self.policy = policy
        self.start = float(start)
        self._health: Dict[str, DeviceHealth] = {}
        for device in registry:
            if device.is_sensor or policy.watch_actuators:
                self._health[device.device_id] = DeviceHealth(last_seen=self.start)
        self._metrics = telemetry.NULL_REGISTRY if metrics is None else metrics
        self._transitions_counter = self._metrics.counter(
            TRANSITIONS_TOTAL,
            "Supervisor state-machine edges, by destination state and reason",
            labelnames=("to", "reason"),
        )
        #: Conservative lower bound on the earliest event time at which any
        #: device could cross a silence threshold; :meth:`check_silence`
        #: returns immediately while ``now`` has not reached it, making the
        #: per-event silence check O(1) amortised instead of O(devices).
        self._next_check = self._earliest_deadline()

    # ------------------------------------------------------------------ #

    def _deadline(self, health: DeviceHealth) -> float:
        """Earliest event time at which *health* could transition on silence."""
        if health.status is DeviceStatus.QUARANTINED:
            return float("inf")
        if health.status is DeviceStatus.DEGRADED:
            return health.last_seen + self.policy.quarantine_seconds
        return health.last_seen + self.policy.silence_seconds

    def _earliest_deadline(self) -> float:
        if not self._health:
            return float("inf")
        return min(self._deadline(h) for h in self._health.values())

    def health_of(self, device_id: str) -> Optional[DeviceHealth]:
        return self._health.get(device_id)

    @property
    def quarantined(self) -> FrozenSet[str]:
        return frozenset(
            d for d, h in self._health.items()
            if h.status is DeviceStatus.QUARANTINED
        )

    def state_counts(self) -> Dict[str, int]:
        """Supervised devices per state (every state present, maybe 0)."""
        counts = {status.value: 0 for status in DeviceStatus}
        for health in self._health.values():
            counts[health.status.value] += 1
        return counts

    def observe(self, event: Event) -> List[HealthTransition]:
        """A valid event from a device arrived (heartbeat)."""
        health = self._health.get(event.device_id)
        if health is None:
            return []
        transitions: List[HealthTransition] = []
        if event.timestamp > health.last_seen:
            health.last_seen = event.timestamp
        if health.status is DeviceStatus.QUARANTINED:
            transitions.append(
                self._transition(
                    event.device_id, health, DeviceStatus.RECOVERED,
                    event.timestamp, RECOVERY,
                )
            )
            health.recoveries += 1
            health.errors = 0
            # The device re-entered silence tracking with a possibly old
            # last_seen; keep the fast-path bound conservative.
            self._next_check = min(self._next_check, self._deadline(health))
        elif health.status in (DeviceStatus.DEGRADED, DeviceStatus.RECOVERED):
            self._transition(
                event.device_id, health, DeviceStatus.HEALTHY,
                event.timestamp, RECOVERY,
            )
            self._next_check = min(self._next_check, self._deadline(health))
        return transitions

    def record_error(self, device_id: str, timestamp: float) -> List[HealthTransition]:
        """A malformed event from a known device was rejected upstream."""
        health = self._health.get(device_id)
        if health is None:
            return []
        health.errors += 1
        if (
            health.errors >= self.policy.error_threshold
            and health.status is not DeviceStatus.QUARANTINED
        ):
            return [
                self._transition(
                    device_id, health, DeviceStatus.QUARANTINED, timestamp, ERRORS
                )
            ]
        return []

    def check_silence(self, now: float) -> List[HealthTransition]:
        """Advance event time; quarantine devices silent beyond budget."""
        if now <= self._next_check:
            # No device can have crossed a threshold yet (transitions
            # require strictly exceeding their budget), so the full scan
            # below would provably do nothing — including internal
            # DEGRADED edges, which the bound also covers.
            return []
        transitions: List[HealthTransition] = []
        for device in self.registry:  # registry order keeps this deterministic
            health = self._health.get(device.device_id)
            if health is None or health.status is DeviceStatus.QUARANTINED:
                continue
            silent = now - health.last_seen
            if silent > self.policy.quarantine_seconds:
                health.silences += 1
                transitions.append(
                    self._transition(
                        device.device_id, health, DeviceStatus.QUARANTINED,
                        now, SILENCE,
                    )
                )
            elif silent > self.policy.silence_seconds and health.status in (
                DeviceStatus.HEALTHY,
                DeviceStatus.RECOVERED,
            ):
                self._transition(
                    device.device_id, health, DeviceStatus.DEGRADED, now, SILENCE
                )
        self._next_check = self._earliest_deadline()
        return transitions

    def _transition(
        self,
        device_id: str,
        health: DeviceHealth,
        status: DeviceStatus,
        time: float,
        reason: str,
    ) -> HealthTransition:
        edge = HealthTransition(device_id, health.status, status, time, reason)
        health.status = status
        self._transitions_counter.labels(to=status.value, reason=reason).inc()
        level = "warning" if status is DeviceStatus.QUARANTINED else "info"
        _log.log(
            level,
            f"device_{status.value}",
            device=device_id,
            previous=edge.previous.value,
            reason=reason,
            time=time,
        )
        return edge

    # -- checkpoint support ---------------------------------------------- #

    def state_dict(self) -> dict:
        return {
            "start": self.start,
            "policy": {
                "silence_seconds": self.policy.silence_seconds,
                "quarantine_seconds": self.policy.quarantine_seconds,
                "error_threshold": self.policy.error_threshold,
                "watch_actuators": self.policy.watch_actuators,
            },
            "devices": {
                device_id: {
                    "status": health.status.value,
                    "last_seen": health.last_seen,
                    "errors": health.errors,
                    "silences": health.silences,
                    "recoveries": health.recoveries,
                }
                for device_id, health in self._health.items()
            },
        }

    def load_state(self, state: dict) -> None:
        self.start = float(state["start"])
        self.policy = SupervisorPolicy(**state["policy"])
        for device_id, data in state["devices"].items():
            health = self._health.get(device_id)
            if health is None:
                continue
            health.status = DeviceStatus(data["status"])
            health.last_seen = float(data["last_seen"])
            health.errors = int(data["errors"])
            health.silences = int(data["silences"])
            health.recoveries = int(data["recoveries"])
        self._next_check = self._earliest_deadline()
