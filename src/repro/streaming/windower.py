"""Online windowing: event-at-a-time state-set construction.

The batch encoder (:mod:`repro.core.encoding`) vectorises over a whole
trace; a gateway deployment instead sees one event at a time.  The
:class:`OnlineWindower` accumulates events into the current window and
emits a finished :class:`WindowSnapshot` — the same bitmask the batch
encoder would produce — every time the clock crosses a window boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..core.encoding import BitLayout, StateSetEncoder
from ..model import DeviceKind, Event


@dataclass(frozen=True)
class WindowSnapshot:
    """One completed window."""

    index: int
    start: float
    end: float
    mask: int
    actuator_activations: FrozenSet[str]


class _NumericAccumulator:
    """Streaming stats for one numeric sensor within one window."""

    __slots__ = ("count", "s1", "s2", "s3", "first", "last")

    def __init__(self) -> None:
        self.count = 0
        self.s1 = self.s2 = self.s3 = 0.0
        self.first = 0.0
        self.last = 0.0

    def add(self, value: float) -> None:
        if self.count == 0:
            self.first = value
        self.last = value
        self.count += 1
        self.s1 += value
        self.s2 += value * value
        self.s3 += value * value * value

    def bits(self, threshold: float) -> Tuple[bool, bool, bool]:
        """(skew, trend, mean) per Eqs. 3.2-3.4."""
        if self.count == 0:
            return False, False, False
        if self.count == 1:
            # A single sample has no spread or direction: skewness and trend
            # are undefined and must read False by construction rather than
            # by hoping the float cancellation in s2/count - mean^2 lands at
            # exactly zero; only the mean bit is meaningful.
            return False, False, self.s1 > threshold
        mean = self.s1 / self.count
        variance = self.s2 / self.count - mean * mean
        # mu^3 as explicit multiplies, mirroring the batch encoder op for
        # op: pow() can differ from the multiply chain in the last ulp,
        # which the cancellation in m3 then amplifies past the threshold.
        m3 = (
            self.s3
            - 3.0 * mean * self.s2
            + 2.0 * self.count * (mean * mean * mean)
        ) / self.count
        skew = m3 > 1e-12 and variance > 1e-12
        trend = self.last - self.first > 0
        above = mean > threshold
        return skew, trend, above

    def state_dict(self) -> list:
        return [self.count, self.s1, self.s2, self.s3, self.first, self.last]

    @classmethod
    def from_state_dict(cls, state: list) -> "_NumericAccumulator":
        acc = cls()
        acc.count = int(state[0])
        acc.s1, acc.s2, acc.s3 = float(state[1]), float(state[2]), float(state[3])
        acc.first, acc.last = float(state[4]), float(state[5])
        return acc


class OnlineWindower:
    """Feeds on events, yields completed windows.

    Events must arrive in (approximately) non-decreasing time order; a
    late event belonging to an already-emitted window raises ``ValueError``
    rather than silently corrupting history.
    """

    def __init__(self, encoder: StateSetEncoder, start: float = 0.0) -> None:
        if not encoder.is_fitted:
            raise ValueError("encoder must be fitted before streaming")
        self.encoder = encoder
        self.layout: BitLayout = encoder.layout
        self.window_seconds = encoder.window_seconds
        self.start = float(start)
        self._index = 0
        self._binary_mask = 0
        self._numeric: Dict[str, _NumericAccumulator] = {}
        self._actuators: set = set()

    # ------------------------------------------------------------------ #

    @property
    def current_window_start(self) -> float:
        return self.start + self._index * self.window_seconds

    @property
    def current_window_end(self) -> float:
        return self.current_window_start + self.window_seconds

    def push(self, event: Event) -> List[WindowSnapshot]:
        """Add one event; returns any windows completed by its arrival."""
        emitted = self.advance_to(event.timestamp)
        if event.timestamp < self.current_window_start:
            raise ValueError(
                f"event at {event.timestamp} precedes the current window "
                f"starting {self.current_window_start}"
            )
        self._absorb(event)
        return emitted

    def advance_to(self, timestamp: float) -> List[WindowSnapshot]:
        """Close every window ending at or before *timestamp*."""
        emitted: List[WindowSnapshot] = []
        while timestamp >= self.current_window_end:
            emitted.append(self._close_window())
        return emitted

    def flush(self) -> WindowSnapshot:
        """Force-close the current (possibly partial) window."""
        return self._close_window()

    # ------------------------------------------------------------------ #

    def _absorb(self, event: Event) -> None:
        device = self.encoder.registry.get(event.device_id)
        if device is None:
            raise KeyError(f"unknown device {event.device_id!r}")
        if device.kind is DeviceKind.ACTUATOR:
            if event.value > 0:
                self._actuators.add(event.device_id)
        elif device.kind is DeviceKind.BINARY_SENSOR:
            if event.value > 0:
                bit = self.layout.bits_of_device(event.device_id)[0]
                self._binary_mask |= 1 << bit
        else:
            acc = self._numeric.setdefault(event.device_id, _NumericAccumulator())
            acc.add(event.value)

    def _close_window(self) -> WindowSnapshot:
        mask = self._binary_mask
        for device_id, acc in self._numeric.items():
            skew_bit, trend_bit, mean_bit = self.layout.bits_of_device(device_id)
            threshold = self.encoder.value_threshold(device_id)
            skew, trend, above = acc.bits(threshold)
            if skew:
                mask |= 1 << skew_bit
            if trend:
                mask |= 1 << trend_bit
            if above:
                mask |= 1 << mean_bit
        snapshot = WindowSnapshot(
            index=self._index,
            start=self.current_window_start,
            end=self.current_window_end,
            mask=mask,
            actuator_activations=frozenset(self._actuators),
        )
        self._index += 1
        self._binary_mask = 0
        self._numeric.clear()
        self._actuators.clear()
        return snapshot

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the in-flight window state."""
        return {
            "start": self.start,
            "index": self._index,
            "binary_mask": self._binary_mask,
            "numeric": {
                device_id: acc.state_dict()
                for device_id, acc in sorted(self._numeric.items())
            },
            "actuators": sorted(self._actuators),
        }

    def load_state(self, state: dict) -> None:
        """Restore the in-flight window state captured by :meth:`state_dict`."""
        self.start = float(state["start"])
        self._index = int(state["index"])
        self._binary_mask = int(state["binary_mask"])
        self._numeric = {
            device_id: _NumericAccumulator.from_state_dict(acc)
            for device_id, acc in state["numeric"].items()
        }
        self._actuators = set(state["actuators"])
