"""Gateway observability: metrics registry, stage tracing, structured logs.

The pipeline-wide default is one process-global :class:`MetricsRegistry`
(:func:`get_registry`) and one :class:`Tracer` over it (:func:`get_tracer`)
— every component falls back to them when not handed an explicit registry,
so ``repro stream --metrics-out`` sees the whole pipeline in one snapshot.
Pass :data:`NULL_REGISTRY` (or a private ``MetricsRegistry``) to a
component to opt out or isolate.
"""

from __future__ import annotations

from typing import Optional

from .log import (
    HUMAN_FORMAT,
    JSON_FORMAT,
    LEVELS,
    LogConfig,
    TelemetryLogger,
    configure,
    current_config,
    get_logger,
)
from .prometheus import to_prometheus, validate_prometheus_text
from .provenance import (
    NULL_PROVENANCE,
    PROVENANCE_SCHEMA,
    ProvenanceRecorder,
    alert_body,
    render_explanation,
    trace_id,
)
from .registry import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_REGISTRY,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    merge_many,
    merge_snapshots,
)
from .sampler import SnapshotSampler, render_dashboard
from .spans import NULL_TRACER, SPAN_HISTOGRAM, Span, Tracer

_default_registry = MetricsRegistry()
_default_tracer = Tracer(_default_registry)


def get_registry() -> MetricsRegistry:
    """The process-global registry every component defaults to."""
    return _default_registry


def get_tracer() -> Tracer:
    """The tracer bound to the process-global registry."""
    return _default_tracer


def resolve(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """``None`` → the global registry; anything else passes through."""
    return _default_registry if metrics is None else metrics


__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "HUMAN_FORMAT",
    "JSON_FORMAT",
    "LEVELS",
    "LogConfig",
    "MetricsRegistry",
    "NULL_PROVENANCE",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PROVENANCE_SCHEMA",
    "ProvenanceRecorder",
    "SNAPSHOT_SCHEMA",
    "SPAN_HISTOGRAM",
    "SnapshotSampler",
    "Span",
    "TelemetryLogger",
    "Tracer",
    "alert_body",
    "configure",
    "current_config",
    "get_logger",
    "get_registry",
    "get_tracer",
    "merge_many",
    "merge_snapshots",
    "render_dashboard",
    "render_explanation",
    "resolve",
    "to_prometheus",
    "trace_id",
    "validate_prometheus_text",
]
