"""Structured, leveled logging for the gateway runtime.

Silent state changes are the enemy of an unattended deployment: before
this module, a quarantined device or a force-released reorder buffer left
no trace anywhere.  Every runtime-visible state change now emits one
*record* — an event name plus flat key/value fields — through a
:class:`TelemetryLogger`, rendered either human-readable (default) or as
one JSON object per line for machine ingestion::

    WARNING repro.streaming.supervisor device_quarantined device=fridge reason=silence
    {"level": "warning", "logger": "repro.streaming.supervisor",
     "event": "device_quarantined", "device": "fridge", "reason": "silence"}

Configuration is global (one gateway process, one log policy): level
threshold, format, and output stream, set via :func:`configure`.  The
default threshold is ``warning`` so the library stays quiet under tests
and embedding; the CLI raises it to ``info``.  Records go to *stderr* —
stdout stays reserved for a command's primary results.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional, TextIO

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

HUMAN_FORMAT = "human"
JSON_FORMAT = "json"


@dataclass(frozen=True)
class LogConfig:
    """Global logging policy."""

    level: str = "warning"
    format: str = HUMAN_FORMAT  # "human" or "json"
    #: ``None`` means "sys.stderr at emit time" — late binding keeps
    #: pytest's capture and shell redirection working.
    stream: Optional[TextIO] = None
    #: Stamp wall-clock ``ts`` on records (off in tests for stable output).
    timestamps: bool = True

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"unknown log level {self.level!r}")
        if self.format not in (HUMAN_FORMAT, JSON_FORMAT):
            raise ValueError(f"unknown log format {self.format!r}")


_config = LogConfig()


def configure(**changes) -> LogConfig:
    """Update the global policy; returns the *previous* config so callers
    (tests, mostly) can restore it in a ``finally``."""
    global _config
    previous = _config
    _config = replace(_config, **changes)
    return previous


def current_config() -> LogConfig:
    return _config


class _Throttle:
    """Per-event rate limit state (see :meth:`TelemetryLogger.throttled`)."""

    __slots__ = ("per_seconds", "window_start", "suppressed")

    def __init__(self, per_seconds: float) -> None:
        self.per_seconds = float(per_seconds)
        self.window_start: Optional[float] = None
        self.suppressed = 0


class TelemetryLogger:
    """Named emitter of structured records; cheap when below threshold."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._throttles: Dict[str, _Throttle] = {}

    def is_enabled(self, level: str) -> bool:
        return LEVELS[level] >= LEVELS[_config.level]

    def log(self, level: str, event: str, **fields) -> None:
        config = _config
        if LEVELS[level] < LEVELS[config.level]:
            return
        stream = config.stream if config.stream is not None else sys.stderr
        if config.format == JSON_FORMAT:
            record: Dict = {"level": level, "logger": self.name, "event": event}
            if config.timestamps:
                record["ts"] = time.time()
            record.update(fields)
            stream.write(json.dumps(record, default=str, sort_keys=False) + "\n")
        else:
            parts = [level.upper(), self.name, event]
            parts += [f"{k}={_human(v)}" for k, v in fields.items()]
            stream.write(" ".join(parts) + "\n")

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    def throttled(
        self,
        level: str,
        event: str,
        per_seconds: float,
        *,
        clock=time.monotonic,
        **fields,
    ) -> bool:
        """Emit *event* at most once per *per_seconds*; count the rest.

        Hot-path warnings (a reorder buffer force-releasing under a flood,
        an ingest guard dropping a runaway device) can fire thousands of
        times a second — each one individually useful, together a log-drown.
        The first record in a window is emitted; repeats inside the window
        are counted, and the next emitted record carries a ``suppressed=N``
        field summarising what was swallowed.  Returns ``True`` when the
        record was emitted.

        *clock* is injectable for tests; throttle state is per
        ``(logger, event)`` pair.  Records below the level threshold are
        emitted-as-suppressed for free (the throttle advances so a later
        threshold drop does not burst).
        """
        if per_seconds <= 0:
            self.log(level, event, **fields)
            return True
        throttle = self._throttles.get(event)
        if throttle is None or throttle.per_seconds != float(per_seconds):
            throttle = self._throttles[event] = _Throttle(per_seconds)
        now = clock()
        if (
            throttle.window_start is not None
            and now - throttle.window_start < throttle.per_seconds
        ):
            throttle.suppressed += 1
            return False
        if throttle.suppressed:
            fields["suppressed"] = throttle.suppressed
        throttle.window_start = now
        throttle.suppressed = 0
        self.log(level, event, **fields)
        return True


def _human(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


_loggers: Dict[str, TelemetryLogger] = {}


def get_logger(name: str) -> TelemetryLogger:
    """Named-logger registry (one instance per name, like ``logging``)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = TelemetryLogger(name)
    return logger
