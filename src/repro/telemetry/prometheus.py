"""Prometheus text exposition of a metrics snapshot — and its validator.

:func:`to_prometheus` renders a :meth:`MetricsRegistry.snapshot` dict in
the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ version
0.0.4: ``# HELP``/``# TYPE`` headers, one sample per line, histograms as
cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.  A gateway
(or the ``repro metrics`` CLI) can serve the output to any Prometheus
scraper unmodified.

:func:`validate_prometheus_text` is the matching line-format checker —
deliberately dependency-free so CI can assert "the export parses" without
installing a Prometheus client.  It validates metric-name and label
syntax, float-parsable values, histogram bucket monotonicity, and
``TYPE``/sample-name consistency; it raises :class:`ValueError` naming the
offending line.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def to_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot as Prometheus text exposition format."""
    lines: List[str] = []
    for name, entry in snapshot.get("metrics", {}).items():
        kind = entry["type"]
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = entry["buckets"]
            for row in entry["series"]:
                labels = row.get("labels", {})
                cumulative = 0
                for bound, count in zip(bounds, row["bucket_counts"]):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                bucket_labels = dict(labels)
                bucket_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_labels_text(bucket_labels)} {row['count']}"
                )
                lines.append(f"{name}_sum{_labels_text(labels)} {_format_value(row['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)} {row['count']}")
        else:
            for row in entry["series"]:
                lines.append(
                    f"{name}{_labels_text(row.get('labels', {}))} "
                    f"{_format_value(row['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # raises ValueError on garbage, accepts NaN


def validate_prometheus_text(text: str) -> int:
    """Line-format validation; returns the number of sample lines.

    Checks, per line: comment structure (``# HELP``/``# TYPE`` only, with a
    valid metric name and type), header ordering (at most one ``HELP`` and
    one ``TYPE`` per family, ``HELP`` before ``TYPE``, both before the
    family's first sample), sample syntax (name, optional well-formed
    label block, float value), that every sample's base name was announced
    by a ``TYPE`` header, and that histogram ``_bucket`` series are
    cumulative (non-decreasing with ``le``).  Raises :class:`ValueError`
    naming the first offending line.
    """
    declared: Dict[str, str] = {}
    helped: set = set()
    sampled: set = set()
    samples = 0
    last_bucket: Dict[str, float] = {}  # series-key -> last cumulative count
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: invalid metric name {parts[2]!r}")
            if parts[2] in sampled:
                raise ValueError(
                    f"line {lineno}: {parts[1]} for {parts[2]!r} after its samples"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in VALID_TYPES:
                    raise ValueError(f"line {lineno}: invalid TYPE line: {line!r}")
                if parts[2] in declared:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                    )
                declared[parts[2]] = parts[3]
            else:
                if parts[2] in helped:
                    raise ValueError(
                        f"line {lineno}: duplicate HELP for {parts[2]!r}"
                    )
                if parts[2] in declared:
                    raise ValueError(
                        f"line {lineno}: HELP for {parts[2]!r} after its TYPE"
                    )
                helped.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for item in _split_labels(match.group("labels"), lineno):
                label = _LABEL_RE.match(item)
                if label is None:
                    raise ValueError(f"line {lineno}: malformed label {item!r}")
                labels[label.group("name")] = label.group("value")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparsable value {match.group('value')!r}"
            ) from None
        base = _base_name(name, declared)
        if base is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE header")
        sampled.add(base)
        if declared[base] == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise ValueError(f"line {lineno}: histogram bucket without le label")
            key = name + repr(sorted((k, v) for k, v in labels.items() if k != "le"))
            if value < last_bucket.get(key, 0.0):
                raise ValueError(
                    f"line {lineno}: histogram buckets not cumulative for {name}"
                )
            last_bucket[key] = value
        samples += 1
    return samples


def _split_labels(body: str, lineno: int) -> List[str]:
    """Split a label block on commas outside quoted values."""
    items: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        items.append("".join(current))
    return [item for item in items if item]


def _base_name(sample_name: str, declared: Dict[str, str]) -> str | None:
    if sample_name in declared:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) == "histogram":
                return base
    return None
