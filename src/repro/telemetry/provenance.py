"""Alert provenance: stable trace ids + per-alert evidence chains.

An alert that only says *what* was detected is a dead end at 3 a.m.; the
operator's question is always *why* — which windows, which group distances,
which zero-probability transition, what quarantine/refresh state.  The
:class:`ProvenanceRecorder` answers it: every alert a runtime emits gets a
stable ``trace_id`` (blake2b over ``home/seq`` + alert content — the exact
id scheme the durable outbox stamps on delivered alerts, so the two always
agree) and a compact, schema-versioned evidence record:

* the contributing window(s): index, bounds, encoded state-set mask;
* the correlation check's verdict: main group, candidate groups with their
  Hamming distances, the distance bound in force;
* every transition violation with its probability terms (count, row total,
  probability) straight from the fitted :class:`TransitionModel`;
* runtime context at emission time: trained-group count, quarantine set,
  applied refresh batches;
* event-time detection latency (alert time minus the violating window's
  close).

Records are held in a bounded per-home ring buffer and are **byte
deterministic**: every field derives from event time and fitted state,
never wall clock, so two identical runs — or a run cut by a checkpoint, or
a crash-recovery replay — produce identical records.  The durability layer
journals them next to the alerts; ``repro explain`` renders one as a causal
narrative.  :data:`NULL_PROVENANCE` is the disabled twin (cf.
``NULL_REGISTRY``): recording costs nothing when off.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Deque, List, Optional

PROVENANCE_SCHEMA = "dice-provenance/1"

#: Default ring-buffer capacity: the most recent alerts whose evidence an
#: operator can still pull from a live (non-durable) runtime.
DEFAULT_CAPACITY = 256


def alert_body(home_id: str, seq: int, alert) -> dict:
    """Canonical JSON body of one alert, keyed by its home and sequence.

    Duck-typed over the alert (``kind``/``time``/``check``/``cases``/
    ``devices``/``converged``) so this module stays import-cycle-free of
    the streaming layer.  The durable outbox builds its delivery records
    from the same body, which is what makes :func:`trace_id` stable across
    the in-memory ring, the provenance journal and the outbox WAL.
    """
    return {
        "home": home_id,
        "seq": int(seq),
        "kind": alert.kind,
        "time": alert.time,
        "check": alert.check,
        "cases": [case.value for case in alert.cases],
        "devices": sorted(alert.devices),
        "converged": alert.converged,
    }


def trace_id(body: dict) -> str:
    """Stable content id of one alert body (32 hex chars).

    blake2b over the compact sorted-keys JSON encoding — the same digest
    the outbox uses for delivery dedup, so ``repro explain <id>`` accepts
    ids read off an alerts file verbatim.
    """
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def canonical_record_bytes(record: dict) -> bytes:
    """The byte encoding determinism is asserted against (journal payload)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


class ProvenanceRecorder:
    """Bounded per-home evidence recorder for one runtime's alerts.

    The runtime drives it: window evidence accumulates in :attr:`chain`
    while an identification session is open, and :meth:`record` seals a
    finished record per alert, in emission order.  ``seq`` counts exactly
    the alerts the runtime emits, which provably matches the durable
    layer's ``alert_seq`` (both count the same alerts in the same order) —
    so the trace id computed here equals the outbox record id.
    """

    enabled = True

    def __init__(
        self, home_id: str = "home", capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.home_id = home_id
        self.capacity = int(capacity)
        self.seq = 0
        self._ring: Deque[dict] = deque(maxlen=self.capacity)
        #: Records not yet drained by a durability layer.  Bounded like the
        #: ring so a non-durable runtime (nothing ever drains) stays flat.
        self._unjournaled: Deque[dict] = deque(maxlen=self.capacity)
        #: Open-session window evidence, oldest first (trigger window → the
        #: window that concludes the identification).
        self.chain: List[dict] = []

    # ------------------------------------------------------------------ #

    def record(
        self,
        alert,
        *,
        windows: List[dict],
        latency: float = 0.0,
        context: Optional[dict] = None,
    ) -> dict:
        """Seal one alert's evidence record and append it to the ring."""
        self.seq += 1
        body = alert_body(self.home_id, self.seq, alert)
        record = {
            "schema": PROVENANCE_SCHEMA,
            "id": trace_id(body),
            "alert": body,
            "detection_latency_seconds": max(0.0, float(latency)),
            "context": dict(context) if context else {},
            "windows": list(windows),
        }
        self._ring.append(record)
        self._unjournaled.append(record)
        return record

    def records(self) -> List[dict]:
        """Retained records, oldest first."""
        return list(self._ring)

    def last(self) -> Optional[dict]:
        return self._ring[-1] if self._ring else None

    def find(self, selector: str) -> Optional[dict]:
        """Newest retained record whose trace id starts with *selector*."""
        for record in reversed(self._ring):
            if record["id"].startswith(selector):
                return record
        return None

    def drain_unjournaled(self) -> List[dict]:
        """Hand pending records to a durability layer (clears the queue)."""
        drained = list(self._unjournaled)
        self._unjournaled.clear()
        return drained

    # -- checkpoint support ---------------------------------------------- #

    def state_dict(self) -> dict:
        """JSON-serializable state: seq, retained records, open chain."""
        return {
            "capacity": self.capacity,
            "seq": self.seq,
            "records": list(self._ring),
            "chain": list(self.chain),
        }

    def load_state(self, state: Optional[dict]) -> None:
        """Restore from :meth:`state_dict`; ``None`` (a pre-provenance
        checkpoint) resets to empty."""
        self._ring.clear()
        self._unjournaled.clear()
        self.chain = []
        self.seq = 0
        if state is None:
            return
        self.seq = int(state["seq"])
        self._ring.extend(state["records"])
        self.chain = list(state["chain"])


class _NullProvenance:
    """Disabled twin: every operation is a no-op (cf. ``NULL_REGISTRY``).

    Runtimes guard all chain mutation behind :attr:`enabled`, so the shared
    singleton's ``chain`` is never written to.
    """

    enabled = False
    home_id = "home"
    seq = 0
    capacity = 0
    chain: List[dict] = []

    def record(self, alert, *, windows, latency=0.0, context=None) -> None:
        return None

    def records(self) -> List[dict]:
        return []

    def last(self) -> None:
        return None

    def find(self, selector: str) -> None:
        return None

    def drain_unjournaled(self) -> List[dict]:
        return []

    def state_dict(self) -> None:
        return None

    def load_state(self, state) -> None:
        pass


#: The shared "provenance off" switch.
NULL_PROVENANCE = _NullProvenance()


# ---------------------------------------------------------------------- #
# Narrative rendering (``repro explain``)
# ---------------------------------------------------------------------- #

_HEALTH_KINDS = ("device_silence", "device_errors", "device_recovered")


def _fmt_devices(devices: List[str]) -> str:
    return ", ".join(devices) if devices else "(none narrowed)"


def _render_window(evidence: dict, indent: str = "    ") -> List[str]:
    lines: List[str] = []
    corr = evidence.get("correlation", {})
    bound = corr.get("max_distance")
    head = (
        f"{indent}window {evidence.get('window')} "
        f"[{evidence.get('start')}, {evidence.get('end')}) "
        f"mask 0x{evidence.get('mask')}"
    )
    lines.append(head)
    if corr.get("violation"):
        candidates = corr.get("candidates", [])
        if candidates:
            near = ", ".join(
                f"group {g} at Hamming distance {d}" for g, d in candidates
            )
            lines.append(
                f"{indent}  correlation violation: no trained group within "
                f"distance {bound}; nearest: {near}"
            )
        else:
            lines.append(
                f"{indent}  correlation violation: no trained group within "
                f"distance {bound} (no candidates at all)"
            )
    else:
        lines.append(
            f"{indent}  matched trained group {corr.get('main_group')} "
            f"(distance 0, bound {bound})"
        )
    for violation in evidence.get("transitions", []):
        case = violation.get("case")
        if case == "g2g":
            edge = (
                f"group {violation.get('prev_group')} -> "
                f"group {violation.get('cur_group')}"
            )
        elif case == "g2a":
            edge = (
                f"group {violation.get('prev_group')} -> "
                f"actuator {violation.get('actuator')}"
            )
        else:
            edge = (
                f"actuator {violation.get('actuator')} -> "
                f"group {violation.get('cur_group')}"
            )
        lines.append(
            f"{indent}  transition violation ({case}): {edge} has learned "
            f"probability {violation.get('probability')} "
            f"({violation.get('count')}/{violation.get('row_total')} "
            f"observations in that row)"
        )
    return lines


def render_explanation(record: dict) -> str:
    """Human-readable causal narrative for one provenance record."""
    alert = record.get("alert", {})
    kind = alert.get("kind")
    lines = [
        f"alert {record.get('id')}",
        f"  {kind} at t={alert.get('time')} "
        f"(home {alert.get('home')}, seq {alert.get('seq')})",
    ]
    context = record.get("context", {})
    if kind == "detection":
        lines.append(
            f"  raised by the {alert.get('check')} check on the window below"
        )
    elif kind == "identification":
        devices = _fmt_devices(alert.get("devices", []))
        state = "converged" if alert.get("converged") else "did not converge"
        lines.append(
            f"  probable faulty device(s): {devices} — session {state}, "
            f"triggered by the {alert.get('check')} check"
        )
    elif kind in _HEALTH_KINDS:
        device = context.get("device", "?")
        reason = context.get("reason", "?")
        lines.append(
            f"  device {device}: {context.get('previous')} -> "
            f"{context.get('current')} (reason: {reason})"
        )
    latency = record.get("detection_latency_seconds", 0.0)
    lines.append(
        f"  detection latency: {latency} s between the deciding window "
        f"closing and the event that closed it"
    )
    ctx_bits = []
    if "groups" in context:
        ctx_bits.append(f"{context['groups']} trained groups")
    if "max_distance" in context:
        ctx_bits.append(f"candidate distance bound {context['max_distance']}")
    quarantined = context.get("quarantined")
    if quarantined is not None:
        ctx_bits.append(
            "quarantined: " + (", ".join(quarantined) if quarantined else "none")
        )
    if "refresh_applied" in context:
        ctx_bits.append(f"refresh batches applied: {context['refresh_applied']}")
    if ctx_bits:
        lines.append("  context: " + "; ".join(ctx_bits))
    windows = record.get("windows", [])
    if windows:
        lines.append(f"  evidence chain ({len(windows)} window(s)):")
        for evidence in windows:
            lines.extend(_render_window(evidence))
    else:
        lines.append("  evidence chain: (no window evidence — health alert)")
    return "\n".join(lines)
