"""Zero-dependency metrics registry: counters, gauges, histograms.

The gateway runs unattended, so every subsystem that matters at 3 a.m. —
the correlation-scan hot path, the ingest guard, the reorder buffer, the
device supervisor — records what it does into one
:class:`MetricsRegistry`.  Three metric families cover the needs:

* :class:`Counter` — monotone totals (events ingested, drops by reason,
  cache hits).  Counters survive gateway restarts via the versioned
  checkpoint (:meth:`MetricsRegistry.counters_snapshot` /
  :meth:`MetricsRegistry.restore_counters`).
* :class:`Gauge` — point-in-time levels (reorder-buffer depth, devices
  per supervisor state).  Gauges are refreshed by *collectors* — callbacks
  that run at snapshot time — so hot paths never pay for them.
* :class:`Histogram` — fixed-bucket latency distributions (per-window
  stage cost).  Buckets are cumulative at export time, Prometheus-style.

Everything is thread-safe behind one registry lock, snapshot-able as plain
JSON (:meth:`MetricsRegistry.snapshot`), and mergeable across processes
(:func:`merge_snapshots`) so parallel evaluation workers can be summed at
join.  :data:`NULL_REGISTRY` is the disabled twin: every operation is a
no-op, which is what the telemetry-parity and overhead guarantees are
measured against.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

SNAPSHOT_SCHEMA = "dice-metrics/1"

#: Default latency buckets (seconds): 100 µs .. 10 s, roughly 1-2.5-5 per
#: decade — wide enough for a Raspberry-Py-class gateway, fine enough to
#: see the correlation scan move.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Series:
    """One (metric, label-values) time series; the object hot paths hold.

    Instances are handed out by :meth:`_Metric.labels` and cached there, so
    an instrumented loop resolves its series once and then pays one lock +
    one float op per update.
    """

    __slots__ = ("_metric", "_labels", "value", "bucket_counts", "sum", "count")

    def __init__(self, metric: "_Metric", labels: Tuple[str, ...]) -> None:
        self._metric = metric
        self._labels = labels
        self.value = 0.0
        if metric.kind == "histogram":
            self.bucket_counts = [0] * (len(metric.buckets) + 1)
            self.sum = 0.0
            self.count = 0

    # -- counter / gauge ------------------------------------------------- #

    def inc(self, amount: float = 1.0) -> None:
        with self._metric._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        with self._metric._lock:
            self.value = float(value)

    def get(self) -> float:
        return self.value

    # -- histogram ------------------------------------------------------- #

    def observe(self, value: float) -> None:
        metric = self._metric
        index = bisect_left(metric.buckets, value)
        with metric._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


class _NullSeries:
    """No-op series handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def get(self) -> float:
        return 0.0

    def observe(self, value: float) -> None:
        pass


class _Metric:
    """One metric family: a name, a kind, and its labelled series."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self._lock = registry._lock
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._series: Dict[Tuple[str, ...], _Series] = {}
        if not labelnames:
            # Label-less families materialise their single series eagerly so
            # it shows up in exports even before the first update.
            self._series[()] = _Series(self, ())

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None  # restored by MetricsRegistry.__setstate__
        return state

    def labels(self, **labels: str) -> _Series:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, _Series(self, key))
        return series

    # Convenience pass-throughs for label-less families.

    def inc(self, amount: float = 1.0) -> None:
        self._series[()].inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._series[()].dec(amount)

    def set(self, value: float) -> None:
        self._series[()].set(value)

    def get(self) -> float:
        return self._series[()].get()

    def observe(self, value: float) -> None:
        self._series[()].observe(value)

    # -- export ---------------------------------------------------------- #

    def _snapshot_series(self) -> List[dict]:
        rows = []
        for key in sorted(self._series):
            series = self._series[key]
            row: dict = {"labels": dict(zip(self.labelnames, key))}
            if self.kind == "histogram":
                row["bucket_counts"] = list(series.bucket_counts)
                row["sum"] = series.sum
                row["count"] = series.count
            else:
                row["value"] = series.value
            rows.append(row)
        return rows


class _NullMetric:
    """No-op metric family handed out by a disabled registry."""

    __slots__ = ()
    _null = _NullSeries()

    def labels(self, **labels: str) -> _NullSeries:
        return self._null

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def get(self) -> float:
        return 0.0

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumenting
    modules can declare the same family independently and share it.  A
    disabled registry (``enabled=False``) returns no-op metrics — the
    telemetry-off configuration costs nothing and records nothing.

    Registries pickle (the lock and collectors are dropped and rebuilt) so
    an instrumented detector can cross a process boundary; collectors are
    process-local by nature and do not survive the trip.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.RLock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._collectors: "Dict[str, Callable[[], None]]" = {}

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None
        state["_collectors"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        for metric in self._metrics.values():
            metric._lock = self._lock

    # -- family creation -------------------------------------------------- #

    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Iterable[str],
        buckets: Tuple[float, ...] = (),
    ):
        if not self.enabled:
            return _NULL_METRIC
        labelnames = tuple(labelnames)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _Metric(self, name, help, kind, labelnames, buckets)
                self._metrics[name] = metric
            elif metric.kind != kind or metric.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} re-registered as {kind}{labelnames} "
                    f"but exists as {metric.kind}{metric.labelnames}"
                )
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        return self._family(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        return self._family(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
    ):
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        return self._family(name, help, "histogram", labelnames, buckets)

    # -- collectors -------------------------------------------------------- #

    def register_collector(self, key: str, fn: Callable[[], None]) -> None:
        """Register a callback run before every snapshot (gauge refresh).

        Keyed registration: a new pipeline registering under an existing key
        replaces the previous collector, so re-fitting in one process does
        not accumulate dead callbacks.
        """
        if self.enabled:
            self._collectors[key] = fn

    def collect(self) -> None:
        for fn in list(self._collectors.values()):
            fn()

    # -- export ------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of every family and series."""
        self.collect()
        with self._lock:
            metrics = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry = {
                    "type": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": metric._snapshot_series(),
                }
                if metric.kind == "histogram":
                    entry["buckets"] = list(metric.buckets)
                metrics[name] = entry
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def counters_snapshot(self) -> dict:
        """Snapshot restricted to counter families (checkpoint payload)."""
        full = self.snapshot()
        full["metrics"] = {
            name: entry
            for name, entry in full["metrics"].items()
            if entry["type"] == "counter"
        }
        return full

    def restore_counters(self, snapshot: dict) -> None:
        """Set counter series to the values of a prior snapshot.

        Used by checkpoint resume on a fresh process so monotonic totals
        continue instead of resetting; restoring onto a registry that has
        already counted would overwrite, not add.
        """
        if not self.enabled:
            return
        for name, entry in snapshot.get("metrics", {}).items():
            if entry.get("type") != "counter":
                continue
            family = self.counter(name, entry.get("help", ""), entry.get("labelnames", ()))
            for row in entry.get("series", []):
                family.labels(**row.get("labels", {})).set(row.get("value", 0.0))

    def reset(self) -> None:
        """Drop every family, series and collector (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


#: The disabled registry: a shared, importable "telemetry off" switch.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def merge_snapshots(base: dict, other: dict) -> dict:
    """Sum two snapshots: counters and histograms add, gauges take *other*.

    The worker-join primitive: parallel evaluation (or a fleet of gateways)
    produces one snapshot each; merging them yields the totals a single
    sequential run would have recorded.  Families present on either side
    survive; mismatched kinds or bucket layouts are an error.
    """
    merged = {"schema": SNAPSHOT_SCHEMA, "metrics": {}}
    names = sorted(set(base.get("metrics", {})) | set(other.get("metrics", {})))
    for name in names:
        a = base.get("metrics", {}).get(name)
        b = other.get("metrics", {}).get(name)
        if a is None or b is None:
            merged["metrics"][name] = _copy_entry(a if a is not None else b)
            continue
        if a["type"] != b["type"]:
            raise ValueError(f"cannot merge {name!r}: {a['type']} vs {b['type']}")
        if a["type"] == "histogram" and a.get("buckets") != b.get("buckets"):
            raise ValueError(f"cannot merge {name!r}: bucket layouts differ")
        entry = _copy_entry(a)
        series = {_label_key(row): dict(row) for row in entry["series"]}
        for row in b["series"]:
            key = _label_key(row)
            mine = series.get(key)
            if mine is None:
                series[key] = dict(row)
            elif a["type"] == "histogram":
                mine["bucket_counts"] = [
                    x + y for x, y in zip(mine["bucket_counts"], row["bucket_counts"])
                ]
                mine["sum"] += row["sum"]
                mine["count"] += row["count"]
            elif a["type"] == "counter":
                mine["value"] += row["value"]
            else:  # gauge: point-in-time, the newer snapshot wins
                mine["value"] = row["value"]
        entry["series"] = [series[k] for k in sorted(series)]
        merged["metrics"][name] = entry
    return merged


def merge_many(snapshots: Sequence[dict]) -> dict:
    """Fold any number of snapshots with :func:`merge_snapshots`.

    The fleet-join convenience: a gateway hosting hundreds of homes (one
    registry each) produces one fleet-wide snapshot.  An empty sequence
    yields an empty snapshot, one snapshot is copied unchanged.
    """
    merged = {"schema": SNAPSHOT_SCHEMA, "metrics": {}}
    for snapshot in snapshots:
        merged = merge_snapshots(merged, snapshot)
    return merged


def _label_key(row: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(row.get("labels", {}).items()))


def _copy_entry(entry: Optional[dict]) -> dict:
    assert entry is not None
    out = dict(entry)
    out["series"] = [dict(row) for row in entry["series"]]
    return out
