"""Time-series sampling over metrics snapshots (the dashboard's engine).

A :class:`~repro.telemetry.MetricsRegistry` snapshot is a point-in-time
document; a dashboard needs *rates* and *percentiles*.  The
:class:`SnapshotSampler` keeps a bounded ring of ``(t, snapshot)`` pairs
and derives both on demand:

* counter **rates** — the delta between the two newest samples divided by
  their time gap (optionally split per label value, e.g. events/s per
  fleet shard);
* histogram **quantiles** — linear interpolation over the cumulative
  bucket counts of the newest snapshot, Prometheus ``histogram_quantile``
  style;
* **SLO burn** — an observed bad/total ratio divided by the budgeted
  ratio, so ``1.0`` means "burning exactly the error budget".

Everything is a pure function of the sampled snapshots: the sampler never
reads clocks or counters itself, which keeps it trivially testable and
shareable between ``repro top`` and ``repro metrics --watch``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

#: Default ring capacity: at the dashboard's default 2 s refresh this is
#: four minutes of history.
DEFAULT_SAMPLES = 120


def _series_rows(snapshot: dict, name: str) -> List[dict]:
    entry = snapshot.get("metrics", {}).get(name)
    if entry is None:
        return []
    return entry.get("series", [])


def _matches(row: dict, labels: Optional[dict]) -> bool:
    if not labels:
        return True
    have = row.get("labels", {})
    return all(have.get(k) == v for k, v in labels.items())


def counter_total(snapshot: dict, name: str, labels: Optional[dict] = None) -> float:
    """Sum of a counter/gauge family's matching series in one snapshot."""
    return sum(
        row.get("value", 0.0)
        for row in _series_rows(snapshot, name)
        if _matches(row, labels)
    )


def label_totals(snapshot: dict, name: str, label: str) -> Dict[str, float]:
    """Per-label-value totals of one family (e.g. events per shard)."""
    totals: Dict[str, float] = {}
    for row in _series_rows(snapshot, name):
        key = row.get("labels", {}).get(label)
        if key is None:
            continue
        totals[key] = totals.get(key, 0.0) + row.get("value", 0.0)
    return totals


def histogram_quantile(
    snapshot: dict, name: str, q: float, labels: Optional[dict] = None
) -> Optional[float]:
    """Prometheus-style quantile from cumulative bucket counts.

    Linear interpolation within the bucket that crosses the target rank;
    the open-ended overflow bucket reports the largest finite bound (there
    is nothing sound to interpolate towards).  ``None`` when the family is
    missing or has no observations.
    """
    entry = snapshot.get("metrics", {}).get(name)
    if entry is None or entry.get("type") != "histogram":
        return None
    bounds = entry.get("buckets", [])
    counts = [0] * (len(bounds) + 1)
    for row in entry.get("series", []):
        if not _matches(row, labels):
            continue
        for i, c in enumerate(row.get("bucket_counts", [])):
            counts[i] += c
    total = sum(counts)
    if total == 0:
        return None
    q = min(1.0, max(0.0, q))
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(bounds):
                return float(bounds[-1]) if bounds else None
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            within = (rank - cumulative) / count
            return float(lower + (upper - lower) * within)
        cumulative += count
    return float(bounds[-1]) if bounds else None


class SnapshotSampler:
    """Bounded ring of timestamped snapshots with rate/quantile views."""

    def __init__(self, capacity: int = DEFAULT_SAMPLES) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2 (rates need a pair)")
        self.capacity = int(capacity)
        self._samples: Deque[Tuple[float, dict]] = deque(maxlen=self.capacity)

    def add(self, t: float, snapshot: dict) -> None:
        """Record one snapshot taken at time *t* (monotone in practice;
        out-of-order samples simply yield ``None`` rates)."""
        self._samples.append((float(t), snapshot))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def latest(self) -> Optional[dict]:
        return self._samples[-1][1] if self._samples else None

    @property
    def span_seconds(self) -> float:
        """Time covered by the retained samples."""
        if len(self._samples) < 2:
            return 0.0
        return self._samples[-1][0] - self._samples[0][0]

    # -- rates ----------------------------------------------------------- #

    def _newest_pair(self) -> Optional[Tuple[Tuple[float, dict], Tuple[float, dict]]]:
        if len(self._samples) < 2:
            return None
        return self._samples[-2], self._samples[-1]

    def counter_rate(
        self, name: str, labels: Optional[dict] = None
    ) -> Optional[float]:
        """Per-second increase between the two newest samples.

        ``None`` without two samples or with a non-positive time gap; a
        negative delta (counter reset upstream) clamps to ``0.0`` rather
        than reporting a nonsense negative rate.
        """
        pair = self._newest_pair()
        if pair is None:
            return None
        (t0, s0), (t1, s1) = pair
        dt = t1 - t0
        if dt <= 0:
            return None
        delta = counter_total(s1, name, labels) - counter_total(s0, name, labels)
        return max(0.0, delta) / dt

    def label_rates(self, name: str, label: str) -> Dict[str, float]:
        """Per-label-value rates (e.g. ``{"0": 812.0, "1": 790.5}``)."""
        pair = self._newest_pair()
        if pair is None:
            return {}
        (t0, s0), (t1, s1) = pair
        dt = t1 - t0
        if dt <= 0:
            return {}
        before = label_totals(s0, name, label)
        after = label_totals(s1, name, label)
        return {
            key: max(0.0, after[key] - before.get(key, 0.0)) / dt
            for key in sorted(after)
        }

    def gauge_value(self, name: str, labels: Optional[dict] = None) -> float:
        """Latest value of a gauge family (summed over matching series)."""
        latest = self.latest
        if latest is None:
            return 0.0
        return counter_total(latest, name, labels)

    def quantiles(
        self, name: str, qs: Sequence[float], labels: Optional[dict] = None
    ) -> Dict[float, Optional[float]]:
        """Quantiles of a histogram family in the newest snapshot."""
        latest = self.latest
        if latest is None:
            return {q: None for q in qs}
        return {q: histogram_quantile(latest, name, q, labels) for q in qs}

    def burn_rate(
        self, bad_name: str, total_name: str, budget_ratio: float
    ) -> Optional[float]:
        """SLO burn over the newest interval: (bad/total) / budget.

        ``1.0`` = consuming the error budget exactly as provisioned,
        ``>1`` = burning faster.  ``None`` without two samples; an idle
        interval (no total traffic) reports ``0.0`` — no traffic burns no
        budget.
        """
        if budget_ratio <= 0:
            raise ValueError("budget_ratio must be positive")
        pair = self._newest_pair()
        if pair is None:
            return None
        (_, s0), (_, s1) = pair
        bad = counter_total(s1, bad_name) - counter_total(s0, bad_name)
        total = counter_total(s1, total_name) - counter_total(s0, total_name)
        if total <= 0:
            return 0.0
        return max(0.0, bad) / total / budget_ratio


# ---------------------------------------------------------------------- #
# Dashboard rendering (``repro top``)
# ---------------------------------------------------------------------- #

#: Ingest-drop error budget the burn line is measured against: one drop
#: per hundred dispatched events.
DROP_BUDGET_RATIO = 0.01

_LATENCY_QS = (0.5, 0.95, 0.99)


def _fmt_rate(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.1f}/s"


def _fmt_seconds(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.3g} s"


def render_dashboard(sampler: SnapshotSampler) -> str:
    """The ``repro top`` screen: one multi-line text frame per refresh.

    Pure function of the sampler's contents — rates need two samples, so
    the first frame after startup shows ``n/a`` where a delta is required.
    """
    lines = [
        f"DICE top — {len(sampler)} sample(s), "
        f"{sampler.span_seconds:.1f} s of history"
    ]
    shard_rates = sampler.label_rates("dice_fleet_events_total", "shard")
    if shard_rates:
        total = sum(shard_rates.values())
        per_shard = "  ".join(
            f"shard {shard}: {rate:.1f}/s" for shard, rate in shard_rates.items()
        )
        lines.append(f"events:    {total:.1f}/s total  ({per_shard})")
    else:
        lines.append(
            f"windows:   {_fmt_rate(sampler.counter_rate('dice_windows_total'))}"
        )
    alert_rates = sampler.label_rates("dice_alerts_total", "kind")
    if alert_rates:
        per_kind = "  ".join(
            f"{kind}: {rate:.2f}/s" for kind, rate in alert_rates.items()
        )
        lines.append(f"alerts:    {sum(alert_rates.values()):.2f}/s total  ({per_kind})")
    else:
        lines.append(
            f"alerts:    {_fmt_rate(sampler.counter_rate('dice_alerts_total'))}"
        )
    lines.append(
        f"drops:     {_fmt_rate(sampler.counter_rate('dice_ingest_dropped_total'))}"
        f"  force-released: "
        f"{_fmt_rate(sampler.counter_rate('dice_reorder_force_released_total'))}"
    )
    qs = sampler.quantiles("dice_detection_latency_seconds", _LATENCY_QS)
    lines.append(
        "latency:   "
        + "  ".join(
            f"p{int(q * 100)}: {_fmt_seconds(qs[q])}" for q in _LATENCY_QS
        )
    )
    lines.append(
        f"reorder:   lag {sampler.gauge_value('dice_reorder_watermark_lag_seconds'):.1f} s"
        f"  pending {sampler.gauge_value('dice_reorder_pending'):.0f}"
    )
    total_name = (
        "dice_fleet_events_total" if shard_rates else "dice_windows_total"
    )
    burn = sampler.burn_rate(
        "dice_ingest_dropped_total", total_name, DROP_BUDGET_RATIO
    )
    budget_pct = DROP_BUDGET_RATIO * 100
    lines.append(
        f"SLO burn:  "
        + ("n/a" if burn is None else f"{burn:.2f}x")
        + f" of the {budget_pct:g}% drop budget"
    )
    return "\n".join(lines)
