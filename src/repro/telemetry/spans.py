"""Span-based stage tracing for the detection pipeline.

A *span* is one named, timed unit of work; spans nest, so a window handled
by the streaming runtime traces as::

    window                      1.9 ms
      correlation               1.6 ms
      transition                0.1 ms
      identification            0.2 ms

:class:`Tracer` keeps a per-thread stack for parent/child linkage, records
every finished span's wall-clock into the ``dice_span_seconds`` histogram
(labelled by span name) of its :class:`~repro.telemetry.MetricsRegistry`,
and retains a bounded ring of recent :class:`Span` records for inspection.
A tracer over a disabled registry is a no-op: ``trace`` returns a shared
null context manager, so instrumented code needs no ``if telemetry:``
branches.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from .registry import NULL_REGISTRY, MetricsRegistry

#: Histogram family every finished span reports into.
SPAN_HISTOGRAM = "dice_span_seconds"


@dataclass
class Span:
    """One finished (or in-flight) traced interval."""

    name: str
    parent: Optional[str]
    depth: int
    start: float  # perf_counter seconds; comparable within a process only
    duration: float = 0.0
    children: int = 0
    _tracer: "Tracer" = field(default=None, repr=False, compare=False)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self)


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()
    name = parent = None
    depth = children = 0
    start = duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested, timed spans that report into a metrics registry.

    ``keep`` bounds the finished-span ring; the ring holds the *most
    recent* spans in finish order (children finish before parents, so a
    window's stage spans precede its enclosing window span).
    """

    def __init__(
        self, metrics: Optional[MetricsRegistry] = None, keep: int = 256
    ) -> None:
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.enabled = self.metrics.enabled
        self.finished: Deque[Span] = deque(maxlen=keep)
        self._hist = self.metrics.histogram(
            SPAN_HISTOGRAM, "Wall-clock seconds per traced span", labelnames=("span",)
        )
        self._local = threading.local()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_local"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def trace(self, name: str) -> Span:
        """Open a span; use as a context manager.

        >>> with tracer.trace("correlation"):
        ...     checker.check(mask)
        """
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            parent=parent.name if parent else None,
            depth=len(stack),
            start=time.perf_counter(),
            _tracer=self,
        )
        if parent is not None:
            parent.children += 1
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        stack = self._stack()
        # Tolerate exits out of order (an exception unwinding several
        # levels): pop everything above the finishing span.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        self.finished.append(span)
        self._hist.labels(span=span.name).observe(span.duration)


#: Shared disabled tracer (the span analogue of ``NULL_REGISTRY``).
NULL_TRACER = Tracer(NULL_REGISTRY)
