"""Shared harness for the backend conformance suite.

Every test here is parametrized over ``available_backends()`` — register a
backend and it is automatically subjected to the full oracle battery
(streaming==batch parity, checkpoint-cut determinism, quarantine masking,
fleet shard parity, chaos crash-recovery).  The deployment generator is
the differential suite's (``tests/test_differential.py``), so the corpus
covers the same healthy and faulty stream shapes that caught real bugs
in the streaming, fleet and durability PRs.
"""

from __future__ import annotations

import pytest

from repro.core import available_backends, create_backend
from tests.test_differential import _build_registry, _build_trace, _perturb

HOUR = 3600.0
SEED = 20260808
PERTURBATIONS = [
    "identity",
    "drop_device",
    "drop_random",
    "duplicate",
    "corrupt",
]

#: Backends whose default configuration is expected to raise alerts on the
#: perturbed corpus.  The default ensemble (dice AND markov agreeing in the
#: same window, quorum 2) is deliberately conservative and may stay silent.
ALERTING_BACKENDS = ("dice", "markov")


@pytest.fixture(params=available_backends(), scope="session")
def backend_name(request):
    return request.param


def canon(alerts) -> str:
    """Byte rendering of an alert sequence, independent of hash seeds."""
    return repr(
        [
            (
                a.kind,
                a.time,
                a.check,
                a.cases,
                tuple(sorted(a.devices)),
                a.converged,
            )
            for a in alerts
        ]
    )


def build_deployment(
    rng,
    *,
    hours=8.0,
    phase=600.0,
    k_binary=4,
    with_numeric=True,
    with_actuator=True,
):
    """One seeded random deployment: registry, full trace, train/live split."""
    registry = _build_registry(k_binary, with_numeric, with_actuator)
    trace = _build_trace(rng, registry, hours, phase)
    split = trace.start + hours * HOUR * 0.7
    return registry, trace, split


def fit_backend(name, registry, trace, split, *, metrics=None):
    """A freshly fitted backend over the training prefix.

    Each runtime must get its *own* backend instance — transient streaming
    state (previous group/states, open sessions) lives on the backend, and
    sharing one instance across runtimes would leak state between them.
    Fitting is deterministic, so two fits over the same prefix carry the
    same model.
    """
    backend = create_backend(name, registry, metrics=metrics)
    return backend.fit(trace.slice(trace.start, split))


def perturbed_live(rng, trace, split, kind):
    return _perturb(rng, trace.slice(split, trace.end), kind)
