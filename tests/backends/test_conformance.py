"""The backend conformance battery: every registered backend, one contract.

Five properties, each an oracle the DICE pipeline already passes:

1. **streaming == batch** — replaying a live segment event-at-a-time
   through :class:`OnlineDice` raises exactly the alerts the backend's
   batch driver derives from the same segment in one pass;
2. **checkpoint-cut determinism** — cut the stream at a seeded-random
   event, serialize, restore onto a freshly fitted backend, replay the
   tail: the alert sequence and the *end-of-stream checkpoint bytes*
   match an uninterrupted run;
3. **quarantine masking** — a window checked with every sensor bit
   quarantined can never be a violation;
4. **hardened supervision** — a fail-stop victim under an aggressive
   supervisor policy quarantines cleanly and the stream completes;
5. **chaos crash-recovery** — the durability harness (journal + outbox +
   kill/recover) reaches alert parity with the uninterrupted oracle.

Fleet shard parity has its own module (``test_fleet_conformance.py``).
"""

import json
import random

import pytest

from repro import telemetry
from repro.core import create_backend
from repro.core.backend import _BatchWindow
from repro.faults import (
    baseline_standalone,
    build_chaos_deployment,
    run_standalone_trial,
)
from repro.streaming import (
    HardenedOnlineDice,
    OnlineDice,
    SupervisorPolicy,
    restore_runtime,
)
from tests.backends.conftest import (
    ALERTING_BACKENDS,
    HOUR,
    PERTURBATIONS,
    SEED,
    build_deployment,
    canon,
    fit_backend,
    perturbed_live,
)

PARITY_TRIALS = 10


class TestStreamingBatchParity:
    def test_streaming_matches_batch_on_perturbed_traces(self, backend_name):
        rng = random.Random(SEED)
        total = 0
        for trial in range(PARITY_TRIALS):
            registry, trace, split = build_deployment(
                rng,
                hours=rng.choice([6.0, 8.0]),
                phase=rng.choice([300.0, 600.0]),
                k_binary=rng.randrange(2, 5),
            )
            live = perturbed_live(
                rng, trace, split, PERTURBATIONS[trial % len(PERTURBATIONS)]
            )
            streamed = fit_backend(backend_name, registry, trace, split)
            batched = fit_backend(backend_name, registry, trace, split)
            s = canon(OnlineDice(streamed, start=live.start).replay(live))
            b = canon(batched.process_batch(live))
            assert s == b, f"{backend_name} diverged on trial {trial}"
            total += s.count("'detection'") + s.count("'identification'")
        if backend_name in ALERTING_BACKENDS:
            # The corpus must exercise the pipeline, not compare silence.
            assert total > 0, f"{backend_name} never alerted on the corpus"


class TestCheckpointCut:
    def _policy(self):
        return SupervisorPolicy(
            silence_seconds=4 * HOUR, quarantine_seconds=8 * HOUR
        )

    def _runtime(self, backend, start):
        return HardenedOnlineDice(
            backend,
            start=start,
            lateness_seconds=120.0,
            policy=self._policy(),
            provenance=telemetry.NULL_PROVENANCE,
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_cut_restore_is_byte_identical(self, backend_name, seed):
        rng = random.Random(SEED + seed)
        registry, trace, split = build_deployment(rng)
        kind = PERTURBATIONS[seed % len(PERTURBATIONS)]
        events = list(perturbed_live(rng, trace, split, kind))
        assert len(events) > 2

        def fitted():
            # NULL metrics: checkpoint bytes then carry no counter state,
            # so byte-comparison pins the runtime/model sections exactly.
            return fit_backend(
                backend_name,
                registry,
                trace,
                split,
                metrics=telemetry.NULL_REGISTRY,
            )

        full = self._runtime(fitted(), split)
        expected = full.ingest_many(events)
        expected += full.finish_stream(trace.end)

        cut = rng.randrange(1, len(events))
        first = self._runtime(fitted(), split)
        head = first.ingest_many(events[:cut])
        # Force a genuine serialize -> parse cycle, as a crash would.
        snapshot = json.loads(json.dumps(first.checkpoint()))
        assert snapshot["backend"] == backend_name
        resumed = restore_runtime(
            fitted(),
            snapshot,
            policy=self._policy(),
            provenance=telemetry.NULL_PROVENANCE,
        )
        tail = resumed.ingest_many(events[cut:])
        tail += resumed.finish_stream(trace.end)

        assert canon(head + tail) == canon(expected), f"cut at {cut}"
        assert json.dumps(resumed.checkpoint(), sort_keys=True) == json.dumps(
            full.checkpoint(), sort_keys=True
        )


class TestQuarantineMasking:
    def test_full_quarantine_masks_every_violation(self, backend_name):
        # With every sensor bit quarantined a backend has no evidence left;
        # whatever its internal state, no window may be called a violation.
        # (No actuators: actuator activations are not quarantinable bits.)
        # This seed's corpus makes all three registered backends violate
        # with quarantine off, so the masking assertion is never vacuous.
        rng = random.Random(SEED + 26)
        registry, trace, split = build_deployment(rng, with_actuator=False)
        live = perturbed_live(rng, trace, split, "drop_device")
        masked = fit_backend(backend_name, registry, trace, split)
        open_eyes = fit_backend(backend_name, registry, trace, split)
        windows = masked.encode_window(live)
        assert len(windows) > 0
        qbits = (1 << masked.encoder.layout.num_bits) - 1
        seconds = masked.encoder.window_seconds
        masked_violations = open_violations = 0
        for i, (mask, acts) in enumerate(windows):
            snap = _BatchWindow(
                i,
                live.start + i * seconds,
                live.start + (i + 1) * seconds,
                mask,
                acts,
            )
            masked_violations += masked.observe_window(snap, qbits).violation
            open_violations += open_eyes.observe_window(snap, 0).violation
        assert masked_violations == 0
        assert open_violations > 0

    def test_fail_stop_victim_quarantines_and_stream_completes(
        self, backend_name
    ):
        rng = random.Random(SEED + 23)
        registry, trace, split = build_deployment(rng)
        victim = registry.device_ids[0]
        live = [
            e
            for e in trace.slice(split, trace.end)
            if e.device_id != victim
        ]
        backend = fit_backend(backend_name, registry, trace, split)
        runtime = HardenedOnlineDice(
            backend,
            start=split,
            policy=SupervisorPolicy(
                silence_seconds=600.0, quarantine_seconds=1200.0
            ),
        )
        runtime.ingest_many(live)
        runtime.finish_stream(trace.end)
        health = runtime.health()
        assert victim in health["quarantined"]
        assert health["drops"]["total"] == 0


class TestChaosRecovery:
    def test_crash_recovery_reaches_alert_parity(self, backend_name, tmp_path):
        deployment = build_chaos_deployment(42, backend=backend_name)
        expected = baseline_standalone(deployment)
        n = len(deployment.events)
        result = run_standalone_trial(
            deployment,
            expected,
            str(tmp_path),
            kill_index=(3 * n) // 4,
            checkpoint_index=n // 2,
        )
        assert result.ok, f"{backend_name} lost parity after crash-recovery"
        assert result.checkpointed
