"""Ensemble voting semantics, pinned with scripted stub children.

The quorum rules under test: a detection needs at least ``quorum``
children detecting in the same window; an identification needs at least
``quorum`` children concluding in the same window and blames only the
devices named by at least ``quorum`` of them.  A degenerate always-alert
child must therefore never dominate a quorum of two or more.
"""

import json
import random

import pytest

from repro import telemetry
from repro.core import create_backend
from repro.core.backend import (
    DetectorBackend,
    EnsembleBackend,
    WindowVerdict,
    _BatchWindow,
)
from repro.core.identification import ProbableFaultSet
from repro.model import DeviceRegistry, SensorType, binary_sensor
from tests.backends.conftest import SEED, build_deployment, canon, perturbed_live


@pytest.fixture
def registry():
    return DeviceRegistry(
        [
            binary_sensor("m0", SensorType.MOTION, "room0"),
            binary_sensor("m1", SensorType.MOTION, "room1"),
            binary_sensor("m2", SensorType.MOTION, "room2"),
        ]
    )


class ScriptedChild(DetectorBackend):
    """A stub backend: violates on scripted window indices, always blames
    its fixed device set.  Exercises the ensemble's voting layer without
    any model underneath."""

    def __init__(self, registry, name, violate_on=(), devices=("m0",)):
        super().__init__(registry)
        self.name = name
        self._violate_on = frozenset(violate_on)
        self._devices = frozenset(devices)

    @property
    def is_fitted(self):
        return True

    def fit(self, trace):
        return self

    def check(self, snapshot, qbits=0):
        return WindowVerdict(
            snapshot.index in self._violate_on, check="scripted"
        )

    def identify(self, verdict, snapshot):
        return ProbableFaultSet(self._devices)

    def fingerprint(self):
        return {"backend": self.name}

    def context_hash(self):
        return self.name


def _window(index):
    return _BatchWindow(index, 60.0 * index, 60.0 * (index + 1), 0)


def _ensemble(registry, children, quorum):
    return EnsembleBackend(registry, children=children, quorum=quorum)


ALWAYS = frozenset(range(1000))


class TestDetectionQuorum:
    def test_one_of_n_detects_on_any_child(self, registry):
        children = [
            ScriptedChild(registry, "a", violate_on={0}),
            ScriptedChild(registry, "b"),
            ScriptedChild(registry, "c"),
        ]
        ensemble = _ensemble(registry, children, quorum=1)
        outcome = ensemble.observe_window(_window(0))
        # The single-device probable set converges within the window, so
        # the lone child's identification rides along with the detection.
        assert [a.kind for a in outcome.alerts] == [
            "detection",
            "identification",
        ]
        assert all(a.check == "ensemble" for a in outcome.alerts)
        assert outcome.violation

    def test_n_of_n_requires_unanimity(self, registry):
        def build(quorum, violators):
            children = [
                ScriptedChild(
                    registry, name, violate_on={0} if name in violators else ()
                )
                for name in ("a", "b", "c")
            ]
            return _ensemble(registry, children, quorum=quorum)

        assert not build(3, {"a", "b"}).observe_window(_window(0)).alerts
        unanimous = build(3, {"a", "b", "c"}).observe_window(_window(0))
        assert unanimous.alerts
        assert unanimous.alerts[0].kind == "detection"

    def test_tie_quorum_is_met_exactly(self, registry):
        # Four children, two detecting: quorum 2 fires, quorum 3 does not.
        def build(quorum):
            children = [
                ScriptedChild(
                    registry, name, violate_on={0} if name in "ab" else ()
                )
                for name in "abcd"
            ]
            return _ensemble(registry, children, quorum=quorum)

        assert build(2).observe_window(_window(0)).alerts
        assert not build(3).observe_window(_window(0)).alerts

    def test_always_alert_child_cannot_dominate_two_of_three(self, registry):
        children = [
            ScriptedChild(registry, "noisy", violate_on=ALWAYS),
            ScriptedChild(registry, "quiet1"),
            ScriptedChild(registry, "quiet2"),
        ]
        ensemble = _ensemble(registry, children, quorum=2)
        for index in range(50):
            outcome = ensemble.observe_window(_window(index))
            assert not outcome.alerts
            assert not outcome.violation
        assert ensemble.finish_segment(50 * 60.0) is None


class TestDeviceVoting:
    def test_blames_only_devices_named_by_a_quorum(self, registry):
        # Children a and b open sessions at window 0 (two-device probable
        # sets stay open past numThre=1); finish_segment concludes both:
        # a names {m0, m1}, b names {m1, m2} — only m1 carries two votes.
        children = [
            ScriptedChild(
                registry, "a", violate_on={0}, devices=("m0", "m1")
            ),
            ScriptedChild(
                registry, "b", violate_on={0}, devices=("m1", "m2")
            ),
            ScriptedChild(registry, "c"),
        ]
        ensemble = _ensemble(registry, children, quorum=2)
        assert [
            a.kind for a in ensemble.observe_window(_window(0)).alerts
        ] == ["detection"]
        tail = ensemble.finish_segment(600.0)
        assert tail is not None
        assert tail.kind == "identification"
        assert sorted(tail.devices) == ["m1"]
        assert tail.converged is False

    def test_no_identification_below_quorum(self, registry):
        children = [
            ScriptedChild(registry, "a", violate_on={0}, devices=("m0",)),
            ScriptedChild(registry, "b"),
            ScriptedChild(registry, "c"),
        ]
        ensemble = _ensemble(registry, children, quorum=2)
        ensemble.observe_window(_window(0))
        assert ensemble.finish_segment(600.0) is None


class TestConstruction:
    def test_quorum_must_fit_the_children(self, registry):
        children = [ScriptedChild(registry, "a"), ScriptedChild(registry, "b")]
        with pytest.raises(ValueError, match=r"quorum must be in \[1, 2\]"):
            _ensemble(registry, children, quorum=3)
        with pytest.raises(ValueError, match=r"quorum must be in"):
            _ensemble(registry, children, quorum=0)

    def test_needs_at_least_one_child(self, registry):
        with pytest.raises(ValueError, match="at least one child"):
            EnsembleBackend(registry, children=[])

    def test_default_registered_ensemble_is_dice_and_markov(self, registry):
        ensemble = create_backend("ensemble", registry)
        assert [c.name for c in ensemble.children] == ["dice", "markov"]
        assert ensemble.quorum == 2


class TestCheckpoint:
    def test_child_state_round_trips_inside_ensemble_checkpoint(self):
        # Stream half a perturbed segment through a real dice+markov
        # ensemble, serialize, load into a freshly fitted ensemble, finish
        # both: the resumed run must match the uninterrupted one exactly.
        rng = random.Random(SEED + 3)
        registry, trace, split = build_deployment(rng)
        live = perturbed_live(rng, trace, split, "corrupt")
        training = trace.slice(trace.start, split)

        def fitted():
            return create_backend(
                "ensemble", registry, metrics=telemetry.NULL_REGISTRY
            ).fit(training)

        full = fitted()
        windows = full.encode_window(live)
        seconds = windows.window_seconds

        def snap(i, mask, acts):
            start = windows.window_start(i)
            return _BatchWindow(i, start, start + seconds, mask, acts)

        expected = []
        for i, (mask, acts) in enumerate(windows):
            expected.extend(full.observe_window(snap(i, mask, acts)).alerts)

        cut = len(windows) // 2
        first = fitted()
        head = []
        for i, (mask, acts) in enumerate(windows):
            if i == cut:
                break
            head.extend(first.observe_window(snap(i, mask, acts)).alerts)
        state = json.loads(json.dumps(first.checkpoint_state()))
        assert [c["name"] for c in state["ensemble"]["children"]] == [
            "dice",
            "markov",
        ]

        resumed = fitted()
        resumed.load_state(state)
        tail = []
        for i, (mask, acts) in enumerate(windows):
            if i < cut:
                continue
            tail.extend(resumed.observe_window(snap(i, mask, acts)).alerts)
        assert canon(head + tail) == canon(expected)
        # And the end states themselves agree byte for byte.
        assert json.dumps(resumed.checkpoint_state(), sort_keys=True) == (
            json.dumps(full.checkpoint_state(), sort_keys=True)
        )

    def test_child_name_mismatch_is_rejected(self, registry):
        ensemble = create_backend("ensemble", registry)
        state = ensemble.checkpoint_state()
        state["ensemble"]["children"][0]["name"] = "imposter"
        with pytest.raises(ValueError, match="imposter"):
            create_backend("ensemble", registry).load_state(state)

    def test_child_count_mismatch_is_rejected(self, registry):
        ensemble = create_backend("ensemble", registry)
        state = ensemble.checkpoint_state()
        state["ensemble"]["children"].append(
            {"name": "extra", "state": {}}
        )
        with pytest.raises(ValueError, match="children"):
            create_backend("ensemble", registry).load_state(state)
